//! Randomized property tests for the disk subsystem invariants,
//! driven by the in-tree deterministic [`Pcg32`].

use nw_disk::{
    DiskController, DiskControllerConfig, Mechanics, ParallelFs, PrefetchPolicy, WriteOutcome,
};
use nw_sim::Pcg32;

const CASES: u64 = 48;

fn controller(policy: PrefetchPolicy) -> DiskController {
    DiskController::new(
        DiskControllerConfig {
            cache_pages: 4,
            policy,
            flush_delay: 10_000,
            spec_cache_pages: 8,
        },
        Mechanics::paper_default(),
    )
}

/// The file system maps every page to exactly one disk/block, and
/// distinct pages on the same disk get distinct blocks.
#[test]
fn fs_mapping_injective() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xD15C, case);
        let disks = rng.gen_range(1, 8) as u32;
        let n = rng.gen_range(2, 100) as usize;
        let mut pages = std::collections::HashSet::new();
        while pages.len() < n {
            pages.insert(rng.gen_range(0, 100_000));
        }
        let fs = ParallelFs::paper_default(disks);
        let mut seen = std::collections::HashSet::new();
        for &p in &pages {
            let key = (fs.disk_of(p), fs.block_of(p));
            assert!(fs.disk_of(p) < disks, "case {case}");
            assert!(seen.insert(key), "case {case}: pages collide at {key:?}");
        }
    }
}

/// Round-robin striping balances groups across disks.
#[test]
fn fs_balances_groups() {
    for disks in 1u32..8 {
        let fs = ParallelFs::paper_default(disks);
        let groups = 8 * disks as u64;
        let mut counts = vec![0u64; disks as usize];
        for p in 0..groups * 32 {
            counts[fs.disk_of(p) as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, groups * 32 / disks as u64, "disks {disks}");
        }
    }
}

/// Flow-control conservation: every write is either ACKed or NACKed,
/// and the NACK queue never exceeds the number of NACKs.
#[test]
fn write_flow_conservation() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xD15D, case);
        let n = rng.gen_range(1, 80) as usize;
        let mut c = controller(PrefetchPolicy::Naive);
        let mut acks = 0u64;
        let mut nacks = 0u64;
        for i in 0..n {
            let page = rng.gen_range(0, 64);
            let node = rng.gen_below(8);
            match c.write_page(i as u64 * 100, page, page, node) {
                WriteOutcome::Ack { .. } => acks += 1,
                WriteOutcome::Nack => nacks += 1,
            }
        }
        assert_eq!(acks, c.write_acks(), "case {case}");
        assert_eq!(nacks, c.write_nacks(), "case {case}");
        assert!(c.nack_queue_len() as u64 <= nacks, "case {case}");
    }
}

/// Repeated flushing always terminates with an empty dirty set, and
/// combining factors stay within [1, cache_pages].
#[test]
fn flush_drains_everything() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xD15E, case);
        let n = rng.gen_range(1, 40) as usize;
        let mut c = controller(PrefetchPolicy::Naive);
        let mut t = 0u64;
        for _ in 0..n {
            let page = rng.gen_range(0, 64);
            c.write_page(t, page, page, 0);
            t += 50;
        }
        t += 100_000;
        let mut guard = 0;
        while let Some(res) = c.try_flush(t) {
            assert!(res.pages >= 1 && res.pages <= 4, "case {case}");
            t = res.done_at;
            guard += 1;
            assert!(guard < 200, "case {case}: flush loop did not terminate");
        }
        assert!(!c.has_pending_dirty(), "case {case}");
        if let Some(max) = c.combining().max() {
            assert!(max <= 4, "case {case}");
        }
    }
}

/// Optimal policy: every read is a hit at the request time.
#[test]
fn optimal_reads_always_ready_now() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xD15F, case);
        let n = rng.gen_range(1, 50) as usize;
        let mut c = controller(PrefetchPolicy::Optimal);
        let mut t = 0;
        for _ in 0..n {
            let p = rng.gen_range(0, 1000);
            let r = c.read_page(t, p, p);
            assert!(r.is_hit(), "case {case}");
            assert_eq!(r.ready_at(), t, "case {case}");
            t += 1000;
        }
        assert_eq!(c.read_misses(), 0, "case {case}");
    }
}

/// Naive policy: ready times never precede request times and hit/miss
/// counters account for every read.
#[test]
fn naive_read_times_causal() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xD160, case);
        let n = rng.gen_range(1, 30) as usize;
        let mut c = controller(PrefetchPolicy::Naive);
        let mut t = 0;
        for _ in 0..n {
            let p = rng.gen_range(0, 512);
            let r = c.read_page(t, p, p);
            assert!(r.ready_at() >= t, "case {case}: reply before request");
            t += 10_000;
        }
        assert_eq!(c.read_hits() + c.read_misses(), n as u64, "case {case}");
    }
}

/// claim_for_waiters never invents requesters and preserves FIFO order
/// of the OKs.
#[test]
fn claim_for_waiters_fifo() {
    for extra in 1usize..10 {
        let mut c = controller(PrefetchPolicy::Naive);
        // Fill the cache.
        for p in 0..4u64 {
            c.write_page(0, p, p, 0);
        }
        // NACK `extra` requests from distinct nodes.
        for i in 0..extra {
            let out = c.write_page(0, 100 + i as u64, 100 + i as u64, i as u32);
            assert_eq!(out, WriteOutcome::Nack, "extra {extra}");
        }
        // Flush everything, then hand out slots.
        let res = c.try_flush(100_000).unwrap();
        let mut oks = res.oks;
        let mut t = res.done_at;
        loop {
            let more = c.claim_for_waiters(t);
            if more.is_empty() {
                break;
            }
            oks.extend(more);
            // Simulate the re-sends landing so slots recycle.
            for &(node, page) in oks.iter().rev().take(1) {
                c.write_page(t, page, page, node);
            }
            if let Some(r) = c.try_flush(t + 200_000) {
                t = r.done_at;
            } else {
                t += 200_000;
            }
        }
        // OKs preserve NACK order per node sequence.
        let nodes: Vec<u32> = oks.iter().map(|&(n, _)| n).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(&nodes, &sorted, "extra {extra}: OKs out of FIFO order");
    }
}
