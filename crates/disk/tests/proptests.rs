//! Property tests for the disk subsystem invariants.

use nw_disk::{DiskController, DiskControllerConfig, Mechanics, ParallelFs, PrefetchPolicy,
              WriteOutcome};
use proptest::prelude::*;

fn controller(policy: PrefetchPolicy) -> DiskController {
    DiskController::new(
        DiskControllerConfig {
            cache_pages: 4,
            policy,
            flush_delay: 10_000,
        },
        Mechanics::paper_default(),
    )
}

proptest! {
    /// The file system maps every page to exactly one disk/block, and
    /// distinct pages on the same disk get distinct blocks.
    #[test]
    fn fs_mapping_injective(pages in proptest::collection::hash_set(0u64..100_000, 2..100),
                            disks in 1u32..8) {
        let fs = ParallelFs::paper_default(disks);
        let mut seen = std::collections::HashSet::new();
        for &p in &pages {
            let key = (fs.disk_of(p), fs.block_of(p));
            prop_assert!(fs.disk_of(p) < disks);
            prop_assert!(seen.insert(key), "pages collide at {key:?}");
        }
    }

    /// Round-robin striping balances groups across disks.
    #[test]
    fn fs_balances_groups(disks in 1u32..8) {
        let fs = ParallelFs::paper_default(disks);
        let groups = 8 * disks as u64;
        let mut counts = vec![0u64; disks as usize];
        for p in 0..groups * 32 {
            counts[fs.disk_of(p) as usize] += 1;
        }
        for &c in &counts {
            prop_assert_eq!(c, groups * 32 / disks as u64);
        }
    }

    /// Flow-control conservation: every write is either ACKed or
    /// NACKed, and the NACK queue never exceeds the number of NACKs.
    #[test]
    fn write_flow_conservation(writes in proptest::collection::vec((0u64..64, 0u32..8), 1..80)) {
        let mut c = controller(PrefetchPolicy::Naive);
        let mut acks = 0u64;
        let mut nacks = 0u64;
        for (i, &(page, node)) in writes.iter().enumerate() {
            match c.write_page(i as u64 * 100, page, page, node) {
                WriteOutcome::Ack { .. } => acks += 1,
                WriteOutcome::Nack => nacks += 1,
            }
        }
        prop_assert_eq!(acks, c.write_acks());
        prop_assert_eq!(nacks, c.write_nacks());
        prop_assert!(c.nack_queue_len() as u64 <= nacks);
    }

    /// Repeated flushing always terminates with an empty dirty set,
    /// and combining factors stay within [1, cache_pages].
    #[test]
    fn flush_drains_everything(writes in proptest::collection::vec(0u64..64, 1..40)) {
        let mut c = controller(PrefetchPolicy::Naive);
        let mut t = 0u64;
        for &page in &writes {
            c.write_page(t, page, page, 0);
            t += 50;
        }
        t += 100_000;
        let mut guard = 0;
        while let Some(res) = c.try_flush(t) {
            prop_assert!(res.pages >= 1 && res.pages <= 4);
            t = res.done_at;
            guard += 1;
            prop_assert!(guard < 200, "flush loop did not terminate");
        }
        prop_assert!(!c.has_pending_dirty());
        if let Some(max) = c.combining().max() {
            prop_assert!(max <= 4);
        }
    }

    /// Optimal policy: every read is a hit at the request time.
    #[test]
    fn optimal_reads_always_ready_now(reads in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut c = controller(PrefetchPolicy::Optimal);
        let mut t = 0;
        for &p in &reads {
            let r = c.read_page(t, p, p);
            prop_assert!(r.is_hit());
            prop_assert_eq!(r.ready_at(), t);
            t += 1000;
        }
        prop_assert_eq!(c.read_misses(), 0);
    }

    /// Naive policy: ready times never precede request times and the
    /// arm's accumulated busy time is consistent with mechanics.
    #[test]
    fn naive_read_times_causal(reads in proptest::collection::vec(0u64..512, 1..30)) {
        let mut c = controller(PrefetchPolicy::Naive);
        let mut t = 0;
        for &p in &reads {
            let r = c.read_page(t, p, p);
            prop_assert!(r.ready_at() >= t, "reply before request");
            t += 10_000;
        }
        prop_assert_eq!(c.read_hits() + c.read_misses(), reads.len() as u64);
    }

    /// claim_for_waiters never invents requesters and preserves FIFO
    /// order of the OKs.
    #[test]
    fn claim_for_waiters_fifo(extra in 1usize..10) {
        let mut c = controller(PrefetchPolicy::Naive);
        // Fill the cache.
        for p in 0..4u64 {
            c.write_page(0, p, p, 0);
        }
        // NACK `extra` requests from distinct nodes.
        for i in 0..extra {
            let out = c.write_page(0, 100 + i as u64, 100 + i as u64, i as u32);
            prop_assert_eq!(out, WriteOutcome::Nack);
        }
        // Flush everything, then hand out slots.
        let res = c.try_flush(100_000).unwrap();
        let mut oks = res.oks;
        let mut t = res.done_at;
        loop {
            let more = c.claim_for_waiters(t);
            if more.is_empty() {
                break;
            }
            oks.extend(more);
            // Simulate the re-sends landing so slots recycle.
            for &(node, page) in oks.iter().rev().take(1) {
                c.write_page(t, page, page, node);
            }
            if let Some(r) = c.try_flush(t + 200_000) {
                t = r.done_at;
            } else {
                t += 200_000;
            }
        }
        // OKs preserve NACK order per node sequence.
        let nodes: Vec<u32> = oks.iter().map(|&(n, _)| n).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&nodes, &sorted, "OKs out of FIFO order");
    }
}
