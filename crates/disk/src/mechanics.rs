//! Mechanical disk timing model.
//!
//! Table 1 parameters: minimum seek 2 ms, maximum seek 22 ms,
//! rotational latency 4 ms, media transfer 20 MB/s. Seek time scales
//! with the fraction of the disk span crossed; an access to the block
//! immediately following the previous one (sequential access) pays
//! neither seek nor rotation — which is exactly what makes combined
//! writes profitable.

use crate::Block;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::time::msecs;
use nw_sim::{Bandwidth, Time};

/// Mechanical model of one disk.
#[derive(Debug, Clone)]
pub struct Mechanics {
    min_seek: Time,
    max_seek: Time,
    rotation: Time,
    bw: Bandwidth,
    page_bytes: u64,
    /// Span (in blocks) used to scale seek distance.
    span_blocks: u64,
    /// Head position: the block following the last access.
    head: Block,
    ops: u64,
    sequential_ops: u64,
    busy_accumulated: Time,
}

impl Mechanics {
    /// A disk with the given timing parameters.
    pub fn new(
        min_seek: Time,
        max_seek: Time,
        rotation: Time,
        bw: Bandwidth,
        page_bytes: u64,
        span_blocks: u64,
    ) -> Self {
        assert!(max_seek >= min_seek);
        assert!(span_blocks > 0);
        Mechanics {
            min_seek,
            max_seek,
            rotation,
            bw,
            page_bytes,
            span_blocks,
            head: 0,
            ops: 0,
            sequential_ops: 0,
            busy_accumulated: 0,
        }
    }

    /// The paper's disk: 2–22 ms seek, 4 ms rotation, 20 MB/s, 4 KB
    /// pages, 8192-block span.
    pub fn paper_default() -> Self {
        Mechanics::new(
            msecs(2),
            msecs(22),
            msecs(4),
            Bandwidth::from_mbytes_per_sec(20),
            4096,
            8192,
        )
    }

    /// Pure transfer time for `npages` pages.
    pub fn transfer_time(&self, npages: u64) -> Time {
        self.bw.transfer_cycles(self.page_bytes * npages)
    }

    /// Seek time to move the head from its current position to `to`.
    pub fn seek_time(&self, to: Block) -> Time {
        let dist = self.head.abs_diff(to);
        if dist == 0 {
            return 0;
        }
        let dist = dist.min(self.span_blocks);
        self.min_seek + (self.max_seek - self.min_seek) * dist / self.span_blocks
    }

    /// Perform an access of `npages` consecutive pages starting at
    /// block `start`, moving the head. Returns the total mechanical
    /// time (seek + rotation + transfer); a perfectly sequential access
    /// (head already at `start`) skips seek *and* rotation.
    pub fn access(&mut self, start: Block, npages: u64) -> Time {
        assert!(npages > 0);
        self.ops += 1;
        let positioning = if self.head == start {
            self.sequential_ops += 1;
            0
        } else {
            self.seek_time(start) + self.rotation
        };
        self.head = start + npages;
        let t = positioning + self.transfer_time(npages);
        self.busy_accumulated += t;
        t
    }

    /// The current head position (block after the last access).
    pub fn head(&self) -> Block {
        self.head
    }

    /// Total access operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Accesses that were perfectly sequential (no positioning cost).
    pub fn sequential_ops(&self) -> u64 {
        self.sequential_ops
    }

    /// Sum of all mechanical service times.
    pub fn busy_accumulated(&self) -> Time {
        self.busy_accumulated
    }

    /// Serialize the dynamic state (timing parameters are config).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.head);
        w.u64(self.ops);
        w.u64(self.sequential_ops);
        w.time(self.busy_accumulated);
    }

    /// Overlay state saved by [`Mechanics::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.head = r.u64()?;
        self.ops = r.u64()?;
        self.sequential_ops = r.u64()?;
        self.busy_accumulated = r.time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_page_transfer_time() {
        let m = Mechanics::paper_default();
        // 4 KB at 20 MB/s = 40_960 cycles (204.8 us).
        assert_eq!(m.transfer_time(1), 40_960);
        assert_eq!(m.transfer_time(4), 163_840);
    }

    #[test]
    fn seek_scales_with_distance() {
        let m = Mechanics::paper_default();
        assert_eq!(m.seek_time(0), 0);
        let near = m.seek_time(1);
        let far = m.seek_time(8192);
        assert!(near >= msecs(2));
        assert!(near < far);
        assert_eq!(far, msecs(22));
        // Beyond span clamps to max.
        assert_eq!(m.seek_time(100_000), msecs(22));
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut m = Mechanics::paper_default();
        let t = m.access(1000, 1);
        assert!(t > msecs(2) + msecs(4) + 40_000);
        assert_eq!(m.head(), 1001);
        assert_eq!(m.sequential_ops(), 0);
    }

    #[test]
    fn sequential_access_is_transfer_only() {
        let mut m = Mechanics::paper_default();
        m.access(100, 2); // head now 102
        let t = m.access(102, 1);
        assert_eq!(t, 40_960);
        assert_eq!(m.sequential_ops(), 1);
    }

    #[test]
    fn combined_write_cheaper_than_separate() {
        // Writing 4 consecutive pages in one op vs 4 ops from random
        // positions: the single op amortizes positioning.
        let mut combined = Mechanics::paper_default();
        let t_combined = combined.access(500, 4);

        let mut separate = Mechanics::paper_default();
        let mut t_separate = 0;
        for (i, blk) in [500u64, 2000, 501, 3000].iter().enumerate() {
            let _ = i;
            t_separate += separate.access(*blk, 1);
        }
        assert!(t_combined < t_separate / 2);
    }

    #[test]
    fn busy_accumulates() {
        let mut m = Mechanics::paper_default();
        let a = m.access(10, 1);
        let b = m.access(11, 1);
        assert_eq!(m.busy_accumulated(), a + b);
        assert_eq!(m.ops(), 2);
    }
}
