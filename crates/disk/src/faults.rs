//! Deterministic disk fault injection.
//!
//! A [`DiskFaultInjector`] owns a seeded PCG stream and rolls, per
//! physical access, whether the access suffers a media error (the
//! controller reports a failed read that the machine retries with
//! backoff) or a stuck request (no reply until the requester's
//! timeout re-issues it). Injectors are only consulted when their
//! rates are nonzero, so an inactive injector leaves simulation
//! results bit-identical to a build without fault support.

use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::Pcg32;

/// Outcome of a fault roll for one disk access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The access proceeds normally.
    None,
    /// The media read failed; the requester must retry.
    MediaError,
    /// The request is silently lost; only a timeout recovers it.
    Stuck,
}

/// Per-disk deterministic fault source.
#[derive(Debug, Clone)]
pub struct DiskFaultInjector {
    rng: Pcg32,
    error_rate: f64,
    stuck_rate: f64,
    media_errors: u64,
    stuck_requests: u64,
}

impl DiskFaultInjector {
    /// Build an injector. `stream` should be unique per disk so the
    /// disks draw independent sequences.
    pub fn new(seed: u64, stream: u64, error_rate: f64, stuck_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error_rate out of range");
        assert!((0.0..=1.0).contains(&stuck_rate), "stuck_rate out of range");
        DiskFaultInjector {
            rng: Pcg32::new(seed, stream.wrapping_mul(2).wrapping_add(0xD15C),),
            error_rate,
            stuck_rate,
            media_errors: 0,
            stuck_requests: 0,
        }
    }

    /// Whether any rate is nonzero. Inactive injectors never draw
    /// from their RNG.
    pub fn is_active(&self) -> bool {
        self.error_rate > 0.0 || self.stuck_rate > 0.0
    }

    /// Roll the fate of one access. Draws exactly one random number
    /// per call when active, none when inactive.
    pub fn roll(&mut self) -> DiskFault {
        if !self.is_active() {
            return DiskFault::None;
        }
        let x = self.rng.gen_f64();
        if x < self.error_rate {
            self.media_errors += 1;
            DiskFault::MediaError
        } else if x < self.error_rate + self.stuck_rate {
            self.stuck_requests += 1;
            DiskFault::Stuck
        } else {
            DiskFault::None
        }
    }

    /// Media errors injected so far.
    pub fn media_errors(&self) -> u64 {
        self.media_errors
    }

    /// Stuck requests injected so far.
    pub fn stuck_requests(&self) -> u64 {
        self.stuck_requests
    }

    /// Serialize the RNG position and counters (rates are config).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        let (state, inc) = self.rng.state_parts();
        w.u64(state);
        w.u64(inc);
        w.u64(self.media_errors);
        w.u64(self.stuck_requests);
    }

    /// Overlay state saved by [`DiskFaultInjector::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let state = r.u64()?;
        let inc = r.u64()?;
        self.rng = Pcg32::from_parts(state, inc);
        self.media_errors = r.u64()?;
        self.stuck_requests = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_injector_never_faults() {
        let mut inj = DiskFaultInjector::new(1, 0, 0.0, 0.0);
        assert!(!inj.is_active());
        for _ in 0..1000 {
            assert_eq!(inj.roll(), DiskFault::None);
        }
        assert_eq!(inj.media_errors(), 0);
        assert_eq!(inj.stuck_requests(), 0);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut inj = DiskFaultInjector::new(7, 3, 0.1, 0.05);
        let mut errors = 0;
        let mut stuck = 0;
        for _ in 0..20_000 {
            match inj.roll() {
                DiskFault::MediaError => errors += 1,
                DiskFault::Stuck => stuck += 1,
                DiskFault::None => {}
            }
        }
        // 10% and 5% within generous tolerance.
        assert!((1500..2500).contains(&errors), "errors {errors}");
        assert!((700..1300).contains(&stuck), "stuck {stuck}");
        assert_eq!(inj.media_errors(), errors);
        assert_eq!(inj.stuck_requests(), stuck);
    }

    #[test]
    fn rolls_are_deterministic() {
        let mut a = DiskFaultInjector::new(42, 1, 0.01, 0.01);
        let mut b = DiskFaultInjector::new(42, 1, 0.01, 0.01);
        for _ in 0..5000 {
            assert_eq!(a.roll(), b.roll());
        }
    }

    #[test]
    #[should_panic(expected = "error_rate out of range")]
    fn rejects_bad_rate() {
        DiskFaultInjector::new(0, 0, 1.5, 0.0);
    }
}
