//! DCD — the Disk Caching Disk baseline (Hu & Yang, ISCA 1996).
//!
//! The paper's related-work section singles out the DCD as the closest
//! prior design: a *log disk* placed between the RAM disk cache and
//! the data disk. New data is staged in the RAM cache and written to
//! the log disk **sequentially** (cheap: no seek/rotation once the log
//! head is positioned), freeing RAM-cache space quickly; reading or
//! overwriting a logged block "requires moving around the log disk to
//! find the corresponding block" — seek and rotational latencies
//! comparable to the data disk. When the data disk is idle, logged
//! data destages to its home location.
//!
//! We implement the DCD as a wrapper policy for
//! [`crate::DiskController`]
//! flushes: the flush targets the log disk's current head position
//! (sequential append) instead of the pages' home blocks, making
//! every flush combine perfectly and skip positioning costs, while
//! demand reads of logged pages pay a full mechanical access on the
//! log disk. This gives the NWCache a quantitative comparison point
//! the paper only argued qualitatively: the DCD also stages writes,
//! but its buffer is a disk (slow to re-read) while the NWCache's is
//! the optical ring (fast to re-read, and no extra spindle).

use crate::mechanics::Mechanics;
use crate::{Block, Page};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::stats::Tally;
use nw_sim::{Resource, Time};
use std::collections::HashMap;

/// The log-disk stage of a DCD.
#[derive(Debug)]
pub struct LogDisk {
    mech: Mechanics,
    arm: Resource,
    /// Where each logged page currently lives on the log disk.
    locations: HashMap<Page, Block>,
    /// Next append position.
    head: Block,
    appends: u64,
    log_reads: u64,
    destages: u64,
    append_time: Tally,
}

impl LogDisk {
    /// A log disk with the given mechanics.
    pub fn new(mech: Mechanics) -> Self {
        LogDisk {
            mech,
            arm: Resource::new("log-disk-arm"),
            locations: HashMap::new(),
            head: 0,
            appends: 0,
            log_reads: 0,
            destages: 0,
            append_time: Tally::new(),
        }
    }

    /// A paper-parameter log disk (same mechanics as the data disks).
    pub fn paper_default() -> Self {
        LogDisk::new(Mechanics::paper_default())
    }

    /// Append `pages` starting at `now`, sequentially at the log head.
    /// Returns the completion time. Consecutive appends pay transfer
    /// time only (the log head stays in position).
    pub fn append(&mut self, now: Time, pages: &[Page]) -> Time {
        assert!(!pages.is_empty());
        let start_block = self.head;
        let service = self.mech.access(start_block, pages.len() as u64);
        let grant = self.arm.acquire(now, service);
        for (i, &p) in pages.iter().enumerate() {
            self.locations.insert(p, start_block + i as u64);
        }
        self.head += pages.len() as u64;
        self.appends += 1;
        self.append_time.add(grant.end - now);
        grant.end
    }

    /// Whether `page`'s latest copy is on the log disk.
    pub fn contains(&self, page: Page) -> bool {
        self.locations.contains_key(&page)
    }

    /// Read `page` back from the log at `now` (pays a full mechanical
    /// access — "seek and rotational latencies comparable to those of
    /// accesses to the data disk"). Returns the completion time, or
    /// `None` if the page is not logged.
    pub fn read(&mut self, now: Time, page: Page) -> Option<Time> {
        let &block = self.locations.get(&page)?;
        let service = self.mech.access(block, 1);
        let grant = self.arm.acquire(now, service);
        self.log_reads += 1;
        Some(grant.end)
    }

    /// Destage `page` (its data reached the data disk); drops the log
    /// mapping. Returns true if the page was logged.
    pub fn destage(&mut self, page: Page) -> bool {
        let was = self.locations.remove(&page).is_some();
        if was {
            self.destages += 1;
        }
        was
    }

    /// Pages currently held by the log.
    pub fn logged_pages(&self) -> usize {
        self.locations.len()
    }

    /// Total append operations.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total reads served from the log.
    pub fn log_reads(&self) -> u64 {
        self.log_reads
    }

    /// Total destages to the data disk.
    pub fn destages(&self) -> u64 {
        self.destages
    }

    /// Append service-time tally.
    pub fn append_time(&self) -> &Tally {
        &self.append_time
    }

    /// Earliest time the log arm is free at `now`.
    pub fn arm_free_at(&self, now: Time) -> Time {
        self.arm.earliest_start(now)
    }

    /// Serialize the log-disk state. The location map is dumped in
    /// ascending page order for canonical checkpoint bytes (its
    /// iteration order is never observable — lookups are by key).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        self.mech.ckpt_save(w);
        self.arm.ckpt_save(w);
        let mut locs: Vec<(Page, Block)> = self.locations.iter().map(|(&p, &b)| (p, b)).collect();
        locs.sort_unstable();
        w.usize(locs.len());
        for (p, b) in locs {
            w.u64(p);
            w.u64(b);
        }
        w.u64(self.head);
        w.u64(self.appends);
        w.u64(self.log_reads);
        w.u64(self.destages);
        self.append_time.ckpt_save(w);
    }

    /// Overlay state saved by [`LogDisk::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.mech.ckpt_restore(r)?;
        self.arm.ckpt_restore(r)?;
        let n = r.usize()?;
        self.locations.clear();
        for _ in 0..n {
            let p = r.u64()?;
            let b = r.u64()?;
            if self.locations.insert(p, b).is_some() {
                return Err(CkptError::Invalid {
                    offset: r.offset(),
                    what: format!("duplicate logged page {p}"),
                });
            }
        }
        self.head = r.u64()?;
        self.appends = r.u64()?;
        self.log_reads = r.u64()?;
        self.destages = r.u64()?;
        self.append_time.ckpt_restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_sim::time::msecs;

    #[test]
    fn first_append_pays_positioning_then_sequential() {
        let mut log = LogDisk::paper_default();
        let t1 = log.append(0, &[10]);
        // Head starts at 0 and the first append targets block 0:
        // sequential from the start, transfer only.
        assert_eq!(t1, 40_960);
        let t2 = log.append(t1, &[11, 12]);
        assert_eq!(t2, t1 + 2 * 40_960, "appends are seek-free");
    }

    #[test]
    fn append_is_much_cheaper_than_random_write() {
        let mut log = LogDisk::paper_default();
        let mut random = Mechanics::paper_default();
        let t_log = log.append(0, &[5]);
        let t_rand = random.access(4000, 1);
        assert!(t_log * 10 < t_rand, "log {t_log} vs random {t_rand}");
    }

    #[test]
    fn read_back_pays_mechanics() {
        let mut log = LogDisk::paper_default();
        let t = log.append(0, &[7, 8, 9]);
        let r = log.read(t + msecs(50), 8).unwrap();
        // The head moved past block 1; a read must reposition.
        assert!(r > t + msecs(50) + msecs(2));
        assert_eq!(log.read(0, 99), None);
    }

    #[test]
    fn contains_and_destage() {
        let mut log = LogDisk::paper_default();
        log.append(0, &[1, 2]);
        assert!(log.contains(1));
        assert!(log.destage(1));
        assert!(!log.contains(1));
        assert!(!log.destage(1));
        assert_eq!(log.logged_pages(), 1);
        assert_eq!(log.destages(), 1);
    }

    #[test]
    fn rewrite_updates_location() {
        let mut log = LogDisk::paper_default();
        log.append(0, &[5]);
        let t = log.append(100_000, &[5]); // newer version appended
        assert!(log.contains(5));
        assert_eq!(log.logged_pages(), 1);
        let r = log.read(t, 5).unwrap();
        assert!(r > t);
    }

    #[test]
    fn stats_track() {
        let mut log = LogDisk::paper_default();
        log.append(0, &[1]);
        log.append(50_000_000, &[2, 3]);
        log.read(100_000_000, 2);
        assert_eq!(log.appends(), 2);
        assert_eq!(log.log_reads(), 1);
        assert_eq!(log.append_time().count(), 2);
    }
}
