//! Disk controller: page cache, prefetching, flow control, combining.
//!
//! The controller owns a tiny page cache (Table 1: 16 KB = 4 pages) in
//! front of the mechanical disk. Protocol (paper §3.1):
//!
//! * **Reads** — a requested page is served from the cache when present
//!   (*cache hit*); otherwise the disk is accessed. Under the *naive*
//!   policy the controller then keeps filling its cache with the pages
//!   sequentially following the missing page; under the *optimal*
//!   policy every read is a cache hit (all disk reads happen in the
//!   background of the request).
//! * **Writes (swap-outs)** — if the cache has room the page is
//!   installed and `ACK`ed ("writes are given preference over
//!   prefetches in the cache": clean pages are evicted for incoming
//!   writes). If the cache is full of swap-outs the controller `NACK`s
//!   and records the requester in a FIFO; when room appears it sends
//!   `OK`, prompting a re-send, with the freed slot reserved for that
//!   requester.
//! * **Write combining** — when the controller writes dirty pages to
//!   the disk it combines every run of consecutive blocks present in
//!   the cache into a single disk operation (Tables 5/6 measure the
//!   average pages per operation; the 4-slot cache caps it at 4).

use crate::dcd::LogDisk;
use crate::mechanics::Mechanics;
use crate::{Block, Page};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::stats::Tally;
use nw_sim::{Resource, Time};
use std::collections::VecDeque;

/// Read prefetching policy (paper §3.1, plus a realistic extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// Idealized prefetching: every page read hits the controller
    /// cache; disk reads run entirely in the background.
    Optimal,
    /// On a read miss, fill the cache with sequentially-following
    /// pages.
    Naive,
    /// Realistic windowed prefetching (the "sophisticated techniques"
    /// the paper expects to land between the two extremes): like
    /// naive on a miss, but sequential streams are also extended on
    /// *hits*, keeping the prefetcher ahead of a sequential reader up
    /// to `depth` pages.
    Window {
        /// How many pages ahead of the current request to stay.
        depth: usize,
    },
    /// No controller-initiated prefetching at all: misses fetch only
    /// the demand page. Used by the machine-level *adaptive* policy,
    /// which drives speculation explicitly through
    /// [`DiskController::spec_hint`] instead of letting the
    /// controller guess from the miss stream.
    Demand,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiskControllerConfig {
    /// Cache capacity in pages (paper: 4).
    pub cache_pages: usize,
    /// Prefetch policy.
    pub policy: PrefetchPolicy,
    /// Accumulation window between a swap-out landing in the cache and
    /// the controller starting to flush it, letting consecutive pages
    /// gather so they can be combined.
    pub flush_delay: Time,
    /// Capacity of the speculative side cache fed by
    /// [`DiskController::spec_hint`]. Separate from the main cache so
    /// swap-out writes (which evict clean slots) cannot pollute
    /// hinted reads. Unused unless hints are issued.
    pub spec_cache_pages: usize,
}

impl DiskControllerConfig {
    /// Paper defaults with the given policy.
    pub fn paper_default(policy: PrefetchPolicy) -> Self {
        DiskControllerConfig {
            cache_pages: 4,
            policy,
            flush_delay: 50_000, // 250 us accumulation window
            spec_cache_pages: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    /// A (pre)fetched page; may be evicted for an incoming write.
    Clean { page: Page },
    /// A swap-out waiting to be written to disk.
    Dirty { page: Page, block: Block, seq: u64 },
    /// Freed space promised to a NACKed requester via `OK`.
    Reserved { node: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: SlotState,
    /// The slot's contents become usable/free at this time (covers
    /// in-flight prefetch fills and in-progress flushes).
    available_at: Time,
    last_use: u64,
}

/// Outcome of a page-read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Served from the controller cache.
    Hit {
        /// When the data can start moving to the I/O bus.
        ready_at: Time,
    },
    /// Required a mechanical disk access.
    Miss {
        /// When the page is in the cache, after queueing for the arm.
        ready_at: Time,
    },
}

impl ReadOutcome {
    /// When the page is available, regardless of hit/miss.
    pub fn ready_at(&self) -> Time {
        match *self {
            ReadOutcome::Hit { ready_at } | ReadOutcome::Miss { ready_at } => ready_at,
        }
    }

    /// True for cache hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, ReadOutcome::Hit { .. })
    }
}

/// Outcome of a swap-out write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Installed in the cache; the requester gets an ACK. The caller
    /// should poll [`DiskController::try_flush`] at `flush_check_at`.
    Ack {
        /// When the controller should attempt a flush.
        flush_check_at: Time,
    },
    /// Cache full of swap-outs; requester queued for a later `OK`.
    Nack,
}

/// A speculative read that completed and now sits in the controller's
/// side cache waiting for the demand read it anticipated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpecEntry {
    page: Page,
    /// Node whose miss stream produced the hint (tagging lets the
    /// machine attribute installs back to its per-node detector).
    node: u32,
    ready_at: Time,
}

/// One page of the speculative batch currently occupying the disk arm.
/// A batch is a run of consecutive blocks read in a single arm access
/// (positioning paid once, like combined writes); each page becomes
/// available as its slice of the transfer completes.
#[derive(Debug, Clone, Copy)]
struct SpecActive {
    page: Page,
    node: u32,
    done_at: Time,
    /// Set when a demand read (or a superseding write) claimed the
    /// page mid-flight; the completed read is then discarded instead
    /// of installed.
    consumed: bool,
}

/// Outcome of a speculative-read hint ([`DiskController::spec_hint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecOutcome {
    /// The page is already cached or already tracked by the spec
    /// engine; the hint is dropped.
    Duplicate,
    /// The hint joined the speculation queue. When `schedule_check`
    /// is true no poll is outstanding and the caller must schedule a
    /// spec-engine step; when false a poll is already armed.
    Queued {
        /// Whether the caller must schedule a [`DiskController::spec_step`].
        schedule_check: bool,
    },
}

/// Result of one spec-engine step ([`DiskController::spec_step`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecProgress {
    /// Completed speculative reads that entered the side cache this
    /// step: `(page, hinting node)` in completion order.
    pub installed: Vec<(Page, u32)>,
    /// A queued batch acquired the arm this step.
    pub started: bool,
    /// When the caller should step the engine again; `None` when the
    /// engine has nothing in flight and nothing queued.
    pub next_check: Option<Time>,
}

/// A completed flush of one combined run of dirty pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushResult {
    /// When the disk operation started.
    pub start: Time,
    /// When the disk operation completes (slots free then).
    pub done_at: Time,
    /// Pages written in this single disk operation.
    pub pages: u64,
    /// `(node, page)` OK messages to deliver at `done_at`.
    pub oks: Vec<(u32, Page)>,
}

/// One disk controller (cache + arm + FIFO).
#[derive(Debug)]
pub struct DiskController {
    cfg: DiskControllerConfig,
    mech: Mechanics,
    arm: Resource,
    /// Optional DCD log-disk stage: flushes append here sequentially
    /// instead of seeking the data disk.
    log: Option<LogDisk>,
    slots: Vec<Slot>,
    nack_fifo: VecDeque<(u32, Page)>,
    clock: u64,
    dirty_seq: u64,
    // Speculative-read engine (driven by hints; empty otherwise).
    spec_queue: VecDeque<(Page, Block, u32)>,
    spec_active: VecDeque<SpecActive>,
    spec_cache: VecDeque<SpecEntry>,
    spec_poll_armed: bool,
    // statistics
    read_hits: u64,
    read_misses: u64,
    write_acks: u64,
    write_nacks: u64,
    prefetch_fills: u64,
    spec_hits: u64,
    spec_late: u64,
    spec_wasted: u64,
    spec_canceled: u64,
    combining: Tally,
    read_service: Tally,
}

impl DiskController {
    /// A controller with config `cfg` over mechanics `mech`.
    pub fn new(cfg: DiskControllerConfig, mech: Mechanics) -> Self {
        assert!(cfg.cache_pages > 0, "controller cache needs slots");
        DiskController {
            slots: vec![
                Slot {
                    state: SlotState::Empty,
                    available_at: 0,
                    last_use: 0,
                };
                cfg.cache_pages
            ],
            cfg,
            mech,
            arm: Resource::new("disk-arm"),
            log: None,
            nack_fifo: VecDeque::new(),
            clock: 0,
            dirty_seq: 0,
            spec_queue: VecDeque::new(),
            spec_active: VecDeque::new(),
            spec_cache: VecDeque::new(),
            spec_poll_armed: false,
            read_hits: 0,
            read_misses: 0,
            write_acks: 0,
            write_nacks: 0,
            prefetch_fills: 0,
            spec_hits: 0,
            spec_late: 0,
            spec_wasted: 0,
            spec_canceled: 0,
            combining: Tally::new(),
            read_service: Tally::new(),
        }
    }

    /// Paper-default controller for the given policy.
    pub fn paper_default(policy: PrefetchPolicy) -> Self {
        DiskController::new(
            DiskControllerConfig::paper_default(policy),
            Mechanics::paper_default(),
        )
    }

    /// Attach a DCD log-disk stage: subsequent flushes append to the
    /// log sequentially and reads check the log after the RAM cache.
    pub fn attach_log_disk(&mut self, log: LogDisk) {
        self.log = Some(log);
    }

    /// The attached log disk, if any.
    pub fn log_disk(&self) -> Option<&LogDisk> {
        self.log.as_ref()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn find_page(&self, page: Page) -> Option<usize> {
        self.slots.iter().position(|s| match s.state {
            SlotState::Clean { page: p } | SlotState::Dirty { page: p, .. } => p == page,
            _ => false,
        })
    }

    /// A slot an incoming *write* may take at `now`: Empty first, then
    /// the LRU Clean slot (write preference evicts prefetched data,
    /// even in-flight fills).
    fn claim_slot_for_write(&mut self, now: Time) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Empty && s.available_at <= now)
        {
            return Some(i);
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Clean { .. }))
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// A slot a *prefetch* may take at `now`: Empty or LRU Clean only —
    /// prefetches never displace dirty or reserved slots.
    fn claim_slot_for_prefetch(&mut self, now: Time) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Empty && s.available_at <= now)
        {
            return Some(i);
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Clean { .. }) && s.available_at <= now)
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// A slot a *stream extension* may take at `now`: Empty, or a
    /// Clean page at or before `consumed` (already read past).
    fn claim_slot_for_stream(&mut self, now: Time, consumed: Page) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Empty && s.available_at <= now)
        {
            return Some(i);
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(s.state, SlotState::Clean { page } if page <= consumed)
                    && s.available_at <= now
            })
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// Handle a page-read request arriving at `now`.
    pub fn read_page(&mut self, now: Time, page: Page, block: Block) -> ReadOutcome {
        let use_clock = self.tick();
        // Cache hit: the page is present *and* fully in the cache. A
        // page whose (pre)fetch is still in flight is classified as a
        // miss — the requester waits for the fill like a demand read.
        if let Some(i) = self.find_page(page) {
            self.slots[i].last_use = use_clock;
            let ready_at = self.slots[i].available_at.max(now);
            let was_ready = self.slots[i].available_at <= now;
            // Windowed prefetching keeps sequential streams ahead even
            // on hits.
            if let PrefetchPolicy::Window { depth } = self.cfg.policy {
                self.extend_stream(now, page, block, depth);
            }
            if was_ready {
                self.read_hits += 1;
                return ReadOutcome::Hit { ready_at };
            }
            self.read_misses += 1;
            return ReadOutcome::Miss { ready_at };
        }
        // Speculative side cache: a hinted read that already completed
        // serves the demand directly; one still on the arm is consumed
        // at its completion time (a *late* prefetch, still a hit).
        if let Some(i) = self.spec_cache.iter().position(|e| e.page == page) {
            let e = self.spec_cache.remove(i).expect("position is in bounds");
            self.read_hits += 1;
            self.spec_hits += 1;
            if e.ready_at > now {
                self.spec_late += 1;
            }
            return ReadOutcome::Hit {
                ready_at: e.ready_at.max(now),
            };
        }
        if let Some(a) = self
            .spec_active
            .iter_mut()
            .find(|a| !a.consumed && a.page == page)
        {
            a.consumed = true;
            let ready_at = a.done_at.max(now);
            self.read_hits += 1;
            self.spec_hits += 1;
            if a.done_at > now {
                self.spec_late += 1;
            }
            return ReadOutcome::Hit { ready_at };
        }
        // Demand-miss collision with a queued (unstarted) hint for the
        // same page: cancel it — the demand read pays the mechanics
        // itself, and the hint would only duplicate the transfer.
        if let Some(i) = self.spec_queue.iter().position(|&(p, _, _)| p == page) {
            self.spec_queue.remove(i);
            self.spec_canceled += 1;
        }
        if self.cfg.policy == PrefetchPolicy::Optimal {
            // Idealized: the page was already prefetched into the
            // cache, so the request is served immediately -- but the
            // background prefetch still occupied the disk (paper: "all
            // disk read accesses are performed in the background of
            // page read requests"). Charge the arm a sequential
            // transfer so writes contend with the prefetch stream.
            self.read_hits += 1;
            let bg = self.mech.transfer_time(1);
            self.arm.try_acquire(now, bg);
            return ReadOutcome::Hit { ready_at: now };
        }
        // Naive/window: streams extend on hits under the window policy.
        // (A hit returned above under both policies.)
        self.read_misses += 1;
        // DCD: the newest copy may live on the log disk; reading it
        // back pays full mechanics there ("comparable to accesses to
        // the data disk") and skips the data-disk arm.
        if self.log.as_ref().is_some_and(|l| l.contains(page)) {
            let done = self
                .log
                .as_mut()
                .expect("checked above")
                .read(now, page)
                .expect("contains implies readable");
            self.read_service.add(done - now);
            if let Some(i) = self.claim_slot_for_prefetch(now) {
                let use_clock = self.tick();
                self.slots[i] = Slot {
                    state: SlotState::Clean { page },
                    available_at: done,
                    last_use: use_clock,
                };
            }
            return ReadOutcome::Miss { ready_at: done };
        }
        let service = self.mech.access(block, 1);
        let grant = self.arm.acquire(now, service);
        self.read_service.add(grant.end - now);
        let ready_at = grant.end;
        // Install the demand page.
        if let Some(i) = self.claim_slot_for_prefetch(now) {
            let use_clock = self.tick();
            self.slots[i] = Slot {
                state: SlotState::Clean { page },
                available_at: ready_at,
                last_use: use_clock,
            };
        }
        // Sequential prefetch: fill remaining eligible slots with the
        // pages following the miss.
        let span = match self.cfg.policy {
            PrefetchPolicy::Window { depth } => depth.max(1),
            PrefetchPolicy::Demand => 0,
            _ => self.cfg.cache_pages,
        };
        let mut next_page = page + 1;
        let mut next_block = block + 1;
        let mut fill_done = ready_at;
        for _ in 0..span {
            // Never prefetch a page already cached.
            if self.find_page(next_page).is_some() {
                next_page += 1;
                next_block += 1;
                continue;
            }
            let Some(i) = self.claim_slot_for_prefetch(now) else {
                break;
            };
            // Sequential continuation: transfer time only.
            let service = self.mech.access(next_block, 1);
            let grant = self.arm.acquire(fill_done, service);
            fill_done = grant.end;
            let use_clock = self.tick();
            // Prefetched pages are older than the demand page in LRU
            // terms; use_clock ordering already ensures the demand
            // page was touched most recently... except it was touched
            // earlier. Touch prefetches with an older timestamp by
            // swapping: simplest is to leave them most-recent; the
            // 4-slot cache makes the distinction negligible.
            self.prefetch_fills += 1;
            self.slots[i] = Slot {
                state: SlotState::Clean { page: next_page },
                available_at: fill_done,
                last_use: use_clock.saturating_sub(1_000_000),
            };
            next_page += 1;
            next_block += 1;
        }
        ReadOutcome::Miss { ready_at }
    }

    /// Extend a sequential prefetch stream past a hit page: fetch the
    /// pages following `page` that are not yet cached, using eligible
    /// (empty/clean) slots only, in the background of the request.
    fn extend_stream(&mut self, now: Time, page: Page, block: Block, depth: usize) {
        let mut fill_from = now;
        for k in 1..=depth as u64 {
            let next_page = page + k;
            let next_block = block + k;
            if self.find_page(next_page).is_some() {
                continue;
            }
            // Only displace empty slots or pages the reader has already
            // consumed (<= the current hit) — never the unread lookahead.
            let Some(i) = self.claim_slot_for_stream(now, page) else {
                break;
            };
            let service = self.mech.access(next_block, 1);
            let grant = self.arm.acquire(fill_from, service);
            fill_from = grant.end;
            let use_clock = self.tick();
            self.prefetch_fills += 1;
            self.slots[i] = Slot {
                state: SlotState::Clean { page: next_page },
                available_at: grant.end,
                last_use: use_clock.saturating_sub(1_000_000),
            };
        }
    }

    /// Handle a swap-out page write arriving at `now` from `from_node`.
    pub fn write_page(
        &mut self,
        now: Time,
        page: Page,
        block: Block,
        from_node: u32,
    ) -> WriteOutcome {
        let use_clock = self.tick();
        let seq = self.dirty_seq;
        // A swap-out supersedes any speculative copy of the page: the
        // hinted data is stale the moment the write is accepted.
        if let Some(i) = self.spec_cache.iter().position(|e| e.page == page) {
            self.spec_cache.remove(i);
            self.spec_wasted += 1;
        }
        if let Some(i) = self.spec_queue.iter().position(|&(p, _, _)| p == page) {
            self.spec_queue.remove(i);
            self.spec_canceled += 1;
        }
        if let Some(a) = self
            .spec_active
            .iter_mut()
            .find(|a| !a.consumed && a.page == page)
        {
            a.consumed = true;
            self.spec_wasted += 1;
        }
        // Overwrite of a page already cached (clean or dirty).
        if let Some(i) = self.find_page(page) {
            self.dirty_seq += 1;
            self.write_acks += 1;
            self.retract_nack(from_node, page);
            self.slots[i] = Slot {
                state: SlotState::Dirty { page, block, seq },
                available_at: now,
                last_use: use_clock,
            };
            return WriteOutcome::Ack {
                flush_check_at: now + self.cfg.flush_delay,
            };
        }
        // A slot reserved for this node by a previous OK.
        let reserved = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Reserved { node: from_node });
        let slot = reserved.or_else(|| self.claim_slot_for_write(now));
        match slot {
            Some(i) => {
                self.dirty_seq += 1;
                self.write_acks += 1;
                self.retract_nack(from_node, page);
                self.slots[i] = Slot {
                    state: SlotState::Dirty { page, block, seq },
                    available_at: now,
                    last_use: use_clock,
                };
                WriteOutcome::Ack {
                    flush_check_at: now + self.cfg.flush_delay,
                }
            }
            None => {
                self.write_nacks += 1;
                // A timed-out-and-re-sent swap can be NACKed more than
                // once; a second FIFO entry would earn the node a second
                // reservation that no write ever consumes.
                if !self.nack_fifo.iter().any(|&(n, p)| n == from_node && p == page) {
                    self.nack_fifo.push_back((from_node, page));
                }
                WriteOutcome::Nack
            }
        }
    }

    /// Attempt to flush one combined run of dirty pages at `now`.
    ///
    /// Picks the oldest dirty page, combines it with every cached dirty
    /// page on consecutive blocks, and writes them in a single disk
    /// operation. Freed slots are first handed to NACKed requesters
    /// (as `Reserved`, with an `OK` message in the result).
    pub fn try_flush(&mut self, now: Time) -> Option<FlushResult> {
        if self.log.is_some() {
            return self.try_flush_to_log(now);
        }
        // Demand reads have priority on the arm: a background flush
        // only starts when the disk is idle. Callers use
        // [`DiskController::arm_free_at`] to re-poll.
        if !self.arm.is_idle_at(now) {
            return None;
        }
        // Collect flushable dirty slots (installed by now).
        let mut dirty: Vec<(usize, Page, Block, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SlotState::Dirty { page, block, seq } if s.available_at <= now => {
                    Some((i, page, block, seq))
                }
                _ => None,
            })
            .collect();
        if dirty.is_empty() {
            return None;
        }
        // Oldest first.
        let &(_, _, seed_block, _) = dirty.iter().min_by_key(|&&(_, _, _, seq)| seq)?;
        // Gather the run of consecutive blocks containing seed_block.
        dirty.sort_by_key(|&(_, _, b, _)| b);
        let seed_pos = dirty.iter().position(|&(_, _, b, _)| b == seed_block)?;
        let mut lo = seed_pos;
        while lo > 0 && dirty[lo - 1].2 + 1 == dirty[lo].2 {
            lo -= 1;
        }
        let mut hi = seed_pos;
        while hi + 1 < dirty.len() && dirty[hi].2 + 1 == dirty[hi + 1].2 {
            hi += 1;
        }
        let run = &dirty[lo..=hi];
        let npages = run.len() as u64;
        let start_block = run[0].2;
        let service = self.mech.access(start_block, npages);
        let grant = self.arm.acquire(now, service);
        self.combining.add(npages);
        // Transition slots: freed at grant.end, reserved for waiters.
        let mut oks = Vec::new();
        for &(i, _, _, _) in run {
            let state = if let Some((node, page)) = self.nack_fifo.pop_front() {
                oks.push((node, page));
                SlotState::Reserved { node }
            } else {
                SlotState::Empty
            };
            self.slots[i] = Slot {
                state,
                available_at: grant.end,
                last_use: self.slots[i].last_use,
            };
        }
        Some(FlushResult {
            start: grant.start,
            done_at: grant.end,
            pages: npages,
            oks,
        })
    }

    /// Accept a machine-issued speculative-read hint: read `page` into
    /// the side cache when the arm has nothing better to do. Duplicate
    /// hints (page cached, queued, reading, or installed) are dropped.
    pub fn spec_hint(&mut self, _now: Time, page: Page, block: Block, node: u32) -> SpecOutcome {
        if self.find_page(page).is_some() || self.spec_tracks(page) {
            return SpecOutcome::Duplicate;
        }
        self.spec_queue.push_back((page, block, node));
        let schedule_check = !self.spec_poll_armed;
        self.spec_poll_armed = true;
        SpecOutcome::Queued { schedule_check }
    }

    /// Advance the speculative-read engine at `now`: retire finished
    /// reads into the side cache (FIFO-evicting the oldest un-consumed
    /// entry when full — counted as *wasted* speculation) and, when
    /// the current batch is drained, start the next queued batch. A
    /// batch is the front hint plus every queued hint that continues
    /// its block run, read in a single arm access so the seek and
    /// rotation are paid once (the same amortization that makes
    /// combined writes cheaper than separate ones). Batches queue on
    /// the arm like demand work: on a busy disk the arm never idles,
    /// so waiting for an idle window would let the demand read for a
    /// hinted page arrive first and retract the hint — the machine's
    /// per-node in-flight cap is what bounds how much arm time
    /// speculation can claim.
    pub fn spec_step(&mut self, now: Time) -> SpecProgress {
        self.spec_poll_armed = false;
        let mut installed = Vec::new();
        while let Some(a) = self.spec_active.front().copied() {
            if a.done_at > now {
                break;
            }
            self.spec_active.pop_front();
            if !a.consumed {
                if self.spec_cache.len() >= self.cfg.spec_cache_pages.max(1) {
                    self.spec_cache.pop_front();
                    self.spec_wasted += 1;
                }
                self.spec_cache.push_back(SpecEntry {
                    page: a.page,
                    node: a.node,
                    ready_at: a.done_at,
                });
                installed.push((a.page, a.node));
            }
        }
        let mut started = false;
        let mut next_check = None;
        if let Some(front) = self.spec_active.front() {
            // Batch still on the arm: poll again at the next page's
            // completion so it installs as soon as it lands.
            next_check = Some(front.done_at);
        } else if !self.spec_queue.is_empty() {
            let head = self.spec_queue.pop_front().expect("non-empty");
            let mut batch = vec![head];
            let max_batch = self.cfg.spec_cache_pages.max(1);
            while batch.len() < max_batch {
                let want = batch.last().expect("non-empty").1 + 1;
                match self.spec_queue.iter().position(|&(_, b, _)| b == want) {
                    Some(i) => {
                        let entry = self.spec_queue.remove(i).expect("in range");
                        batch.push(entry);
                    }
                    None => break,
                }
            }
            let n = batch.len() as u64;
            let service = self.mech.access(batch[0].1, n);
            let grant = self.arm.acquire(now, service);
            // Pages land progressively: positioning first, then one
            // transfer slice per page, in block order.
            let per_page = self.mech.transfer_time(1);
            let positioning = service.saturating_sub(per_page * n);
            for (i, &(page, _, node)) in batch.iter().enumerate() {
                self.spec_active.push_back(SpecActive {
                    page,
                    node,
                    done_at: grant.start + positioning + per_page * (i as u64 + 1),
                    consumed: false,
                });
            }
            started = true;
            next_check = Some(self.spec_active.front().expect("non-empty").done_at);
        }
        if next_check.is_some() {
            self.spec_poll_armed = true;
        }
        SpecProgress {
            installed,
            started,
            next_check,
        }
    }

    /// Cancel a *queued* (unstarted) speculative read for `page`.
    /// Returns whether a hint was retracted; a read already on the arm
    /// or already installed is not cancellable.
    pub fn spec_cancel(&mut self, page: Page) -> bool {
        if let Some(i) = self.spec_queue.iter().position(|&(p, _, _)| p == page) {
            self.spec_queue.remove(i);
            self.spec_canceled += 1;
            return true;
        }
        false
    }

    /// Whether the spec engine tracks `page` in any stage (queued,
    /// reading, or installed in the side cache).
    pub fn spec_tracks(&self, page: Page) -> bool {
        self.spec_queue.iter().any(|&(p, _, _)| p == page)
            || self
                .spec_active
                .iter()
                .any(|a| !a.consumed && a.page == page)
            || self.spec_cache.iter().any(|e| e.page == page)
    }

    /// Demand reads served by the speculative side cache (late ones
    /// included).
    pub fn spec_hits(&self) -> u64 {
        self.spec_hits
    }

    /// Speculative hits whose read had not yet completed when the
    /// demand arrived (the demand waited on the in-flight transfer).
    pub fn spec_late(&self) -> u64 {
        self.spec_late
    }

    /// Speculative reads whose data was never consumed: evicted from
    /// the side cache or superseded by a write.
    pub fn spec_wasted(&self) -> u64 {
        self.spec_wasted
    }

    /// Queued hints retracted before reaching the arm (demand-miss
    /// collisions, stale predictions, superseding writes).
    pub fn spec_canceled(&self) -> u64 {
        self.spec_canceled
    }

    /// Charge the disk arm a background sequential page transfer (the
    /// optimal-prefetching engine streaming a page that a ring hit
    /// could not abort in time). Opportunistic: the idealized
    /// prefetcher has the lowest priority on the arm, so the charge is
    /// skipped when the arm is already busy.
    pub fn background_read(&mut self, now: Time) {
        let bg = self.mech.transfer_time(1);
        self.arm.try_acquire(now, bg);
    }

    /// Match NACKed requesters waiting in the FIFO with slots that
    /// have become free (paper: "When room becomes available in the
    /// controller's cache, the controller sends a OK message"). Each
    /// matched slot is reserved for its requester; returns the
    /// `(node, page)` OK messages to deliver now. Call after a flush
    /// completes — requests that were NACKed *during* the flush missed
    /// the reservation pass inside [`DiskController::try_flush`].
    pub fn claim_for_waiters(&mut self, now: Time) -> Vec<(u32, Page)> {
        let mut oks = Vec::new();
        while !self.nack_fifo.is_empty() {
            let slot = self
                .slots
                .iter()
                .position(|s| s.state == SlotState::Empty && s.available_at <= now)
                .or_else(|| {
                    self.slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| {
                            matches!(s.state, SlotState::Clean { .. }) && s.available_at <= now
                        })
                        .min_by_key(|(_, s)| s.last_use)
                        .map(|(i, _)| i)
                });
            let Some(i) = slot else { break };
            let (node, page) = self.nack_fifo.pop_front().expect("non-empty");
            self.slots[i] = Slot {
                state: SlotState::Reserved { node },
                available_at: now,
                last_use: self.slots[i].last_use,
            };
            oks.push((node, page));
        }
        oks
    }

    /// Whether an incoming write at `now` would be ACKed: the page is
    /// already cached, or a slot is claimable. Used by the NWCache
    /// interface, which checks for room before draining a channel.
    pub fn has_write_room(&self, now: Time) -> bool {
        self.slots.iter().any(|s| match s.state {
            SlotState::Empty => s.available_at <= now,
            SlotState::Clean { .. } => true,
            _ => false,
        })
    }

    /// DCD flush: every dirty page goes to the log disk in one
    /// sequential append, regardless of home-block adjacency.
    fn try_flush_to_log(&mut self, now: Time) -> Option<FlushResult> {
        let log = self.log.as_mut().expect("DCD flush requires a log");
        if log.arm_free_at(now) > now {
            return None;
        }
        let dirty: Vec<(usize, Page)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SlotState::Dirty { page, .. } if s.available_at <= now => Some((i, page)),
                _ => None,
            })
            .collect();
        if dirty.is_empty() {
            return None;
        }
        let pages: Vec<Page> = dirty.iter().map(|&(_, p)| p).collect();
        let done_at = log.append(now, &pages);
        self.combining.add(pages.len() as u64);
        let mut oks = Vec::new();
        for &(i, _) in &dirty {
            let state = if let Some((node, page)) = self.nack_fifo.pop_front() {
                oks.push((node, page));
                SlotState::Reserved { node }
            } else {
                SlotState::Empty
            };
            self.slots[i] = Slot {
                state,
                available_at: done_at,
                last_use: self.slots[i].last_use,
            };
        }
        Some(FlushResult {
            start: now,
            done_at,
            pages: pages.len() as u64,
            oks,
        })
    }

    /// Earliest time the arm would be free for a request issued at
    /// `now` (callers re-poll flushes at this time): with a DCD log
    /// attached, flushes only need the *log* arm.
    pub fn arm_free_at(&self, now: Time) -> Time {
        match &self.log {
            Some(log) => log.arm_free_at(now),
            None => self.arm.earliest_start(now),
        }
    }

    /// True if any dirty page is waiting to be flushed.
    pub fn has_pending_dirty(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Dirty { .. }))
    }

    /// Whether `page` is currently cached (any state).
    pub fn cache_contains(&self, page: Page) -> bool {
        self.find_page(page).is_some()
    }

    /// Number of NACKed requesters waiting for an `OK`.
    pub fn nack_queue_len(&self) -> usize {
        self.nack_fifo.len()
    }

    /// Occupied cache slots (any non-empty state) — the fill level the
    /// observability sampler tracks over time.
    pub fn cache_fill(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s.state, SlotState::Empty))
            .count()
    }

    /// Total cache slots.
    pub fn cache_slots(&self) -> usize {
        self.slots.len()
    }

    /// Withdraw a pending NACK-FIFO entry for `(node, page)`. Called
    /// when a write for the pair lands anyway (a timed-out swap was
    /// re-sent and the duplicate found room), and by the NWCache
    /// interface, which retries rejected drains through its own
    /// per-channel FIFO. A stale entry would tie up a cache slot as
    /// `Reserved` for an `OK` message nothing consumes.
    pub fn retract_nack(&mut self, node: u32, page: Page) {
        if let Some(i) = self
            .nack_fifo
            .iter()
            .rposition(|&(n, p)| n == node && p == page)
        {
            self.nack_fifo.remove(i);
        }
    }

    /// Read hits observed.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Read misses observed.
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// ACKed swap-out writes.
    pub fn write_acks(&self) -> u64 {
        self.write_acks
    }

    /// NACKed swap-out writes.
    pub fn write_nacks(&self) -> u64 {
        self.write_nacks
    }

    /// Background prefetch fills performed.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Pages-per-disk-write-operation tally (Tables 5/6).
    pub fn combining(&self) -> &Tally {
        &self.combining
    }

    /// Demand-read service time tally (queueing + mechanical).
    pub fn read_service(&self) -> &Tally {
        &self.read_service
    }

    /// The disk arm resource (for utilization reports).
    pub fn arm(&self) -> &Resource {
        &self.arm
    }

    /// The mechanical model (for statistics).
    pub fn mechanics(&self) -> &Mechanics {
        &self.mech
    }

    /// Serialize the controller: mechanics, arm, cache slots in slot
    /// order (slot order is observable through LRU victim selection),
    /// NACK FIFO in arrival order, counters, tallies, and the log-disk
    /// stage when attached.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        self.mech.ckpt_save(w);
        self.arm.ckpt_save(w);
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot.state {
                SlotState::Empty => w.u32(0),
                SlotState::Clean { page } => {
                    w.u32(1);
                    w.u64(page);
                }
                SlotState::Dirty { page, block, seq } => {
                    w.u32(2);
                    w.u64(page);
                    w.u64(block);
                    w.u64(seq);
                }
                SlotState::Reserved { node } => {
                    w.u32(3);
                    w.u32(node);
                }
            }
            w.time(slot.available_at);
            w.u64(slot.last_use);
        }
        w.usize(self.nack_fifo.len());
        for &(node, page) in &self.nack_fifo {
            w.u32(node);
            w.u64(page);
        }
        w.u64(self.clock);
        w.u64(self.dirty_seq);
        w.u64(self.read_hits);
        w.u64(self.read_misses);
        w.u64(self.write_acks);
        w.u64(self.write_nacks);
        w.u64(self.prefetch_fills);
        self.combining.ckpt_save(w);
        self.read_service.ckpt_save(w);
        match &self.log {
            None => w.bool(false),
            Some(log) => {
                w.bool(true);
                log.ckpt_save(w);
            }
        }
        // Speculative-read engine: queue in arrival order, the active
        // batch in completion order, side cache in install order,
        // poll flag, counters.
        w.usize(self.spec_queue.len());
        for &(page, block, node) in &self.spec_queue {
            w.u64(page);
            w.u64(block);
            w.u32(node);
        }
        w.usize(self.spec_active.len());
        for a in &self.spec_active {
            w.u64(a.page);
            w.u32(a.node);
            w.time(a.done_at);
            w.bool(a.consumed);
        }
        w.usize(self.spec_cache.len());
        for e in &self.spec_cache {
            w.u64(e.page);
            w.u32(e.node);
            w.time(e.ready_at);
        }
        w.bool(self.spec_poll_armed);
        w.u64(self.spec_hits);
        w.u64(self.spec_late);
        w.u64(self.spec_wasted);
        w.u64(self.spec_canceled);
    }

    /// Overlay state saved by [`DiskController::ckpt_save`] onto a
    /// controller built with the same configuration (including the
    /// presence or absence of a log-disk stage).
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.mech.ckpt_restore(r)?;
        self.arm.ckpt_restore(r)?;
        let n = r.usize()?;
        if n != self.slots.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("controller has {n} cache slots, expected {}", self.slots.len()),
            });
        }
        for slot in &mut self.slots {
            slot.state = match r.u32()? {
                0 => SlotState::Empty,
                1 => SlotState::Clean { page: r.u64()? },
                2 => SlotState::Dirty {
                    page: r.u64()?,
                    block: r.u64()?,
                    seq: r.u64()?,
                },
                3 => SlotState::Reserved { node: r.u32()? },
                tag => {
                    return Err(CkptError::Invalid {
                        offset: r.offset(),
                        what: format!("unknown slot-state tag {tag}"),
                    })
                }
            };
            slot.available_at = r.time()?;
            slot.last_use = r.u64()?;
        }
        let n = r.usize()?;
        self.nack_fifo.clear();
        for _ in 0..n {
            let node = r.u32()?;
            let page = r.u64()?;
            self.nack_fifo.push_back((node, page));
        }
        self.clock = r.u64()?;
        self.dirty_seq = r.u64()?;
        self.read_hits = r.u64()?;
        self.read_misses = r.u64()?;
        self.write_acks = r.u64()?;
        self.write_nacks = r.u64()?;
        self.prefetch_fills = r.u64()?;
        self.combining.ckpt_restore(r)?;
        self.read_service.ckpt_restore(r)?;
        let has_log = r.bool()?;
        match (&mut self.log, has_log) {
            (Some(log), true) => log.ckpt_restore(r)?,
            (None, false) => {}
            (have, want) => {
                return Err(CkptError::Invalid {
                    offset: r.offset(),
                    what: format!(
                        "checkpoint log-disk presence {want} but controller has {}",
                        have.is_some()
                    ),
                })
            }
        }
        let n = r.usize()?;
        self.spec_queue.clear();
        for _ in 0..n {
            let page = r.u64()?;
            let block = r.u64()?;
            let node = r.u32()?;
            self.spec_queue.push_back((page, block, node));
        }
        let n = r.usize()?;
        self.spec_active.clear();
        for _ in 0..n {
            self.spec_active.push_back(SpecActive {
                page: r.u64()?,
                node: r.u32()?,
                done_at: r.time()?,
                consumed: r.bool()?,
            });
        }
        let n = r.usize()?;
        self.spec_cache.clear();
        for _ in 0..n {
            self.spec_cache.push_back(SpecEntry {
                page: r.u64()?,
                node: r.u32()?,
                ready_at: r.time()?,
            });
        }
        self.spec_poll_armed = r.bool()?;
        self.spec_hits = r.u64()?;
        self.spec_late = r.u64()?;
        self.spec_wasted = r.u64()?;
        self.spec_canceled = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive() -> DiskController {
        DiskController::paper_default(PrefetchPolicy::Naive)
    }

    fn optimal() -> DiskController {
        DiskController::paper_default(PrefetchPolicy::Optimal)
    }

    #[test]
    fn optimal_reads_always_hit() {
        let mut c = optimal();
        for p in [0u64, 17, 999] {
            let r = c.read_page(100, p, p);
            assert_eq!(r, ReadOutcome::Hit { ready_at: 100 });
        }
        assert_eq!(c.read_hits(), 3);
        assert_eq!(c.read_misses(), 0);
    }

    #[test]
    fn naive_miss_then_sequential_hits() {
        let mut c = naive();
        let r = c.read_page(0, 10, 10);
        assert!(!r.is_hit());
        // Pages 11.. were prefetched; once the fills complete, a read
        // of the following page hits the cache.
        let r2 = c.read_page(r.ready_at() + 1_000_000, 11, 11);
        assert!(r2.is_hit(), "sequential page should be prefetched");
        assert!(c.prefetch_fills() > 0);
        // A read while a fill is still in flight counts as a miss but
        // completes at the fill time, not after a new disk access.
        let r3 = c.read_page(1, 12, 12);
        assert!(!r3.is_hit());
        assert!(r3.ready_at() <= r.ready_at() + 500_000);
    }

    #[test]
    fn naive_random_misses_pay_mechanics() {
        let mut c = naive();
        let r1 = c.read_page(0, 10, 10);
        let t1 = r1.ready_at();
        // Far-away page: seek + rotation + transfer, queued after the
        // prefetch fills of the first miss.
        let r2 = c.read_page(t1, 5000, 5000);
        assert!(!r2.is_hit());
        assert!(r2.ready_at() > t1 + 40_960);
    }

    #[test]
    fn writes_ack_until_cache_full_then_nack() {
        let mut c = naive();
        for p in 0..4u64 {
            match c.write_page(0, 100 + p, 100 + p, 1) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("premature NACK at {p}"),
            }
        }
        assert_eq!(c.write_page(0, 200, 200, 2), WriteOutcome::Nack);
        assert_eq!(c.nack_queue_len(), 1);
        assert_eq!(c.write_acks(), 4);
        assert_eq!(c.write_nacks(), 1);
    }

    #[test]
    fn writes_evict_clean_prefetches() {
        let mut c = naive();
        // Fill cache with clean pages via a read miss + prefetch.
        let r = c.read_page(0, 10, 10);
        let t = r.ready_at() + 1_000_000;
        // All four slots are clean; writes must still be ACKed.
        for p in 0..4u64 {
            match c.write_page(t, 500 + p, 500 + p, 1) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("write should evict clean prefetch"),
            }
        }
    }

    #[test]
    fn flush_combines_consecutive_blocks() {
        let mut c = naive();
        for p in 0..4u64 {
            c.write_page(0, p, p, 0);
        }
        let f = c.try_flush(20_000).expect("dirty pages to flush");
        assert_eq!(f.pages, 4, "4 consecutive pages combine into one op");
        assert_eq!(c.combining().mean(), 4.0);
        assert!(!c.has_pending_dirty());
    }

    #[test]
    fn flush_does_not_combine_nonconsecutive() {
        let mut c = naive();
        c.write_page(0, 0, 0, 0);
        c.write_page(0, 100, 100, 0);
        let f = c.try_flush(20_000).unwrap();
        assert_eq!(f.pages, 1);
        assert!(c.has_pending_dirty());
        let f2 = c.try_flush(f.done_at).unwrap();
        assert_eq!(f2.pages, 1);
        assert!(!c.has_pending_dirty());
    }

    #[test]
    fn flush_frees_slots_and_sends_oks() {
        let mut c = naive();
        for p in 0..4u64 {
            c.write_page(0, p, p, p as u32);
        }
        assert_eq!(c.write_page(0, 50, 50, 7), WriteOutcome::Nack);
        let f = c.try_flush(20_000).unwrap();
        assert_eq!(f.oks, vec![(7, 50)]);
        // The freed slot is reserved: another node still cannot claim
        // all four slots...
        let t = f.done_at;
        // Node 7 re-sends its page and must be accepted immediately.
        match c.write_page(t, 50, 50, 7) {
            WriteOutcome::Ack { .. } => {}
            WriteOutcome::Nack => panic!("reserved slot must accept node 7"),
        }
    }

    #[test]
    fn reserved_slot_rejects_other_writers_when_full() {
        let mut c = naive();
        for p in 0..4u64 {
            c.write_page(0, p, p, 0);
        }
        c.write_page(0, 50, 50, 7); // NACK, queued
        let f = c.try_flush(20_000).unwrap();
        assert_eq!(f.pages, 4);
        assert_eq!(f.oks.len(), 1);
        // After the flush, 3 slots empty + 1 reserved: 3 writes fit.
        let t = f.done_at;
        for p in 0..3u64 {
            match c.write_page(t, 60 + p, 60 + p, 2) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("empty slot must accept"),
            }
        }
        assert_eq!(c.write_page(t, 70, 70, 2), WriteOutcome::Nack);
    }

    #[test]
    fn rewrite_of_cached_page_updates_in_place() {
        let mut c = naive();
        c.write_page(0, 5, 5, 0);
        c.write_page(0, 5, 5, 0); // same page again
        assert_eq!(c.write_acks(), 2);
        // Still only occupies one slot: 3 more writes fit.
        for p in 0..3u64 {
            match c.write_page(0, 10 + p, 10 + p, 0) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("rewrite must not leak slots"),
            }
        }
    }

    #[test]
    fn read_hit_on_dirty_page() {
        let mut c = naive();
        c.write_page(0, 5, 5, 0);
        let r = c.read_page(10, 5, 5);
        assert!(r.is_hit());
    }

    #[test]
    fn flush_then_more_dirty_flushes_again() {
        let mut c = naive();
        c.write_page(0, 0, 0, 0);
        let f1 = c.try_flush(20_000).unwrap();
        c.write_page(f1.done_at, 1, 1, 0);
        let f2 = c.try_flush(f1.done_at + 20_000).unwrap();
        assert_eq!(f2.pages, 1);
        assert!(f2.done_at > f1.done_at);
    }

    #[test]
    fn no_flush_when_clean() {
        let mut c = naive();
        assert!(c.try_flush(100).is_none());
        c.read_page(0, 10, 10);
        assert!(c.try_flush(10_000_000).is_none());
    }

    fn demand() -> DiskController {
        DiskController::paper_default(PrefetchPolicy::Demand)
    }

    #[test]
    fn demand_policy_fetches_only_the_missed_page() {
        let mut c = demand();
        let r = c.read_page(0, 10, 10);
        assert!(!r.is_hit());
        assert_eq!(c.prefetch_fills(), 0, "demand policy must not span-prefetch");
        // The following page misses too.
        let r2 = c.read_page(r.ready_at(), 11, 11);
        assert!(!r2.is_hit());
    }

    #[test]
    fn spec_hint_read_installs_and_serves_demand() {
        let mut c = demand();
        match c.spec_hint(0, 42, 42, 1) {
            SpecOutcome::Queued { schedule_check } => assert!(schedule_check),
            o => panic!("fresh hint must queue, got {o:?}"),
        }
        // Duplicate hint while queued is dropped.
        assert_eq!(c.spec_hint(0, 42, 42, 1), SpecOutcome::Duplicate);
        let p1 = c.spec_step(0);
        assert!(p1.started);
        let done = p1.next_check.expect("completion poll");
        let p2 = c.spec_step(done);
        assert_eq!(p2.installed, vec![(42, 1)]);
        assert!(c.spec_tracks(42));
        // The demand read is a hit served from the side cache.
        let r = c.read_page(done + 10, 42, 42);
        assert_eq!(r, ReadOutcome::Hit { ready_at: done + 10 });
        assert_eq!(c.spec_hits(), 1);
        assert_eq!(c.spec_late(), 0);
        assert!(!c.spec_tracks(42), "consumed entry leaves the cache");
    }

    #[test]
    fn demand_on_inflight_spec_read_is_a_late_hit() {
        let mut c = demand();
        c.spec_hint(0, 42, 42, 1);
        let p = c.spec_step(0);
        let done = p.next_check.expect("completion poll");
        // Demand arrives while the speculative read is still on the arm.
        let r = c.read_page(done / 2, 42, 42);
        assert_eq!(r, ReadOutcome::Hit { ready_at: done });
        assert_eq!(c.spec_hits(), 1);
        assert_eq!(c.spec_late(), 1);
        // On completion the consumed read is discarded, not installed.
        let p2 = c.spec_step(done);
        assert!(p2.installed.is_empty());
        assert!(!c.spec_tracks(42));
    }

    #[test]
    fn demand_miss_collision_cancels_queued_hint() {
        let mut c = demand();
        c.spec_hint(0, 42, 42, 1);
        // No spec_step yet: the hint is still queued when the demand
        // read for the same page arrives.
        let r = c.read_page(0, 42, 42);
        assert!(!r.is_hit());
        assert_eq!(c.spec_canceled(), 1);
        assert!(!c.spec_tracks(42));
        // The engine has nothing left to do.
        let p = c.spec_step(r.ready_at());
        assert_eq!(p.next_check, None);
        assert!(!p.started);
    }

    #[test]
    fn spec_cancel_retracts_queued_but_not_active() {
        let mut c = demand();
        // Non-contiguous blocks so only page 10 batches onto the arm.
        c.spec_hint(0, 10, 10, 0);
        c.spec_hint(0, 20, 20, 0);
        let p = c.spec_step(0);
        assert!(p.started); // page 10 on the arm
        assert!(!c.spec_cancel(10), "active read is not cancellable");
        assert!(c.spec_cancel(20), "queued hint is cancellable");
        assert_eq!(c.spec_canceled(), 1);
    }

    #[test]
    fn contiguous_hints_batch_into_one_arm_access() {
        let mut c = demand();
        for k in 0..3u64 {
            c.spec_hint(0, 50 + k, 50 + k, 0);
        }
        let p = c.spec_step(0);
        assert!(p.started);
        // All three pages ride one access: positioning is paid once,
        // then pages land one transfer slice apart.
        let transfer = c.mech.transfer_time(1);
        let d1 = p.next_check.expect("first completion");
        let p1 = c.spec_step(d1);
        assert_eq!(p1.installed, vec![(50, 0)]);
        let d2 = p1.next_check.expect("second completion");
        assert_eq!(d2 - d1, transfer);
        let p2 = c.spec_step(d2);
        assert_eq!(p2.installed, vec![(51, 0)]);
        let d3 = p2.next_check.expect("third completion");
        assert_eq!(d3 - d2, transfer);
        let p3 = c.spec_step(d3);
        assert_eq!(p3.installed, vec![(52, 0)]);
        assert_eq!(p3.next_check, None, "batch drained");
        // A single separate access for page 52 would have paid its own
        // seek + rotation; batched it cost one transfer slice.
        assert!(c.spec_tracks(50) && c.spec_tracks(51) && c.spec_tracks(52));
    }

    #[test]
    fn write_supersedes_spec_entry_as_wasted() {
        let mut c = demand();
        c.spec_hint(0, 42, 42, 1);
        let p = c.spec_step(0);
        let done = p.next_check.unwrap();
        c.spec_step(done);
        assert!(c.spec_tracks(42));
        c.write_page(done + 1, 42, 42, 3);
        assert!(!c.spec_tracks(42));
        assert_eq!(c.spec_wasted(), 1);
    }

    #[test]
    fn spec_cache_evicts_fifo_as_wasted_when_full() {
        let mut c = demand();
        let cap = 8u64; // paper_default spec_cache_pages
        let mut t = 0;
        for k in 0..=cap {
            c.spec_hint(t, 100 + k, 100 + k, 0);
            loop {
                let p = c.spec_step(t);
                if !p.installed.is_empty() {
                    break;
                }
                t = p.next_check.expect("engine must make progress");
            }
        }
        assert!(!c.spec_tracks(100), "oldest entry evicted");
        assert!(c.spec_tracks(100 + cap));
        assert_eq!(c.spec_wasted(), 1);
    }

    #[test]
    fn spec_state_round_trips_through_checkpoint() {
        let mut c = demand();
        c.spec_hint(0, 10, 10, 0);
        c.spec_hint(0, 20, 20, 1);
        let p = c.spec_step(0); // 10 active, 20 queued
        assert!(p.started);
        let mut w = CkptWriter::new();
        w.begin_section(1);
        c.ckpt_save(&mut w);
        w.end_section();
        let bytes = w.finish();
        let mut c2 = demand();
        let mut r = CkptReader::new(&bytes).expect("header");
        r.begin_section(1).expect("section");
        c2.ckpt_restore(&mut r).expect("restore");
        r.end_section().expect("section end");
        let mut w2 = CkptWriter::new();
        w2.begin_section(1);
        c2.ckpt_save(&mut w2);
        w2.end_section();
        assert_eq!(bytes, w2.finish(), "spec state must round-trip");
    }
}
