//! Disk controller: page cache, prefetching, flow control, combining.
//!
//! The controller owns a tiny page cache (Table 1: 16 KB = 4 pages) in
//! front of the mechanical disk. Protocol (paper §3.1):
//!
//! * **Reads** — a requested page is served from the cache when present
//!   (*cache hit*); otherwise the disk is accessed. Under the *naive*
//!   policy the controller then keeps filling its cache with the pages
//!   sequentially following the missing page; under the *optimal*
//!   policy every read is a cache hit (all disk reads happen in the
//!   background of the request).
//! * **Writes (swap-outs)** — if the cache has room the page is
//!   installed and `ACK`ed ("writes are given preference over
//!   prefetches in the cache": clean pages are evicted for incoming
//!   writes). If the cache is full of swap-outs the controller `NACK`s
//!   and records the requester in a FIFO; when room appears it sends
//!   `OK`, prompting a re-send, with the freed slot reserved for that
//!   requester.
//! * **Write combining** — when the controller writes dirty pages to
//!   the disk it combines every run of consecutive blocks present in
//!   the cache into a single disk operation (Tables 5/6 measure the
//!   average pages per operation; the 4-slot cache caps it at 4).

use crate::dcd::LogDisk;
use crate::mechanics::Mechanics;
use crate::{Block, Page};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::stats::Tally;
use nw_sim::{Resource, Time};
use std::collections::VecDeque;

/// Read prefetching policy (paper §3.1, plus a realistic extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// Idealized prefetching: every page read hits the controller
    /// cache; disk reads run entirely in the background.
    Optimal,
    /// On a read miss, fill the cache with sequentially-following
    /// pages.
    Naive,
    /// Realistic windowed prefetching (the "sophisticated techniques"
    /// the paper expects to land between the two extremes): like
    /// naive on a miss, but sequential streams are also extended on
    /// *hits*, keeping the prefetcher ahead of a sequential reader up
    /// to `depth` pages.
    Window {
        /// How many pages ahead of the current request to stay.
        depth: usize,
    },
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiskControllerConfig {
    /// Cache capacity in pages (paper: 4).
    pub cache_pages: usize,
    /// Prefetch policy.
    pub policy: PrefetchPolicy,
    /// Accumulation window between a swap-out landing in the cache and
    /// the controller starting to flush it, letting consecutive pages
    /// gather so they can be combined.
    pub flush_delay: Time,
}

impl DiskControllerConfig {
    /// Paper defaults with the given policy.
    pub fn paper_default(policy: PrefetchPolicy) -> Self {
        DiskControllerConfig {
            cache_pages: 4,
            policy,
            flush_delay: 50_000, // 250 us accumulation window
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    /// A (pre)fetched page; may be evicted for an incoming write.
    Clean { page: Page },
    /// A swap-out waiting to be written to disk.
    Dirty { page: Page, block: Block, seq: u64 },
    /// Freed space promised to a NACKed requester via `OK`.
    Reserved { node: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: SlotState,
    /// The slot's contents become usable/free at this time (covers
    /// in-flight prefetch fills and in-progress flushes).
    available_at: Time,
    last_use: u64,
}

/// Outcome of a page-read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Served from the controller cache.
    Hit {
        /// When the data can start moving to the I/O bus.
        ready_at: Time,
    },
    /// Required a mechanical disk access.
    Miss {
        /// When the page is in the cache, after queueing for the arm.
        ready_at: Time,
    },
}

impl ReadOutcome {
    /// When the page is available, regardless of hit/miss.
    pub fn ready_at(&self) -> Time {
        match *self {
            ReadOutcome::Hit { ready_at } | ReadOutcome::Miss { ready_at } => ready_at,
        }
    }

    /// True for cache hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, ReadOutcome::Hit { .. })
    }
}

/// Outcome of a swap-out write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Installed in the cache; the requester gets an ACK. The caller
    /// should poll [`DiskController::try_flush`] at `flush_check_at`.
    Ack {
        /// When the controller should attempt a flush.
        flush_check_at: Time,
    },
    /// Cache full of swap-outs; requester queued for a later `OK`.
    Nack,
}

/// A completed flush of one combined run of dirty pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushResult {
    /// When the disk operation started.
    pub start: Time,
    /// When the disk operation completes (slots free then).
    pub done_at: Time,
    /// Pages written in this single disk operation.
    pub pages: u64,
    /// `(node, page)` OK messages to deliver at `done_at`.
    pub oks: Vec<(u32, Page)>,
}

/// One disk controller (cache + arm + FIFO).
#[derive(Debug)]
pub struct DiskController {
    cfg: DiskControllerConfig,
    mech: Mechanics,
    arm: Resource,
    /// Optional DCD log-disk stage: flushes append here sequentially
    /// instead of seeking the data disk.
    log: Option<LogDisk>,
    slots: Vec<Slot>,
    nack_fifo: VecDeque<(u32, Page)>,
    clock: u64,
    dirty_seq: u64,
    // statistics
    read_hits: u64,
    read_misses: u64,
    write_acks: u64,
    write_nacks: u64,
    prefetch_fills: u64,
    combining: Tally,
    read_service: Tally,
}

impl DiskController {
    /// A controller with config `cfg` over mechanics `mech`.
    pub fn new(cfg: DiskControllerConfig, mech: Mechanics) -> Self {
        assert!(cfg.cache_pages > 0, "controller cache needs slots");
        DiskController {
            slots: vec![
                Slot {
                    state: SlotState::Empty,
                    available_at: 0,
                    last_use: 0,
                };
                cfg.cache_pages
            ],
            cfg,
            mech,
            arm: Resource::new("disk-arm"),
            log: None,
            nack_fifo: VecDeque::new(),
            clock: 0,
            dirty_seq: 0,
            read_hits: 0,
            read_misses: 0,
            write_acks: 0,
            write_nacks: 0,
            prefetch_fills: 0,
            combining: Tally::new(),
            read_service: Tally::new(),
        }
    }

    /// Paper-default controller for the given policy.
    pub fn paper_default(policy: PrefetchPolicy) -> Self {
        DiskController::new(
            DiskControllerConfig::paper_default(policy),
            Mechanics::paper_default(),
        )
    }

    /// Attach a DCD log-disk stage: subsequent flushes append to the
    /// log sequentially and reads check the log after the RAM cache.
    pub fn attach_log_disk(&mut self, log: LogDisk) {
        self.log = Some(log);
    }

    /// The attached log disk, if any.
    pub fn log_disk(&self) -> Option<&LogDisk> {
        self.log.as_ref()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn find_page(&self, page: Page) -> Option<usize> {
        self.slots.iter().position(|s| match s.state {
            SlotState::Clean { page: p } | SlotState::Dirty { page: p, .. } => p == page,
            _ => false,
        })
    }

    /// A slot an incoming *write* may take at `now`: Empty first, then
    /// the LRU Clean slot (write preference evicts prefetched data,
    /// even in-flight fills).
    fn claim_slot_for_write(&mut self, now: Time) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Empty && s.available_at <= now)
        {
            return Some(i);
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Clean { .. }))
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// A slot a *prefetch* may take at `now`: Empty or LRU Clean only —
    /// prefetches never displace dirty or reserved slots.
    fn claim_slot_for_prefetch(&mut self, now: Time) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Empty && s.available_at <= now)
        {
            return Some(i);
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Clean { .. }) && s.available_at <= now)
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// A slot a *stream extension* may take at `now`: Empty, or a
    /// Clean page at or before `consumed` (already read past).
    fn claim_slot_for_stream(&mut self, now: Time, consumed: Page) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Empty && s.available_at <= now)
        {
            return Some(i);
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(s.state, SlotState::Clean { page } if page <= consumed)
                    && s.available_at <= now
            })
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
    }

    /// Handle a page-read request arriving at `now`.
    pub fn read_page(&mut self, now: Time, page: Page, block: Block) -> ReadOutcome {
        let use_clock = self.tick();
        // Cache hit: the page is present *and* fully in the cache. A
        // page whose (pre)fetch is still in flight is classified as a
        // miss — the requester waits for the fill like a demand read.
        if let Some(i) = self.find_page(page) {
            self.slots[i].last_use = use_clock;
            let ready_at = self.slots[i].available_at.max(now);
            let was_ready = self.slots[i].available_at <= now;
            // Windowed prefetching keeps sequential streams ahead even
            // on hits.
            if let PrefetchPolicy::Window { depth } = self.cfg.policy {
                self.extend_stream(now, page, block, depth);
            }
            if was_ready {
                self.read_hits += 1;
                return ReadOutcome::Hit { ready_at };
            }
            self.read_misses += 1;
            return ReadOutcome::Miss { ready_at };
        }
        if self.cfg.policy == PrefetchPolicy::Optimal {
            // Idealized: the page was already prefetched into the
            // cache, so the request is served immediately -- but the
            // background prefetch still occupied the disk (paper: "all
            // disk read accesses are performed in the background of
            // page read requests"). Charge the arm a sequential
            // transfer so writes contend with the prefetch stream.
            self.read_hits += 1;
            let bg = self.mech.transfer_time(1);
            self.arm.try_acquire(now, bg);
            return ReadOutcome::Hit { ready_at: now };
        }
        // Naive/window: streams extend on hits under the window policy.
        // (A hit returned above under both policies.)
        self.read_misses += 1;
        // DCD: the newest copy may live on the log disk; reading it
        // back pays full mechanics there ("comparable to accesses to
        // the data disk") and skips the data-disk arm.
        if self.log.as_ref().is_some_and(|l| l.contains(page)) {
            let done = self
                .log
                .as_mut()
                .expect("checked above")
                .read(now, page)
                .expect("contains implies readable");
            self.read_service.add(done - now);
            if let Some(i) = self.claim_slot_for_prefetch(now) {
                let use_clock = self.tick();
                self.slots[i] = Slot {
                    state: SlotState::Clean { page },
                    available_at: done,
                    last_use: use_clock,
                };
            }
            return ReadOutcome::Miss { ready_at: done };
        }
        let service = self.mech.access(block, 1);
        let grant = self.arm.acquire(now, service);
        self.read_service.add(grant.end - now);
        let ready_at = grant.end;
        // Install the demand page.
        if let Some(i) = self.claim_slot_for_prefetch(now) {
            let use_clock = self.tick();
            self.slots[i] = Slot {
                state: SlotState::Clean { page },
                available_at: ready_at,
                last_use: use_clock,
            };
        }
        // Sequential prefetch: fill remaining eligible slots with the
        // pages following the miss.
        let span = match self.cfg.policy {
            PrefetchPolicy::Window { depth } => depth.max(1),
            _ => self.cfg.cache_pages,
        };
        let mut next_page = page + 1;
        let mut next_block = block + 1;
        let mut fill_done = ready_at;
        for _ in 0..span {
            // Never prefetch a page already cached.
            if self.find_page(next_page).is_some() {
                next_page += 1;
                next_block += 1;
                continue;
            }
            let Some(i) = self.claim_slot_for_prefetch(now) else {
                break;
            };
            // Sequential continuation: transfer time only.
            let service = self.mech.access(next_block, 1);
            let grant = self.arm.acquire(fill_done, service);
            fill_done = grant.end;
            let use_clock = self.tick();
            // Prefetched pages are older than the demand page in LRU
            // terms; use_clock ordering already ensures the demand
            // page was touched most recently... except it was touched
            // earlier. Touch prefetches with an older timestamp by
            // swapping: simplest is to leave them most-recent; the
            // 4-slot cache makes the distinction negligible.
            self.prefetch_fills += 1;
            self.slots[i] = Slot {
                state: SlotState::Clean { page: next_page },
                available_at: fill_done,
                last_use: use_clock.saturating_sub(1_000_000),
            };
            next_page += 1;
            next_block += 1;
        }
        ReadOutcome::Miss { ready_at }
    }

    /// Extend a sequential prefetch stream past a hit page: fetch the
    /// pages following `page` that are not yet cached, using eligible
    /// (empty/clean) slots only, in the background of the request.
    fn extend_stream(&mut self, now: Time, page: Page, block: Block, depth: usize) {
        let mut fill_from = now;
        for k in 1..=depth as u64 {
            let next_page = page + k;
            let next_block = block + k;
            if self.find_page(next_page).is_some() {
                continue;
            }
            // Only displace empty slots or pages the reader has already
            // consumed (<= the current hit) — never the unread lookahead.
            let Some(i) = self.claim_slot_for_stream(now, page) else {
                break;
            };
            let service = self.mech.access(next_block, 1);
            let grant = self.arm.acquire(fill_from, service);
            fill_from = grant.end;
            let use_clock = self.tick();
            self.prefetch_fills += 1;
            self.slots[i] = Slot {
                state: SlotState::Clean { page: next_page },
                available_at: grant.end,
                last_use: use_clock.saturating_sub(1_000_000),
            };
        }
    }

    /// Handle a swap-out page write arriving at `now` from `from_node`.
    pub fn write_page(
        &mut self,
        now: Time,
        page: Page,
        block: Block,
        from_node: u32,
    ) -> WriteOutcome {
        let use_clock = self.tick();
        let seq = self.dirty_seq;
        // Overwrite of a page already cached (clean or dirty).
        if let Some(i) = self.find_page(page) {
            self.dirty_seq += 1;
            self.write_acks += 1;
            self.retract_nack(from_node, page);
            self.slots[i] = Slot {
                state: SlotState::Dirty { page, block, seq },
                available_at: now,
                last_use: use_clock,
            };
            return WriteOutcome::Ack {
                flush_check_at: now + self.cfg.flush_delay,
            };
        }
        // A slot reserved for this node by a previous OK.
        let reserved = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Reserved { node: from_node });
        let slot = reserved.or_else(|| self.claim_slot_for_write(now));
        match slot {
            Some(i) => {
                self.dirty_seq += 1;
                self.write_acks += 1;
                self.retract_nack(from_node, page);
                self.slots[i] = Slot {
                    state: SlotState::Dirty { page, block, seq },
                    available_at: now,
                    last_use: use_clock,
                };
                WriteOutcome::Ack {
                    flush_check_at: now + self.cfg.flush_delay,
                }
            }
            None => {
                self.write_nacks += 1;
                // A timed-out-and-re-sent swap can be NACKed more than
                // once; a second FIFO entry would earn the node a second
                // reservation that no write ever consumes.
                if !self.nack_fifo.iter().any(|&(n, p)| n == from_node && p == page) {
                    self.nack_fifo.push_back((from_node, page));
                }
                WriteOutcome::Nack
            }
        }
    }

    /// Attempt to flush one combined run of dirty pages at `now`.
    ///
    /// Picks the oldest dirty page, combines it with every cached dirty
    /// page on consecutive blocks, and writes them in a single disk
    /// operation. Freed slots are first handed to NACKed requesters
    /// (as `Reserved`, with an `OK` message in the result).
    pub fn try_flush(&mut self, now: Time) -> Option<FlushResult> {
        if self.log.is_some() {
            return self.try_flush_to_log(now);
        }
        // Demand reads have priority on the arm: a background flush
        // only starts when the disk is idle. Callers use
        // [`DiskController::arm_free_at`] to re-poll.
        if !self.arm.is_idle_at(now) {
            return None;
        }
        // Collect flushable dirty slots (installed by now).
        let mut dirty: Vec<(usize, Page, Block, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SlotState::Dirty { page, block, seq } if s.available_at <= now => {
                    Some((i, page, block, seq))
                }
                _ => None,
            })
            .collect();
        if dirty.is_empty() {
            return None;
        }
        // Oldest first.
        let &(_, _, seed_block, _) = dirty.iter().min_by_key(|&&(_, _, _, seq)| seq)?;
        // Gather the run of consecutive blocks containing seed_block.
        dirty.sort_by_key(|&(_, _, b, _)| b);
        let seed_pos = dirty.iter().position(|&(_, _, b, _)| b == seed_block)?;
        let mut lo = seed_pos;
        while lo > 0 && dirty[lo - 1].2 + 1 == dirty[lo].2 {
            lo -= 1;
        }
        let mut hi = seed_pos;
        while hi + 1 < dirty.len() && dirty[hi].2 + 1 == dirty[hi + 1].2 {
            hi += 1;
        }
        let run = &dirty[lo..=hi];
        let npages = run.len() as u64;
        let start_block = run[0].2;
        let service = self.mech.access(start_block, npages);
        let grant = self.arm.acquire(now, service);
        self.combining.add(npages);
        // Transition slots: freed at grant.end, reserved for waiters.
        let mut oks = Vec::new();
        for &(i, _, _, _) in run {
            let state = if let Some((node, page)) = self.nack_fifo.pop_front() {
                oks.push((node, page));
                SlotState::Reserved { node }
            } else {
                SlotState::Empty
            };
            self.slots[i] = Slot {
                state,
                available_at: grant.end,
                last_use: self.slots[i].last_use,
            };
        }
        Some(FlushResult {
            start: grant.start,
            done_at: grant.end,
            pages: npages,
            oks,
        })
    }

    /// Charge the disk arm a background sequential page transfer (the
    /// optimal-prefetching engine streaming a page that a ring hit
    /// could not abort in time). Opportunistic: the idealized
    /// prefetcher has the lowest priority on the arm, so the charge is
    /// skipped when the arm is already busy.
    pub fn background_read(&mut self, now: Time) {
        let bg = self.mech.transfer_time(1);
        self.arm.try_acquire(now, bg);
    }

    /// Match NACKed requesters waiting in the FIFO with slots that
    /// have become free (paper: "When room becomes available in the
    /// controller's cache, the controller sends a OK message"). Each
    /// matched slot is reserved for its requester; returns the
    /// `(node, page)` OK messages to deliver now. Call after a flush
    /// completes — requests that were NACKed *during* the flush missed
    /// the reservation pass inside [`DiskController::try_flush`].
    pub fn claim_for_waiters(&mut self, now: Time) -> Vec<(u32, Page)> {
        let mut oks = Vec::new();
        while !self.nack_fifo.is_empty() {
            let slot = self
                .slots
                .iter()
                .position(|s| s.state == SlotState::Empty && s.available_at <= now)
                .or_else(|| {
                    self.slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| {
                            matches!(s.state, SlotState::Clean { .. }) && s.available_at <= now
                        })
                        .min_by_key(|(_, s)| s.last_use)
                        .map(|(i, _)| i)
                });
            let Some(i) = slot else { break };
            let (node, page) = self.nack_fifo.pop_front().expect("non-empty");
            self.slots[i] = Slot {
                state: SlotState::Reserved { node },
                available_at: now,
                last_use: self.slots[i].last_use,
            };
            oks.push((node, page));
        }
        oks
    }

    /// Whether an incoming write at `now` would be ACKed: the page is
    /// already cached, or a slot is claimable. Used by the NWCache
    /// interface, which checks for room before draining a channel.
    pub fn has_write_room(&self, now: Time) -> bool {
        self.slots.iter().any(|s| match s.state {
            SlotState::Empty => s.available_at <= now,
            SlotState::Clean { .. } => true,
            _ => false,
        })
    }

    /// DCD flush: every dirty page goes to the log disk in one
    /// sequential append, regardless of home-block adjacency.
    fn try_flush_to_log(&mut self, now: Time) -> Option<FlushResult> {
        let log = self.log.as_mut().expect("DCD flush requires a log");
        if log.arm_free_at(now) > now {
            return None;
        }
        let dirty: Vec<(usize, Page)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SlotState::Dirty { page, .. } if s.available_at <= now => Some((i, page)),
                _ => None,
            })
            .collect();
        if dirty.is_empty() {
            return None;
        }
        let pages: Vec<Page> = dirty.iter().map(|&(_, p)| p).collect();
        let done_at = log.append(now, &pages);
        self.combining.add(pages.len() as u64);
        let mut oks = Vec::new();
        for &(i, _) in &dirty {
            let state = if let Some((node, page)) = self.nack_fifo.pop_front() {
                oks.push((node, page));
                SlotState::Reserved { node }
            } else {
                SlotState::Empty
            };
            self.slots[i] = Slot {
                state,
                available_at: done_at,
                last_use: self.slots[i].last_use,
            };
        }
        Some(FlushResult {
            start: now,
            done_at,
            pages: pages.len() as u64,
            oks,
        })
    }

    /// Earliest time the arm would be free for a request issued at
    /// `now` (callers re-poll flushes at this time): with a DCD log
    /// attached, flushes only need the *log* arm.
    pub fn arm_free_at(&self, now: Time) -> Time {
        match &self.log {
            Some(log) => log.arm_free_at(now),
            None => self.arm.earliest_start(now),
        }
    }

    /// True if any dirty page is waiting to be flushed.
    pub fn has_pending_dirty(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Dirty { .. }))
    }

    /// Whether `page` is currently cached (any state).
    pub fn cache_contains(&self, page: Page) -> bool {
        self.find_page(page).is_some()
    }

    /// Number of NACKed requesters waiting for an `OK`.
    pub fn nack_queue_len(&self) -> usize {
        self.nack_fifo.len()
    }

    /// Occupied cache slots (any non-empty state) — the fill level the
    /// observability sampler tracks over time.
    pub fn cache_fill(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s.state, SlotState::Empty))
            .count()
    }

    /// Total cache slots.
    pub fn cache_slots(&self) -> usize {
        self.slots.len()
    }

    /// Withdraw a pending NACK-FIFO entry for `(node, page)`. Called
    /// when a write for the pair lands anyway (a timed-out swap was
    /// re-sent and the duplicate found room), and by the NWCache
    /// interface, which retries rejected drains through its own
    /// per-channel FIFO. A stale entry would tie up a cache slot as
    /// `Reserved` for an `OK` message nothing consumes.
    pub fn retract_nack(&mut self, node: u32, page: Page) {
        if let Some(i) = self
            .nack_fifo
            .iter()
            .rposition(|&(n, p)| n == node && p == page)
        {
            self.nack_fifo.remove(i);
        }
    }

    /// Read hits observed.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Read misses observed.
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// ACKed swap-out writes.
    pub fn write_acks(&self) -> u64 {
        self.write_acks
    }

    /// NACKed swap-out writes.
    pub fn write_nacks(&self) -> u64 {
        self.write_nacks
    }

    /// Background prefetch fills performed.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Pages-per-disk-write-operation tally (Tables 5/6).
    pub fn combining(&self) -> &Tally {
        &self.combining
    }

    /// Demand-read service time tally (queueing + mechanical).
    pub fn read_service(&self) -> &Tally {
        &self.read_service
    }

    /// The disk arm resource (for utilization reports).
    pub fn arm(&self) -> &Resource {
        &self.arm
    }

    /// The mechanical model (for statistics).
    pub fn mechanics(&self) -> &Mechanics {
        &self.mech
    }

    /// Serialize the controller: mechanics, arm, cache slots in slot
    /// order (slot order is observable through LRU victim selection),
    /// NACK FIFO in arrival order, counters, tallies, and the log-disk
    /// stage when attached.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        self.mech.ckpt_save(w);
        self.arm.ckpt_save(w);
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot.state {
                SlotState::Empty => w.u32(0),
                SlotState::Clean { page } => {
                    w.u32(1);
                    w.u64(page);
                }
                SlotState::Dirty { page, block, seq } => {
                    w.u32(2);
                    w.u64(page);
                    w.u64(block);
                    w.u64(seq);
                }
                SlotState::Reserved { node } => {
                    w.u32(3);
                    w.u32(node);
                }
            }
            w.time(slot.available_at);
            w.u64(slot.last_use);
        }
        w.usize(self.nack_fifo.len());
        for &(node, page) in &self.nack_fifo {
            w.u32(node);
            w.u64(page);
        }
        w.u64(self.clock);
        w.u64(self.dirty_seq);
        w.u64(self.read_hits);
        w.u64(self.read_misses);
        w.u64(self.write_acks);
        w.u64(self.write_nacks);
        w.u64(self.prefetch_fills);
        self.combining.ckpt_save(w);
        self.read_service.ckpt_save(w);
        match &self.log {
            None => w.bool(false),
            Some(log) => {
                w.bool(true);
                log.ckpt_save(w);
            }
        }
    }

    /// Overlay state saved by [`DiskController::ckpt_save`] onto a
    /// controller built with the same configuration (including the
    /// presence or absence of a log-disk stage).
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.mech.ckpt_restore(r)?;
        self.arm.ckpt_restore(r)?;
        let n = r.usize()?;
        if n != self.slots.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("controller has {n} cache slots, expected {}", self.slots.len()),
            });
        }
        for slot in &mut self.slots {
            slot.state = match r.u32()? {
                0 => SlotState::Empty,
                1 => SlotState::Clean { page: r.u64()? },
                2 => SlotState::Dirty {
                    page: r.u64()?,
                    block: r.u64()?,
                    seq: r.u64()?,
                },
                3 => SlotState::Reserved { node: r.u32()? },
                tag => {
                    return Err(CkptError::Invalid {
                        offset: r.offset(),
                        what: format!("unknown slot-state tag {tag}"),
                    })
                }
            };
            slot.available_at = r.time()?;
            slot.last_use = r.u64()?;
        }
        let n = r.usize()?;
        self.nack_fifo.clear();
        for _ in 0..n {
            let node = r.u32()?;
            let page = r.u64()?;
            self.nack_fifo.push_back((node, page));
        }
        self.clock = r.u64()?;
        self.dirty_seq = r.u64()?;
        self.read_hits = r.u64()?;
        self.read_misses = r.u64()?;
        self.write_acks = r.u64()?;
        self.write_nacks = r.u64()?;
        self.prefetch_fills = r.u64()?;
        self.combining.ckpt_restore(r)?;
        self.read_service.ckpt_restore(r)?;
        let has_log = r.bool()?;
        match (&mut self.log, has_log) {
            (Some(log), true) => log.ckpt_restore(r),
            (None, false) => Ok(()),
            (have, want) => Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!(
                    "checkpoint log-disk presence {want} but controller has {}",
                    have.is_some()
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive() -> DiskController {
        DiskController::paper_default(PrefetchPolicy::Naive)
    }

    fn optimal() -> DiskController {
        DiskController::paper_default(PrefetchPolicy::Optimal)
    }

    #[test]
    fn optimal_reads_always_hit() {
        let mut c = optimal();
        for p in [0u64, 17, 999] {
            let r = c.read_page(100, p, p);
            assert_eq!(r, ReadOutcome::Hit { ready_at: 100 });
        }
        assert_eq!(c.read_hits(), 3);
        assert_eq!(c.read_misses(), 0);
    }

    #[test]
    fn naive_miss_then_sequential_hits() {
        let mut c = naive();
        let r = c.read_page(0, 10, 10);
        assert!(!r.is_hit());
        // Pages 11.. were prefetched; once the fills complete, a read
        // of the following page hits the cache.
        let r2 = c.read_page(r.ready_at() + 1_000_000, 11, 11);
        assert!(r2.is_hit(), "sequential page should be prefetched");
        assert!(c.prefetch_fills() > 0);
        // A read while a fill is still in flight counts as a miss but
        // completes at the fill time, not after a new disk access.
        let r3 = c.read_page(1, 12, 12);
        assert!(!r3.is_hit());
        assert!(r3.ready_at() <= r.ready_at() + 500_000);
    }

    #[test]
    fn naive_random_misses_pay_mechanics() {
        let mut c = naive();
        let r1 = c.read_page(0, 10, 10);
        let t1 = r1.ready_at();
        // Far-away page: seek + rotation + transfer, queued after the
        // prefetch fills of the first miss.
        let r2 = c.read_page(t1, 5000, 5000);
        assert!(!r2.is_hit());
        assert!(r2.ready_at() > t1 + 40_960);
    }

    #[test]
    fn writes_ack_until_cache_full_then_nack() {
        let mut c = naive();
        for p in 0..4u64 {
            match c.write_page(0, 100 + p, 100 + p, 1) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("premature NACK at {p}"),
            }
        }
        assert_eq!(c.write_page(0, 200, 200, 2), WriteOutcome::Nack);
        assert_eq!(c.nack_queue_len(), 1);
        assert_eq!(c.write_acks(), 4);
        assert_eq!(c.write_nacks(), 1);
    }

    #[test]
    fn writes_evict_clean_prefetches() {
        let mut c = naive();
        // Fill cache with clean pages via a read miss + prefetch.
        let r = c.read_page(0, 10, 10);
        let t = r.ready_at() + 1_000_000;
        // All four slots are clean; writes must still be ACKed.
        for p in 0..4u64 {
            match c.write_page(t, 500 + p, 500 + p, 1) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("write should evict clean prefetch"),
            }
        }
    }

    #[test]
    fn flush_combines_consecutive_blocks() {
        let mut c = naive();
        for p in 0..4u64 {
            c.write_page(0, p, p, 0);
        }
        let f = c.try_flush(20_000).expect("dirty pages to flush");
        assert_eq!(f.pages, 4, "4 consecutive pages combine into one op");
        assert_eq!(c.combining().mean(), 4.0);
        assert!(!c.has_pending_dirty());
    }

    #[test]
    fn flush_does_not_combine_nonconsecutive() {
        let mut c = naive();
        c.write_page(0, 0, 0, 0);
        c.write_page(0, 100, 100, 0);
        let f = c.try_flush(20_000).unwrap();
        assert_eq!(f.pages, 1);
        assert!(c.has_pending_dirty());
        let f2 = c.try_flush(f.done_at).unwrap();
        assert_eq!(f2.pages, 1);
        assert!(!c.has_pending_dirty());
    }

    #[test]
    fn flush_frees_slots_and_sends_oks() {
        let mut c = naive();
        for p in 0..4u64 {
            c.write_page(0, p, p, p as u32);
        }
        assert_eq!(c.write_page(0, 50, 50, 7), WriteOutcome::Nack);
        let f = c.try_flush(20_000).unwrap();
        assert_eq!(f.oks, vec![(7, 50)]);
        // The freed slot is reserved: another node still cannot claim
        // all four slots...
        let t = f.done_at;
        // Node 7 re-sends its page and must be accepted immediately.
        match c.write_page(t, 50, 50, 7) {
            WriteOutcome::Ack { .. } => {}
            WriteOutcome::Nack => panic!("reserved slot must accept node 7"),
        }
    }

    #[test]
    fn reserved_slot_rejects_other_writers_when_full() {
        let mut c = naive();
        for p in 0..4u64 {
            c.write_page(0, p, p, 0);
        }
        c.write_page(0, 50, 50, 7); // NACK, queued
        let f = c.try_flush(20_000).unwrap();
        assert_eq!(f.pages, 4);
        assert_eq!(f.oks.len(), 1);
        // After the flush, 3 slots empty + 1 reserved: 3 writes fit.
        let t = f.done_at;
        for p in 0..3u64 {
            match c.write_page(t, 60 + p, 60 + p, 2) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("empty slot must accept"),
            }
        }
        assert_eq!(c.write_page(t, 70, 70, 2), WriteOutcome::Nack);
    }

    #[test]
    fn rewrite_of_cached_page_updates_in_place() {
        let mut c = naive();
        c.write_page(0, 5, 5, 0);
        c.write_page(0, 5, 5, 0); // same page again
        assert_eq!(c.write_acks(), 2);
        // Still only occupies one slot: 3 more writes fit.
        for p in 0..3u64 {
            match c.write_page(0, 10 + p, 10 + p, 0) {
                WriteOutcome::Ack { .. } => {}
                WriteOutcome::Nack => panic!("rewrite must not leak slots"),
            }
        }
    }

    #[test]
    fn read_hit_on_dirty_page() {
        let mut c = naive();
        c.write_page(0, 5, 5, 0);
        let r = c.read_page(10, 5, 5);
        assert!(r.is_hit());
    }

    #[test]
    fn flush_then_more_dirty_flushes_again() {
        let mut c = naive();
        c.write_page(0, 0, 0, 0);
        let f1 = c.try_flush(20_000).unwrap();
        c.write_page(f1.done_at, 1, 1, 0);
        let f2 = c.try_flush(f1.done_at + 20_000).unwrap();
        assert_eq!(f2.pages, 1);
        assert!(f2.done_at > f1.done_at);
    }

    #[test]
    fn no_flush_when_clean() {
        let mut c = naive();
        assert!(c.try_flush(100).is_none());
        c.read_page(0, 10, 10);
        assert!(c.try_flush(10_000_000).is_none());
    }
}
