//! # nw-disk — disk subsystem of the simulated multiprocessor
//!
//! Everything behind the I/O bus of an I/O-enabled node (paper §3.1):
//!
//! * [`mechanics`] — the mechanical disk model (seek, rotation,
//!   media transfer at Table 1 rates),
//! * [`fs`] — the parallel file system layout: pages stored in groups
//!   of 32 consecutive pages, groups assigned to disks round-robin,
//! * [`controller`] — the disk controller with its small page cache
//!   (Table 1: 16 KB = 4 pages), the ACK/NACK/OK swap-out flow-control
//!   protocol, demand reads with *optimal* or *naive* prefetching, and
//!   **write combining** of consecutive dirty pages (the paper's
//!   Tables 5 and 6).
//!
//! Like the other substrate crates this is a timing/state model: all
//! latencies are computed against [`nw_sim::Resource`] reservations of
//! the disk arm, so contention between demand reads, prefetches and
//! write flushes emerges naturally.
//!
//! ```
//! use nw_disk::{DiskController, PrefetchPolicy, WriteOutcome, ParallelFs};
//!
//! let fs = ParallelFs::paper_default(4);
//! let mut disk = DiskController::paper_default(PrefetchPolicy::Naive);
//!
//! // Four consecutive swapped-out pages fill the controller cache...
//! for page in 0..4 {
//!     let block = fs.block_of(page);
//!     assert!(matches!(
//!         disk.write_page(0, page, block, 1),
//!         WriteOutcome::Ack { .. }
//!     ));
//! }
//! // ...the fifth is NACKed and queued for an OK.
//! assert_eq!(disk.write_page(0, 9, fs.block_of(9), 2), WriteOutcome::Nack);
//!
//! // The flush combines the four consecutive blocks into one write.
//! let flush = disk.try_flush(100_000).unwrap();
//! assert_eq!(flush.pages, 4);
//! assert_eq!(flush.oks, vec![(2, 9)]);
//! ```

pub mod controller;
pub mod dcd;
pub mod faults;
pub mod fs;
pub mod mechanics;

pub use controller::{DiskController, DiskControllerConfig, FlushResult, PrefetchPolicy,
                     ReadOutcome, SpecOutcome, SpecProgress, WriteOutcome};
pub use dcd::LogDisk;
pub use faults::{DiskFault, DiskFaultInjector};
pub use fs::ParallelFs;
pub use mechanics::Mechanics;

/// A virtual page number (the paper equates pages and disk blocks).
pub type Page = u64;

/// A physical block index on one disk.
pub type Block = u64;
