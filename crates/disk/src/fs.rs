//! Parallel file system page layout.
//!
//! From the paper (§3.1): "pages are stored in groups of 32 consecutive
//! pages. The parallel file system assigns each of these groups to a
//! different disk in round-robin fashion." Consecutive pages within a
//! group are therefore consecutive blocks on one disk — which is what
//! makes write combining possible.

use crate::{Block, Page};

/// The striped page-to-disk mapping.
#[derive(Debug, Clone, Copy)]
pub struct ParallelFs {
    num_disks: u32,
    group_pages: u64,
}

impl ParallelFs {
    /// A file system striping groups of `group_pages` pages over
    /// `num_disks` disks.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(num_disks: u32, group_pages: u64) -> Self {
        assert!(num_disks > 0, "need at least one disk");
        assert!(group_pages > 0, "group must hold pages");
        ParallelFs {
            num_disks,
            group_pages,
        }
    }

    /// The paper's layout: 32-page groups.
    pub fn paper_default(num_disks: u32) -> Self {
        ParallelFs::new(num_disks, 32)
    }

    /// Number of disks.
    pub fn num_disks(&self) -> u32 {
        self.num_disks
    }

    /// Pages per group.
    pub fn group_pages(&self) -> u64 {
        self.group_pages
    }

    /// Which disk stores `page`.
    pub fn disk_of(&self, page: Page) -> u32 {
        ((page / self.group_pages) % self.num_disks as u64) as u32
    }

    /// The block index of `page` on its disk.
    pub fn block_of(&self, page: Page) -> Block {
        let group = page / self.group_pages;
        let group_on_disk = group / self.num_disks as u64;
        group_on_disk * self.group_pages + page % self.group_pages
    }

    /// True when `a` and `b` are adjacent blocks on the same disk —
    /// i.e. their writes can be combined into one disk operation.
    pub fn adjacent_on_disk(&self, a: Page, b: Page) -> bool {
        self.disk_of(a) == self.disk_of(b)
            && self.block_of(a).abs_diff(self.block_of(b)) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_groups() {
        let fs = ParallelFs::paper_default(4);
        assert_eq!(fs.disk_of(0), 0);
        assert_eq!(fs.disk_of(31), 0);
        assert_eq!(fs.disk_of(32), 1);
        assert_eq!(fs.disk_of(64), 2);
        assert_eq!(fs.disk_of(96), 3);
        assert_eq!(fs.disk_of(128), 0); // wraps
    }

    #[test]
    fn blocks_pack_per_disk() {
        let fs = ParallelFs::paper_default(4);
        // First group on disk 0: blocks 0..32.
        assert_eq!(fs.block_of(0), 0);
        assert_eq!(fs.block_of(31), 31);
        // Second group on disk 0 is pages 128..160 -> blocks 32..64.
        assert_eq!(fs.block_of(128), 32);
        assert_eq!(fs.block_of(159), 63);
        // Disk 1's first group: pages 32..64 -> blocks 0..32.
        assert_eq!(fs.block_of(32), 0);
        assert_eq!(fs.block_of(63), 31);
    }

    #[test]
    fn adjacency_within_group_only() {
        let fs = ParallelFs::paper_default(4);
        assert!(fs.adjacent_on_disk(0, 1));
        assert!(fs.adjacent_on_disk(30, 31));
        // Page 31 (disk 0, block 31) and page 32 (disk 1, block 0).
        assert!(!fs.adjacent_on_disk(31, 32));
        // Page 31 and page 128 (disk 0, block 32) ARE adjacent blocks.
        assert!(fs.adjacent_on_disk(31, 128));
        assert!(!fs.adjacent_on_disk(0, 2));
    }

    #[test]
    fn single_disk_degenerates_to_contiguous() {
        let fs = ParallelFs::paper_default(1);
        for p in 0..200u64 {
            assert_eq!(fs.disk_of(p), 0);
            assert_eq!(fs.block_of(p), p);
        }
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        ParallelFs::new(0, 32);
    }
}
