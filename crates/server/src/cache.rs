//! The warm-state cache: memoized post-warmup machine checkpoints.
//!
//! Sweeping a parameter grid re-simulates the same warmup prefix for
//! every variant of the *measured* remainder. The cache memoizes the
//! post-warmup [`Machine`] as `nwckpt-v1` bytes, content-addressed by
//! [`nwcache::checkpoint::warm_key`] — the FNV-1a 64 of the canonical
//! CONFIG bytes, the workload spec, and the warmup event count — so a
//! cached state is only ever replayed into a run whose config,
//! workload, and warmup prefix are all bit-equal to the run that
//! produced it.
//!
//! Because checkpoint restore is bit-exact (restore → identical
//! remainder, asserted by the checkpoint suites), a warm-started run
//! is *provably* identical to a cold one; [`warm_start`] can even
//! re-prove it per hit (`verify = true`): the warmup is re-run cold
//! and the cached checkpoint must be `ckpt-diff`-clean against the
//! fresh one, else the hit is rejected as drift.
//!
//! Entries live in memory behind one mutex, bounded by an LRU list;
//! with a cache directory configured each entry is also persisted as
//! `warm-<key:016x>.nwckpt` (atomic temp + rename), so a restarted
//! server re-warms from disk instead of re-simulating.

use nwcache::checkpoint;
use nwcache::config::MachineConfig;
use nwcache::error::SimError;
use nwcache::machine::{Machine, RunOutcome};
use nwcache::metrics::RunMetrics;
use nwcache::workload::AppSel;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Inner {
    map: HashMap<u64, Vec<u8>>,
    /// Keys from least- to most-recently used.
    lru: Vec<u64>,
}

/// Bounded, optionally disk-backed store of post-warmup checkpoints.
pub struct WarmCache {
    dir: Option<PathBuf>,
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WarmCache {
    /// An empty cache holding at most `capacity` in-memory entries,
    /// persisting each entry under `dir` when set.
    pub fn new(dir: Option<PathBuf>, capacity: usize) -> WarmCache {
        WarmCache {
            dir,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn entry_path(dir: &Path, key: u64) -> PathBuf {
        dir.join(format!("warm-{key:016x}.nwckpt"))
    }

    /// Checkpoint bytes for `key`, consulting memory then disk. A disk
    /// hit is promoted into memory. Counts a hit or a miss.
    pub fn lookup(&self, key: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(bytes) = inner.map.get(&key).cloned() {
            inner.lru.retain(|&k| k != key);
            inner.lru.push(key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(bytes);
        }
        drop(inner);
        if let Some(dir) = &self.dir {
            if let Ok(bytes) = std::fs::read(Self::entry_path(dir, key)) {
                // Only structurally valid files count — a torn or
                // foreign file is treated as a miss, not an error.
                if checkpoint::validate_bytes(&bytes).is_ok() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.insert_mem(key, bytes.clone());
                    return Some(bytes);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert_mem(&self, key: u64, bytes: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        inner.lru.retain(|&k| k != key);
        inner.lru.push(key);
        inner.map.insert(key, bytes);
        while inner.lru.len() > self.capacity {
            let evict = inner.lru.remove(0);
            inner.map.remove(&evict);
        }
    }

    /// Store `bytes` under `key` (memory + disk). Disk write failures
    /// are non-fatal — the cache is an optimization, not a store of
    /// record.
    pub fn insert(&self, key: u64, bytes: Vec<u8>) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = nw_sim::atomic_write::write_atomic(&Self::entry_path(dir, key), &bytes);
        }
        self.insert_mem(key, bytes);
    }

    /// In-memory entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no in-memory entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to warm up cold.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Outcome of [`warm_start`].
pub enum WarmStart {
    /// A machine positioned exactly `warmup_events` events into the
    /// run, ready for the measured remainder.
    Ready {
        /// The warmed machine.
        machine: Box<Machine>,
        /// Whether the warm cache supplied the state (vs a cold warmup
        /// that was then cached).
        hit: bool,
    },
    /// The whole run finished inside the warmup budget; there is no
    /// remainder to measure.
    Finished(Box<RunMetrics>),
}

/// Errors out of [`warm_start`].
#[derive(Debug)]
pub enum WarmError {
    /// The underlying simulation or checkpoint machinery failed.
    Sim(SimError),
    /// `verify` found the cached checkpoint differs from a cold warmup
    /// — the run must not proceed from it.
    Drift {
        /// Names of the differing `nwckpt` sections.
        sections: Vec<&'static str>,
    },
}

impl std::fmt::Display for WarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmError::Sim(e) => write!(f, "{e}"),
            WarmError::Drift { sections } => write!(
                f,
                "warm-state cache drift: cached checkpoint differs from a cold warmup in [{}]",
                sections.join(", ")
            ),
        }
    }
}

impl From<SimError> for WarmError {
    fn from(e: SimError) -> Self {
        WarmError::Sim(e)
    }
}

fn cold_warmup(cfg: &MachineConfig, spec: &str, warmup_events: u64) -> Result<WarmStart, SimError> {
    let sel = AppSel::parse(spec)?;
    cfg.validate().map_err(SimError::BadConfig)?;
    let build = sel.build(cfg)?;
    let mut m = Machine::try_from_build(cfg.clone(), build)?;
    match m.try_run_events(warmup_events)? {
        RunOutcome::Done(metrics) => Ok(WarmStart::Finished(metrics)),
        RunOutcome::Paused => Ok(WarmStart::Ready {
            machine: Box::new(m),
            hit: false,
        }),
    }
}

/// Produce a machine warmed by exactly `warmup_events` events of
/// `spec` on `cfg`, via the cache when possible.
///
/// * miss → run the warmup cold, cache the post-warmup checkpoint,
///   return the live machine;
/// * hit → restore the cached checkpoint; with `verify`, first re-run
///   the warmup cold and require the cached bytes to be
///   `ckpt-diff`-clean against the fresh checkpoint ([`WarmError::Drift`]
///   otherwise).
///
/// A run that completes within the warmup budget short-circuits to
/// [`WarmStart::Finished`] without touching the cache.
pub fn warm_start(
    cache: &WarmCache,
    cfg: &MachineConfig,
    spec: &str,
    warmup_events: u64,
    verify: bool,
) -> Result<WarmStart, WarmError> {
    let key = checkpoint::warm_key(cfg, spec, warmup_events);
    if let Some(cached) = cache.lookup(key) {
        if verify {
            match cold_warmup(cfg, spec, warmup_events)? {
                WarmStart::Finished(_) => {
                    // The cached entry claims the run pauses at the
                    // warmup mark, a cold run finishes before it:
                    // unambiguous drift.
                    return Err(WarmError::Drift {
                        sections: vec!["META"],
                    });
                }
                WarmStart::Ready { machine, .. } => {
                    let fresh = machine.checkpoint(spec);
                    let diffs = checkpoint::diff_bytes(&cached, &fresh).map_err(|e| {
                        WarmError::Sim(SimError::CheckpointCorrupt {
                            path: "<warm-cache>".into(),
                            detail: e.to_string(),
                        })
                    })?;
                    let bad: Vec<&'static str> = diffs
                        .iter()
                        .filter(|d| !d.is_same())
                        .map(|d| checkpoint::sections::name(d.id()))
                        .collect();
                    if !bad.is_empty() {
                        return Err(WarmError::Drift { sections: bad });
                    }
                }
            }
        }
        let (_meta, machine) = checkpoint::machine_from_bytes(&cached)?;
        return Ok(WarmStart::Ready {
            machine: Box::new(machine),
            hit: true,
        });
    }
    let started = cold_warmup(cfg, spec, warmup_events)?;
    if let WarmStart::Ready { machine, .. } = &started {
        cache.insert(key, machine.checkpoint(spec));
    }
    Ok(started)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwcache::config::{MachineKind, PrefetchMode};

    fn cfg() -> MachineConfig {
        MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05)
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nwserve-cache-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn miss_then_hit_and_counters() {
        let cache = WarmCache::new(None, 4);
        let c = cfg();
        let first = warm_start(&cache, &c, "sor", 500, false).unwrap();
        assert!(matches!(first, WarmStart::Ready { hit: false, .. }));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = warm_start(&cache, &c, "sor", 500, false).unwrap();
        assert!(matches!(second, WarmStart::Ready { hit: true, .. }));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn warm_equals_cold_bit_identical_remainder() {
        let cache = WarmCache::new(None, 4);
        let c = cfg();
        // Cold reference: run straight through.
        let cold = nwcache::try_run_app(&c, nw_apps::AppId::Sor).unwrap();
        // Warm path twice: miss (cold warmup + cache) and hit (restore).
        for _ in 0..2 {
            match warm_start(&cache, &c, "sor", 500, false).unwrap() {
                WarmStart::Ready { mut machine, .. } => {
                    let got = match machine.try_run_events(u64::MAX).unwrap() {
                        RunOutcome::Done(m) => *m,
                        RunOutcome::Paused => panic!("unbounded run paused"),
                    };
                    assert_eq!(got, cold);
                }
                WarmStart::Finished(_) => panic!("run finished inside warmup"),
            }
        }
    }

    #[test]
    fn verify_accepts_honest_entries_and_rejects_drift() {
        let cache = WarmCache::new(None, 4);
        let c = cfg();
        let _ = warm_start(&cache, &c, "sor", 500, false).unwrap();
        // Honest entry passes verification.
        match warm_start(&cache, &c, "sor", 500, true).unwrap() {
            WarmStart::Ready { hit, .. } => assert!(hit),
            WarmStart::Finished(_) => panic!("run finished inside warmup"),
        }
        // Poison the cached entry with a checkpoint from a *different*
        // warmup length under the 500-event key: structurally valid,
        // semantically wrong.
        let key = checkpoint::warm_key(&c, "sor", 500);
        let poisoned = match cold_warmup(&c, "sor", 700).unwrap() {
            WarmStart::Ready { machine, .. } => machine.checkpoint("sor"),
            WarmStart::Finished(_) => panic!("run finished inside warmup"),
        };
        cache.insert(key, poisoned);
        match warm_start(&cache, &c, "sor", 500, true) {
            Err(WarmError::Drift { sections }) => {
                assert!(!sections.is_empty());
                assert!(sections.contains(&"ENGINE"), "{sections:?}");
            }
            Err(WarmError::Sim(e)) => panic!("wrong error: {e}"),
            Ok(_) => panic!("verification accepted a poisoned entry"),
        }
    }

    #[test]
    fn lru_evicts_oldest_beyond_capacity() {
        let cache = WarmCache::new(None, 2);
        cache.insert(1, vec![1]);
        cache.insert(2, vec![2]);
        // Touch 1 so 2 becomes the LRU victim.
        let mut inner = cache.inner.lock().unwrap();
        inner.lru.retain(|&k| k != 1);
        inner.lru.push(1);
        drop(inner);
        cache.insert(3, vec![3]);
        let inner = cache.inner.lock().unwrap();
        assert_eq!(inner.map.len(), 2);
        assert!(inner.map.contains_key(&1) && inner.map.contains_key(&3));
        assert!(!inner.map.contains_key(&2));
    }

    #[test]
    fn disk_persistence_survives_a_new_cache_instance() {
        let dir = scratch("persist");
        let c = cfg();
        {
            let cache = WarmCache::new(Some(dir.clone()), 4);
            let _ = warm_start(&cache, &c, "sor", 500, false).unwrap();
        }
        // Fresh instance, empty memory: the disk entry must satisfy
        // the lookup (and still verify clean).
        let cache = WarmCache::new(Some(dir.clone()), 4);
        assert!(cache.is_empty());
        match warm_start(&cache, &c, "sor", 500, true).unwrap() {
            WarmStart::Ready { hit, .. } => assert!(hit),
            WarmStart::Finished(_) => panic!("run finished inside warmup"),
        }
        assert_eq!(cache.misses(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss_not_an_error() {
        let dir = scratch("corrupt");
        let c = cfg();
        let key = checkpoint::warm_key(&c, "sor", 500);
        std::fs::write(WarmCache::entry_path(&dir, key), b"not a checkpoint").unwrap();
        let cache = WarmCache::new(Some(dir.clone()), 4);
        match warm_start(&cache, &c, "sor", 500, false).unwrap() {
            WarmStart::Ready { hit, .. } => assert!(!hit),
            WarmStart::Finished(_) => panic!("run finished inside warmup"),
        }
        assert_eq!(cache.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_finishing_inside_warmup_short_circuits() {
        let cache = WarmCache::new(None, 4);
        match warm_start(&cache, &cfg(), "sor", u64::MAX, false).unwrap() {
            WarmStart::Finished(m) => assert!(m.exec_time > 0),
            WarmStart::Ready { .. } => panic!("u64::MAX warmup did not finish the run"),
        }
        assert!(cache.is_empty());
    }
}
