//! `nw-server`: a long-running simulation service with warm-state
//! reuse and a metrics endpoint.
//!
//! The batch CLI pays the full warmup cost on every invocation and
//! tears the process down afterwards, losing every byte of hot state.
//! This crate keeps a simulator process resident: clients connect
//! over TCP, speak the frozen [`proto`] (`nwserve-v1`) framing, and
//! submit run/sweep jobs that are scheduled on [`nw_sim::pool`]
//! worker threads with per-job cancellation and deadlines.
//!
//! The performance tentpole is the [`cache::WarmCache`]: post-warmup
//! [`nwcache::Machine`] checkpoints are memoized content-addressed by
//! `(config, workload spec, warmup events)`, so a sweep that revisits
//! a cell skips its warmup entirely — and a paranoid client can set
//! `verify_warm` to have the server re-run the warmup cold and prove
//! (via checkpoint section diff) that the cached state is
//! bit-identical.
//!
//! Determinism is load-bearing end to end: a job's final JSON is the
//! same `RunSummary` rendering the batch CLI prints, so
//! `nwsim client run … > a.json` and `nwsim run --json … > b.json`
//! compare byte-for-byte (`cmp a.json b.json`), warm or cold.
//!
//! Module map:
//! - [`proto`] — wire format: handshake, varint frames, request and
//!   response codecs, error codes.
//! - [`cache`] — the warm-state cache and its drift verifier.
//! - [`metrics`] — server counters and the text metrics page.
//! - [`server`] — accept loop, job scheduling, graceful drain with
//!   checkpoint autosave.
//! - [`client`] — the client connection and job driver the
//!   `nwsim client` verb is built on.

pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use cache::{warm_start, WarmCache, WarmError, WarmStart};
pub use client::{Connection, JobResult};
pub use metrics::ServerMetrics;
pub use proto::{JobKind, JobSpec, ProtoError, Request, Response};
pub use server::{
    install_signal_handlers, request_drain, ServeOptions, ServeStats, Server, ServerHandle,
};
