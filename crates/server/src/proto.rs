//! The frozen `nwserve-v1` wire protocol.
//!
//! The serve protocol reuses the workspace's LEB128 varint codec
//! ([`nw_sim::ckpt::put_varint`] / [`read_varint`]) so the whole wire
//! format shares one scalar encoding with checkpoints and traces:
//!
//! * **handshake** — the client sends the 4-byte magic `NWSV` plus a
//!   version byte; the server echoes both back. Anything else on the
//!   socket is rejected (except an HTTP `GET`, which the server
//!   sniffs and answers with the text metrics page — see
//!   `server::handle_conn`).
//! * **frames** — every subsequent message is
//!   `varint(type) ++ varint(payload_len) ++ payload`. Payloads are
//!   themselves varint/str records with a fixed field order per type.
//!
//! Requests (client → server) use type tags 1–15, responses
//! (server → client) 16–31, so a desynchronized stream fails fast on
//! an impossible tag instead of misparsing. Job error codes are the
//! CLI's [`nwcache::ExitCode`] numbers (0–4) plus two protocol-only
//! codes: [`CODE_CANCELED`] (10) and [`CODE_DEADLINE`] (11) — a
//! client that exits with the received code therefore behaves exactly
//! like the batch CLI for every simulator-level failure.

use nw_sim::ckpt::{put_varint, read_varint};
use std::io::{Read, Write};

/// Handshake magic.
pub const MAGIC: [u8; 4] = *b"NWSV";
/// Frozen protocol version. Both sides reject anything else.
pub const VERSION: u8 = 1;

/// Largest frame payload either side will accept (16 MiB): big enough
/// for any sweep report or Perfetto trace the server streams, small
/// enough that a garbage length prefix cannot OOM the process.
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;

/// Job failed: cooperative cancellation via a `Cancel` frame.
pub const CODE_CANCELED: u64 = 10;
/// Job failed: its wall-clock deadline expired mid-run.
pub const CODE_DEADLINE: u64 = 11;

/// Human label for a job error code (exit-code numbers included).
pub fn code_name(code: u64) -> &'static str {
    match code {
        0 => "success",
        1 => "gate-failed",
        2 => "validation",
        3 => "sim-fault",
        4 => "corrupt-checkpoint",
        CODE_CANCELED => "canceled",
        CODE_DEADLINE => "deadline",
        _ => "unknown",
    }
}

/// Errors produced while speaking the protocol.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer's handshake was not `NWSV` + a supported version.
    Handshake(String),
    /// A frame or payload violated the format.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// What a submitted job runs: one simulation or a machine sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One `(config, workload)` cell; the result is the run's flat
    /// summary JSON — byte-identical to `nwsim run --json`.
    Run,
    /// The same workload across every machine in `machines`; the
    /// result is the `summaries_to_json` array over the cells in
    /// submission order.
    Sweep,
}

/// A job submission: everything the server needs to rebuild the exact
/// `MachineConfig` + workload the batch CLI would have run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Run or sweep.
    pub kind: JobKind,
    /// Workload spec ([`nwcache::AppSel::parse`] syntax).
    pub spec: String,
    /// Machine labels (`standard|nwcache|dcd`); exactly one for
    /// [`JobKind::Run`], one per sweep cell for [`JobKind::Sweep`].
    pub machines: Vec<String>,
    /// Prefetch spec (`optimal|naive|window|adaptive[:N]`).
    pub prefetch: String,
    /// Application/machine scale factor.
    pub scale: f64,
    /// Workload seed override.
    pub seed: Option<u64>,
    /// Generated-topology spec (DESIGN.md §17 grammar).
    pub topo: Option<String>,
    /// Events of warmup to run (or restore from the warm cache) before
    /// the measured remainder; 0 = cold start.
    pub warmup_events: u64,
    /// Re-run the warmup cold on a warm-cache hit and require the
    /// cached checkpoint to be bit-identical (ckpt-diff clean).
    pub verify_warm: bool,
    /// Wall-clock deadline in milliseconds; 0 = none.
    pub deadline_ms: u64,
    /// Events between progress frames; 0 = server default.
    pub progress_every: u64,
    /// Stream a Chrome/Perfetto trace of the run before the summary
    /// (run jobs only).
    pub want_trace: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            kind: JobKind::Run,
            spec: "sor".into(),
            machines: vec!["nwcache".into()],
            prefetch: "naive".into(),
            scale: 0.25,
            seed: None,
            topo: None,
            warmup_events: 0,
            verify_warm: false,
            deadline_ms: 0,
            progress_every: 0,
            want_trace: false,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; the server answers `Accepted` then streams the
    /// job's frames on this connection.
    Submit(JobSpec),
    /// Cooperatively cancel the named job.
    Cancel {
        /// Id from the `Accepted` frame.
        job: u64,
    },
    /// Ask for the text metrics page.
    Metrics,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Liveness probe.
    Ping,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted and assigned an id.
    Accepted {
        /// Server-assigned job id (used by `Cancel`).
        job: u64,
    },
    /// Periodic progress while a job runs.
    Progress {
        /// Job id.
        job: u64,
        /// Sweep cell currently running (0 for run jobs).
        cell: u64,
        /// Total sweep cells (1 for run jobs).
        cells: u64,
        /// Events dispatched so far in the current cell.
        events: u64,
        /// Simulated time of the current cell (pcycles).
        now: u64,
    },
    /// The job finished; `json` is the final document (a summary
    /// object for runs, a summary array for sweeps).
    Done {
        /// Job id.
        job: u64,
        /// Whether a warm-cache checkpoint seeded the run.
        warm_hit: bool,
        /// Result document.
        json: String,
    },
    /// The job failed; `code` follows the exit-code numbering.
    JobError {
        /// Job id (0 when the failure precedes admission).
        job: u64,
        /// Exit-code-compatible error code.
        code: u64,
        /// Human-readable detail.
        message: String,
    },
    /// The text metrics page.
    MetricsText {
        /// Prometheus-style `name value` lines.
        text: String,
    },
    /// Liveness reply.
    Pong,
    /// A Chrome/Perfetto trace of the finished run (precedes `Done`).
    TraceJson {
        /// Job id.
        job: u64,
        /// Chrome trace-event JSON.
        json: String,
    },
    /// The server is draining and autosaved this in-flight job.
    Drained {
        /// Job id.
        job: u64,
        /// Path of the autosaved checkpoint on the server.
        path: String,
        /// Events dispatched when the autosave was taken.
        events: u64,
    },
    /// The server is draining and refused the submission.
    ShuttingDown,
}

// Frame type tags. Requests 1–15, responses 16–31.
const T_SUBMIT: u64 = 1;
const T_CANCEL: u64 = 2;
const T_METRICS_REQ: u64 = 3;
const T_SHUTDOWN: u64 = 4;
const T_PING: u64 = 5;
const T_ACCEPTED: u64 = 16;
const T_PROGRESS: u64 = 17;
const T_DONE: u64 = 18;
const T_JOB_ERROR: u64 = 19;
const T_METRICS_TEXT: u64 = 20;
const T_PONG: u64 = 21;
const T_TRACE_JSON: u64 = 22;
const T_DRAINED: u64 = 23;
const T_SHUTTING_DOWN: u64 = 24;

/// Payload encoder: varints and length-prefixed strings.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u64(&mut self, v: u64) {
        put_varint(&mut self.buf, v);
    }

    fn bool(&mut self, v: bool) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
        }
    }

    fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.bool(false),
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
        }
    }
}

/// Payload decoder, mirroring [`Enc`] field by field.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        read_varint(self.buf, &mut self.pos)
            .map_err(|e| ProtoError::Malformed(format!("varint at {}: {e}", self.pos)))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ProtoError::Malformed(format!("bool tag {v}"))),
        }
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.u64()? as usize;
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "string of {n} bytes overruns payload at {}",
                self.pos
            )));
        }
        let raw = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, ProtoError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    fn opt_str(&mut self) -> Result<Option<String>, ProtoError> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "{} unconsumed payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn encode_job_spec(e: &mut Enc, j: &JobSpec) {
    e.u64(match j.kind {
        JobKind::Run => 0,
        JobKind::Sweep => 1,
    });
    e.str(&j.spec);
    e.u64(j.machines.len() as u64);
    for m in &j.machines {
        e.str(m);
    }
    e.str(&j.prefetch);
    e.f64(j.scale);
    e.opt_u64(j.seed);
    e.opt_str(j.topo.as_deref());
    e.u64(j.warmup_events);
    e.bool(j.verify_warm);
    e.u64(j.deadline_ms);
    e.u64(j.progress_every);
    e.bool(j.want_trace);
}

fn decode_job_spec(d: &mut Dec<'_>) -> Result<JobSpec, ProtoError> {
    let kind = match d.u64()? {
        0 => JobKind::Run,
        1 => JobKind::Sweep,
        t => return Err(ProtoError::Malformed(format!("job kind tag {t}"))),
    };
    let spec = d.str()?;
    let n = d.u64()? as usize;
    if n > 1024 {
        return Err(ProtoError::Malformed(format!("{n} sweep machines")));
    }
    let mut machines = Vec::with_capacity(n);
    for _ in 0..n {
        machines.push(d.str()?);
    }
    Ok(JobSpec {
        kind,
        spec,
        machines,
        prefetch: d.str()?,
        scale: d.f64()?,
        seed: d.opt_u64()?,
        topo: d.opt_str()?,
        warmup_events: d.u64()?,
        verify_warm: d.bool()?,
        deadline_ms: d.u64()?,
        progress_every: d.u64()?,
        want_trace: d.bool()?,
    })
}

impl Request {
    fn encode(&self) -> (u64, Vec<u8>) {
        let mut e = Enc::default();
        let t = match self {
            Request::Submit(j) => {
                encode_job_spec(&mut e, j);
                T_SUBMIT
            }
            Request::Cancel { job } => {
                e.u64(*job);
                T_CANCEL
            }
            Request::Metrics => T_METRICS_REQ,
            Request::Shutdown => T_SHUTDOWN,
            Request::Ping => T_PING,
        };
        (t, e.buf)
    }

    fn decode(t: u64, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(payload);
        let req = match t {
            T_SUBMIT => Request::Submit(decode_job_spec(&mut d)?),
            T_CANCEL => Request::Cancel { job: d.u64()? },
            T_METRICS_REQ => Request::Metrics,
            T_SHUTDOWN => Request::Shutdown,
            T_PING => Request::Ping,
            other => return Err(ProtoError::Malformed(format!("request tag {other}"))),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    fn encode(&self) -> (u64, Vec<u8>) {
        let mut e = Enc::default();
        let t = match self {
            Response::Accepted { job } => {
                e.u64(*job);
                T_ACCEPTED
            }
            Response::Progress {
                job,
                cell,
                cells,
                events,
                now,
            } => {
                e.u64(*job);
                e.u64(*cell);
                e.u64(*cells);
                e.u64(*events);
                e.u64(*now);
                T_PROGRESS
            }
            Response::Done {
                job,
                warm_hit,
                json,
            } => {
                e.u64(*job);
                e.bool(*warm_hit);
                e.str(json);
                T_DONE
            }
            Response::JobError { job, code, message } => {
                e.u64(*job);
                e.u64(*code);
                e.str(message);
                T_JOB_ERROR
            }
            Response::MetricsText { text } => {
                e.str(text);
                T_METRICS_TEXT
            }
            Response::Pong => T_PONG,
            Response::TraceJson { job, json } => {
                e.u64(*job);
                e.str(json);
                T_TRACE_JSON
            }
            Response::Drained { job, path, events } => {
                e.u64(*job);
                e.str(path);
                e.u64(*events);
                T_DRAINED
            }
            Response::ShuttingDown => T_SHUTTING_DOWN,
        };
        (t, e.buf)
    }

    fn decode(t: u64, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(payload);
        let rsp = match t {
            T_ACCEPTED => Response::Accepted { job: d.u64()? },
            T_PROGRESS => Response::Progress {
                job: d.u64()?,
                cell: d.u64()?,
                cells: d.u64()?,
                events: d.u64()?,
                now: d.u64()?,
            },
            T_DONE => Response::Done {
                job: d.u64()?,
                warm_hit: d.bool()?,
                json: d.str()?,
            },
            T_JOB_ERROR => Response::JobError {
                job: d.u64()?,
                code: d.u64()?,
                message: d.str()?,
            },
            T_METRICS_TEXT => Response::MetricsText { text: d.str()? },
            T_PONG => Response::Pong,
            T_TRACE_JSON => Response::TraceJson {
                job: d.u64()?,
                json: d.str()?,
            },
            T_DRAINED => Response::Drained {
                job: d.u64()?,
                path: d.str()?,
                events: d.u64()?,
            },
            T_SHUTTING_DOWN => Response::ShuttingDown,
            other => return Err(ProtoError::Malformed(format!("response tag {other}"))),
        };
        d.finish()?;
        Ok(rsp)
    }
}

fn write_frame(w: &mut impl Write, t: u64, payload: &[u8]) -> Result<(), ProtoError> {
    let mut frame = Vec::with_capacity(payload.len() + 12);
    put_varint(&mut frame, t);
    put_varint(&mut frame, payload.len() as u64);
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one varint from the stream byte by byte. `first_byte_opt`
/// turns a timeout/would-block on the FIRST byte into `Ok(None)` (no
/// frame started yet); a stall mid-varint is retried, so a frame that
/// has started is always read to completion.
fn read_stream_varint(
    r: &mut impl Read,
    first_byte_opt: bool,
) -> Result<Option<u64>, ProtoError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e)
                if first
                    && first_byte_opt
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(None);
            }
            Err(e)
                if !first
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                continue;
            }
            Err(e) => return Err(ProtoError::Io(e)),
        }
        first = false;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(ProtoError::Malformed("frame varint overflow".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
    }
}

fn read_exact_retry(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtoError> {
    let mut done = 0;
    while done < buf.len() {
        match r.read(&mut buf[done..]) {
            Ok(0) => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => done += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn read_raw_frame(
    r: &mut impl Read,
    first_byte_opt: bool,
) -> Result<Option<(u64, Vec<u8>)>, ProtoError> {
    let Some(t) = read_stream_varint(r, first_byte_opt)? else {
        return Ok(None);
    };
    let len = read_stream_varint(r, false)?.expect("non-optional varint");
    if len > MAX_FRAME {
        return Err(ProtoError::Malformed(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_retry(r, &mut payload)?;
    Ok(Some((t, payload)))
}

/// Write one request frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), ProtoError> {
    let (t, payload) = req.encode();
    write_frame(w, t, &payload)
}

/// Write one response frame.
pub fn write_response(w: &mut impl Write, rsp: &Response) -> Result<(), ProtoError> {
    let (t, payload) = rsp.encode();
    write_frame(w, t, &payload)
}

/// Read one request frame (blocking).
pub fn read_request(r: &mut impl Read) -> Result<Request, ProtoError> {
    let (t, payload) = read_raw_frame(r, false)?.expect("non-optional frame");
    Request::decode(t, &payload)
}

/// Read one request frame if one has started arriving; `Ok(None)` when
/// the read timed out before the first byte. Used by the server's
/// streaming loop to poll for `Cancel` without blocking job progress.
pub fn try_read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    match read_raw_frame(r, true)? {
        None => Ok(None),
        Some((t, payload)) => Ok(Some(Request::decode(t, &payload)?)),
    }
}

/// Read one response frame (blocking).
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtoError> {
    let (t, payload) = read_raw_frame(r, false)?.expect("non-optional frame");
    Response::decode(t, &payload)
}

/// Client side of the handshake: send magic + version, require the
/// echo.
pub fn client_handshake(s: &mut (impl Read + Write)) -> Result<(), ProtoError> {
    let mut hello = [0u8; 5];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4] = VERSION;
    s.write_all(&hello)?;
    s.flush()?;
    let mut echo = [0u8; 5];
    read_exact_retry(s, &mut echo)?;
    if echo[..4] != MAGIC {
        return Err(ProtoError::Handshake("server did not echo NWSV".into()));
    }
    if echo[4] != VERSION {
        return Err(ProtoError::Handshake(format!(
            "server speaks version {}, client speaks {VERSION}",
            echo[4]
        )));
    }
    Ok(())
}

/// Server side of the handshake, given the already-sniffed first four
/// bytes: verify the version byte and echo magic + version.
pub fn server_handshake_rest(s: &mut (impl Read + Write)) -> Result<(), ProtoError> {
    let mut ver = [0u8; 1];
    read_exact_retry(s, &mut ver)?;
    if ver[0] != VERSION {
        return Err(ProtoError::Handshake(format!(
            "client speaks version {}, server speaks {VERSION}",
            ver[0]
        )));
    }
    let mut echo = [0u8; 5];
    echo[..4].copy_from_slice(&MAGIC);
    echo[4] = VERSION;
    s.write_all(&echo)?;
    s.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_request(&mut cur).unwrap(), req);
        assert_eq!(cur.position() as usize, cur.get_ref().len());
    }

    fn round_trip_response(rsp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &rsp).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_response(&mut cur).unwrap(), rsp);
        assert_eq!(cur.position() as usize, cur.get_ref().len());
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Submit(JobSpec::default()));
        round_trip_request(Request::Submit(JobSpec {
            kind: JobKind::Sweep,
            spec: "workload:gen:zipf:0.9,ws=32,acc=300".into(),
            machines: vec!["standard".into(), "dcd".into(), "nwcache".into()],
            prefetch: "adaptive:16".into(),
            scale: 0.05,
            seed: Some(42),
            topo: Some("mesh=4x4,io=corners".into()),
            warmup_events: 5_000,
            verify_warm: true,
            deadline_ms: 30_000,
            progress_every: 1_000,
            want_trace: true,
        }));
        round_trip_request(Request::Cancel { job: 7 });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Accepted { job: 3 });
        round_trip_response(Response::Progress {
            job: 3,
            cell: 1,
            cells: 4,
            events: 10_000,
            now: 123_456,
        });
        round_trip_response(Response::Done {
            job: 3,
            warm_hit: true,
            json: "{\"app\":\"sor\"}".into(),
        });
        round_trip_response(Response::JobError {
            job: 3,
            code: CODE_DEADLINE,
            message: "deadline of 5ms expired".into(),
        });
        round_trip_response(Response::MetricsText {
            text: "nwserve_jobs_completed_total 9\n".into(),
        });
        round_trip_response(Response::Pong);
        round_trip_response(Response::TraceJson {
            job: 3,
            json: "{\"traceEvents\":[]}".into(),
        });
        round_trip_response(Response::Drained {
            job: 3,
            path: "autosave/job-3.nwckpt".into(),
            events: 40_000,
        });
        round_trip_response(Response::ShuttingDown);
    }

    #[test]
    fn rejects_wrong_tag_direction() {
        // A response tag is not a valid request and vice versa.
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Pong).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        let err = read_request(&mut cur).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err}");

        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        let err = read_response(&mut cur).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_trailing_payload_bytes() {
        let mut frame = Vec::new();
        put_varint(&mut frame, 5); // T_PING
        put_varint(&mut frame, 3); // ping carries no payload
        frame.extend_from_slice(b"xyz");
        let mut cur = std::io::Cursor::new(frame);
        let err = read_request(&mut cur).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_oversized_frame_without_allocating() {
        let mut frame = Vec::new();
        put_varint(&mut frame, T_DONE);
        put_varint(&mut frame, u64::MAX); // absurd length prefix
        let mut cur = std::io::Cursor::new(frame);
        let err = read_response(&mut cur).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err}");
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Submit(JobSpec::default())).unwrap();
        buf.truncate(buf.len() - 4);
        let mut cur = std::io::Cursor::new(buf);
        let err = read_request(&mut cur).unwrap_err();
        assert!(matches!(err, ProtoError::Io(_)), "{err}");
    }

    #[test]
    fn handshake_round_trips_over_a_socket_pair() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut magic = [0u8; 4];
            s.read_exact(&mut magic).unwrap();
            assert_eq!(magic, MAGIC);
            server_handshake_rest(&mut s).unwrap();
            assert_eq!(read_request(&mut s).unwrap(), Request::Ping);
            write_response(&mut s, &Response::Pong).unwrap();
        });
        let mut c = std::net::TcpStream::connect(addr).unwrap();
        client_handshake(&mut c).unwrap();
        write_request(&mut c, &Request::Ping).unwrap();
        assert_eq!(read_response(&mut c).unwrap(), Response::Pong);
        server.join().unwrap();
    }

    #[test]
    fn code_names_are_stable() {
        assert_eq!(code_name(0), "success");
        assert_eq!(code_name(1), "gate-failed");
        assert_eq!(code_name(2), "validation");
        assert_eq!(code_name(3), "sim-fault");
        assert_eq!(code_name(4), "corrupt-checkpoint");
        assert_eq!(code_name(CODE_CANCELED), "canceled");
        assert_eq!(code_name(CODE_DEADLINE), "deadline");
    }
}
