//! Client side of `nwserve-v1`: connect, submit, stream, collect.
//!
//! [`Connection`] wraps one handshaken TCP stream. The convenience
//! driver [`Connection::run_job`] submits a [`JobSpec`] and pumps the
//! event stream to completion, handing every non-terminal frame to a
//! progress callback and folding the terminal frame into a
//! [`JobResult`] whose `code` is directly usable as a process exit
//! code (it is the server-side [`nwcache::ExitCode`] value, or the
//! protocol's cancel/deadline codes).

use crate::proto::{self, JobSpec, ProtoError, Request, Response};
use std::net::TcpStream;

/// Outcome of one job as seen by the client.
#[derive(Debug, Clone, Default)]
pub struct JobResult {
    /// Server-assigned job id.
    pub job: u64,
    /// Exit/error code: 0 on `Done` and `Drained`, else the
    /// `JobError` code.
    pub code: u64,
    /// Error message from a `JobError` frame.
    pub message: Option<String>,
    /// Final JSON (byte-identical to the batch CLI's) from `Done`.
    pub json: Option<String>,
    /// Chrome-trace JSON when the job asked for a trace.
    pub trace_json: Option<String>,
    /// Whether any cell warm-started from the server's cache.
    pub warm_hit: bool,
    /// `(server-side checkpoint path, events dispatched)` when the
    /// job was cut short by a drain.
    pub drained: Option<(String, u64)>,
}

impl JobResult {
    /// True when the job produced its final JSON.
    pub fn is_done(&self) -> bool {
        self.json.is_some()
    }
}

/// One handshaken protocol connection.
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connect to `addr` (`host:port`) and perform the `nwserve-v1`
    /// handshake.
    pub fn connect(addr: &str) -> Result<Connection, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut conn = Connection { stream };
        proto::client_handshake(&mut conn.stream)?;
        Ok(conn)
    }

    /// Round-trip a `Ping`.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        proto::write_request(&mut self.stream, &Request::Ping)?;
        match proto::read_response(&mut self.stream)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetch the text metrics page over the protocol.
    pub fn metrics_text(&mut self) -> Result<String, ProtoError> {
        proto::write_request(&mut self.stream, &Request::Metrics)?;
        match proto::read_response(&mut self.stream)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ProtoError> {
        proto::write_request(&mut self.stream, &Request::Shutdown)?;
        match proto::read_response(&mut self.stream)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Submit a job; returns the server-assigned job id once the
    /// server sends `Accepted`. A draining server answers
    /// `ShuttingDown`, reported as an error.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ProtoError> {
        proto::write_request(&mut self.stream, &Request::Submit(spec.clone()))?;
        match proto::read_response(&mut self.stream)? {
            Response::Accepted { job } => Ok(job),
            Response::ShuttingDown => Err(ProtoError::Malformed(
                "server is draining and refused the job".into(),
            )),
            other => Err(unexpected("Accepted", &other)),
        }
    }

    /// Read the next streamed frame for the in-flight job.
    pub fn next_event(&mut self) -> Result<Response, ProtoError> {
        proto::read_response(&mut self.stream)
    }

    /// Request cancellation of the in-flight job.
    pub fn cancel(&mut self, job: u64) -> Result<(), ProtoError> {
        proto::write_request(&mut self.stream, &Request::Cancel { job })
    }

    /// Submit `spec` and pump the stream to its terminal frame.
    /// Non-terminal frames (`Progress`, and `TraceJson` which is also
    /// captured in the result) are passed to `on_event`.
    pub fn run_job(
        &mut self,
        spec: &JobSpec,
        mut on_event: impl FnMut(&Response),
    ) -> Result<JobResult, ProtoError> {
        let job = self.submit(spec)?;
        let mut result = JobResult {
            job,
            ..JobResult::default()
        };
        loop {
            match self.next_event()? {
                rsp @ Response::Progress { .. } => on_event(&rsp),
                rsp @ Response::TraceJson { .. } => {
                    if let Response::TraceJson { json, .. } = &rsp {
                        result.trace_json = Some(json.clone());
                    }
                    on_event(&rsp);
                }
                Response::Done {
                    warm_hit, json, ..
                } => {
                    result.warm_hit = warm_hit;
                    result.json = Some(json);
                    return Ok(result);
                }
                Response::JobError { code, message, .. } => {
                    result.code = code;
                    result.message = Some(message);
                    return Ok(result);
                }
                Response::Drained { path, events, .. } => {
                    result.drained = Some((path, events));
                    return Ok(result);
                }
                other => return Err(unexpected("job stream frame", &other)),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ProtoError {
    ProtoError::Malformed(format!("expected {wanted}, got {got:?}"))
}
