//! Server counters and the text metrics page.
//!
//! One atomic per counter, rendered as Prometheus-style
//! `name value` lines. The page combines the server's own lifecycle
//! counters with the simulator's process-wide totals
//! ([`nwcache::observe::process_totals`]), so one scrape answers both
//! "what is the service doing" and "how much simulation has this
//! process performed". Served over the protocol (`Metrics` request)
//! and over plain HTTP (`GET /metrics` on the same port).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic lifecycle counters for one server instance.
#[derive(Default)]
pub struct ServerMetrics {
    /// Connections accepted (protocol and HTTP alike).
    pub connections: AtomicU64,
    /// HTTP scrapes served.
    pub http_scrapes: AtomicU64,
    /// Jobs admitted (`Accepted` sent).
    pub jobs_submitted: AtomicU64,
    /// Jobs that finished with a `Done` frame.
    pub jobs_completed: AtomicU64,
    /// Jobs that ended in a `JobError` frame (cancel/deadline included).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled by a `Cancel` frame.
    pub jobs_canceled: AtomicU64,
    /// Jobs autosaved and cut short by a drain.
    pub jobs_drained: AtomicU64,
    /// Jobs currently running (gauge).
    pub jobs_active: AtomicU64,
}

impl ServerMetrics {
    /// Increment `c` by one.
    pub fn incr(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the metrics page. `warm` is the warm cache's
    /// `(hits, misses, entries)` snapshot.
    pub fn render_text(&self, warm: (u64, u64, u64)) -> String {
        let totals = nwcache::observe::process_totals();
        let mut out = String::with_capacity(1024);
        let mut line = |name: &str, v: u64| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        line("nwserve_connections_total", self.connections.load(Ordering::Relaxed));
        line("nwserve_http_scrapes_total", self.http_scrapes.load(Ordering::Relaxed));
        line("nwserve_jobs_submitted_total", self.jobs_submitted.load(Ordering::Relaxed));
        line("nwserve_jobs_completed_total", self.jobs_completed.load(Ordering::Relaxed));
        line("nwserve_jobs_failed_total", self.jobs_failed.load(Ordering::Relaxed));
        line("nwserve_jobs_canceled_total", self.jobs_canceled.load(Ordering::Relaxed));
        line("nwserve_jobs_drained_total", self.jobs_drained.load(Ordering::Relaxed));
        line("nwserve_jobs_active", self.jobs_active.load(Ordering::Relaxed));
        line("nwserve_warm_hits_total", warm.0);
        line("nwserve_warm_misses_total", warm.1);
        line("nwserve_warm_entries", warm.2);
        line("nwsim_runs_completed_total", totals.runs);
        line("nwsim_events_dispatched_total", totals.events);
        line("nwsim_pcycles_simulated_total", totals.sim_pcycles);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_has_every_series_once() {
        let m = ServerMetrics::default();
        ServerMetrics::incr(&m.jobs_submitted);
        ServerMetrics::incr(&m.jobs_completed);
        let text = m.render_text((3, 1, 2));
        for series in [
            "nwserve_connections_total",
            "nwserve_http_scrapes_total",
            "nwserve_jobs_submitted_total 1",
            "nwserve_jobs_completed_total 1",
            "nwserve_jobs_failed_total 0",
            "nwserve_jobs_canceled_total 0",
            "nwserve_jobs_drained_total 0",
            "nwserve_jobs_active 0",
            "nwserve_warm_hits_total 3",
            "nwserve_warm_misses_total 1",
            "nwserve_warm_entries 2",
            "nwsim_runs_completed_total",
            "nwsim_events_dispatched_total",
            "nwsim_pcycles_simulated_total",
        ] {
            assert!(text.contains(series), "missing '{series}' in:\n{text}");
        }
        // Every line is `name value`.
        for l in text.lines() {
            let mut parts = l.split(' ');
            assert!(parts.next().is_some_and(|n| n.starts_with("nw")), "{l}");
            assert!(parts.next().is_some_and(|v| v.parse::<u64>().is_ok()), "{l}");
            assert!(parts.next().is_none(), "{l}");
        }
    }
}
