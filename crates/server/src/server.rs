//! The `nwsim serve` server: accept loop, job scheduling, graceful
//! drain.
//!
//! One thread per connection; each connection runs at most one job at
//! a time (the protocol is submit → stream → terminal frame). Jobs
//! execute on [`nw_sim::pool::spawn_job`] threads, bounded by a
//! counting semaphore of job slots, with a [`CancelToken`] polled
//! between simulation chunks — so `Cancel` frames, wall-clock
//! deadlines, and drain requests all take effect within one chunk of
//! events.
//!
//! **Graceful drain.** A SIGTERM/SIGINT (see
//! [`install_signal_handlers`]), a `Shutdown` frame, or
//! [`ServerHandle::shutdown`] sets the drain flag. The accept loop
//! stops admitting connections, new submissions are answered with
//! `ShuttingDown`, and every in-flight job autosaves an `nwckpt-v1`
//! checkpoint (atomic temp + rename) under the autosave directory and
//! reports it with a `Drained` frame — the client can later finish the
//! run with `nwsim resume`, bit-identically.
//!
//! **Metrics.** The same port answers plain HTTP: a connection whose
//! first bytes are `GET ` receives the text metrics page and is
//! closed, so `curl http://host:port/metrics` works with no extra
//! listener.

use crate::cache::{self, WarmCache, WarmStart};
use crate::metrics::ServerMetrics;
use crate::proto::{self, JobKind, JobSpec, ProtoError, Request, Response};
use nwcache::checkpoint;
use nwcache::config::{MachineKind, PrefetchMode, RunParams};
use nwcache::error::{ExitCode, SimError};
use nwcache::machine::{Machine, RunOutcome};
use nwcache::metrics::{summaries_to_json, RunSummary};
use nwcache::workload::AppSel;
use nw_sim::pool::{self, CancelToken};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-wide drain request, set by the signal handler. Per-server
/// shutdown (the `Shutdown` frame / [`ServerHandle::shutdown`]) uses
/// the server's own flag instead, so in-process tests don't poison
/// each other.
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Request a process-wide drain (what the SIGTERM handler does).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that request a drain. Relies only
/// on the C `signal` binding std already links; an atomic store is all
/// the handler performs.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

/// No-op off unix; the `Shutdown` frame still drains the server.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Max concurrently *running* jobs; 0 = `max(2, cores)`.
    pub job_slots: usize,
    /// Directory persisting warm-cache entries across restarts.
    pub warm_dir: Option<PathBuf>,
    /// Max in-memory warm-cache entries (LRU beyond that).
    pub warm_capacity: usize,
    /// Where draining jobs autosave their checkpoints.
    pub autosave_dir: PathBuf,
    /// Events per simulation chunk between control checks (cancel /
    /// deadline / drain) and default progress cadence.
    pub chunk_events: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            job_slots: 0,
            warm_dir: None,
            warm_capacity: 8,
            autosave_dir: PathBuf::from("nwserve-autosave"),
            chunk_events: 10_000,
        }
    }
}

/// Counting semaphore bounding concurrently running jobs.
struct Slots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn new(n: usize) -> Slots {
        Slots {
            free: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut free = self.free.lock().unwrap();
        while *free == 0 {
            free = self.cv.wait(free).unwrap();
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

struct State {
    opts: ServeOptions,
    metrics: ServerMetrics,
    cache: WarmCache,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    slots: Slots,
}

impl State {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || DRAIN.load(Ordering::SeqCst)
    }

    fn warm_snapshot(&self) -> (u64, u64, u64) {
        (
            self.cache.hits(),
            self.cache.misses(),
            self.cache.len() as u64,
        )
    }
}

/// Clonable handle for poking a running server from another thread
/// (used by tests and embedders; the CLI drains via signals).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// Request this server (only) to drain and exit.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Counter snapshot returned by [`Server::run`] when the server exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs that finished with a `Done` frame.
    pub jobs_completed: u64,
    /// Jobs that ended in a `JobError` frame.
    pub jobs_failed: u64,
    /// Jobs autosaved by the drain.
    pub jobs_drained: u64,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind the listen socket and initialize server state.
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let slots = match opts.job_slots {
            0 => pool::default_jobs().max(2),
            n => n,
        };
        let cache = WarmCache::new(opts.warm_dir.clone(), opts.warm_capacity);
        let state = Arc::new(State {
            opts,
            metrics: ServerMetrics::default(),
            cache,
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            slots: Slots::new(slots),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for requesting shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Accept and serve connections until a drain is requested, then
    /// wait for every connection (and therefore every autosaving job)
    /// to finish.
    pub fn run(self) -> ServeStats {
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.state.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let state = Arc::clone(&self.state);
                    conns.push(std::thread::spawn(move || handle_conn(state, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(15)),
            }
            conns.retain(|h| !h.is_finished());
        }
        for h in conns {
            let _ = h.join();
        }
        let m = &self.state.metrics;
        ServeStats {
            jobs_completed: m.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: m.jobs_failed.load(Ordering::Relaxed),
            jobs_drained: m.jobs_drained.load(Ordering::Relaxed),
        }
    }
}

fn handle_conn(state: Arc<State>, mut stream: TcpStream) {
    ServerMetrics::incr(&state.metrics.connections);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut first = [0u8; 4];
    if stream.read_exact(&mut first).is_err() {
        return;
    }
    if &first == b"GET " {
        serve_http(&state, stream);
        return;
    }
    if first != proto::MAGIC {
        return;
    }
    if proto::server_handshake_rest(&mut stream).is_err() {
        return;
    }
    // Idle poll cadence: lets the connection notice a drain without a
    // request in flight.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    conn_loop(&state, &mut stream);
}

fn serve_http(state: &State, mut stream: TcpStream) {
    ServerMetrics::incr(&state.metrics.http_scrapes);
    // Drain the request head (best effort — the response is the same
    // for every path).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut buf = [0u8; 1024];
    let mut head: Vec<u8> = b"GET ".to_vec();
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
        }
    }
    let body = state.metrics.render_text(state.warm_snapshot());
    use std::io::Write;
    let _ = write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.flush();
}

fn conn_loop(state: &Arc<State>, stream: &mut TcpStream) {
    loop {
        if state.draining() {
            let _ = proto::write_response(stream, &Response::ShuttingDown);
            return;
        }
        let req = match proto::try_read_request(stream) {
            Ok(None) => continue,
            Ok(Some(r)) => r,
            Err(_) => return, // client gone or garbage: close
        };
        match req {
            Request::Ping => {
                if proto::write_response(stream, &Response::Pong).is_err() {
                    return;
                }
            }
            Request::Metrics => {
                let text = state.metrics.render_text(state.warm_snapshot());
                if proto::write_response(stream, &Response::MetricsText { text }).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = proto::write_response(stream, &Response::ShuttingDown);
                return;
            }
            // No job is streaming on this connection, so there is
            // nothing to cancel.
            Request::Cancel { .. } => {}
            Request::Submit(spec) => {
                if state.draining() {
                    let _ = proto::write_response(stream, &Response::ShuttingDown);
                    continue;
                }
                if serve_job(state, stream, spec).is_err() {
                    return;
                }
            }
        }
    }
}

/// Admit, run and stream one job on this connection. `Err` means the
/// socket failed and the connection should close.
fn serve_job(
    state: &Arc<State>,
    stream: &mut TcpStream,
    spec: JobSpec,
) -> Result<(), ProtoError> {
    let job = state.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    state.slots.acquire();
    ServerMetrics::incr(&state.metrics.jobs_submitted);
    state.metrics.jobs_active.fetch_add(1, Ordering::Relaxed);
    let result = stream_job(state, stream, job, spec);
    state.metrics.jobs_active.fetch_sub(1, Ordering::Relaxed);
    state.slots.release();
    result
}

fn stream_job(
    state: &Arc<State>,
    stream: &mut TcpStream,
    job: u64,
    spec: JobSpec,
) -> Result<(), ProtoError> {
    proto::write_response(stream, &Response::Accepted { job })?;
    let (tx, rx) = mpsc::channel::<Response>();
    let job_state = Arc::clone(state);
    let handle = pool::spawn_job(move |cancel| run_job(&job_state, job, &spec, &tx, &cancel));
    // Short poll timeout while a job streams, so control frames
    // (Cancel/Ping) are picked up promptly between event batches.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let mut terminal = false;
    let mut io_result: Result<(), ProtoError> = Ok(());
    'stream: loop {
        // Forward job events (Progress / TraceJson / terminal) — in
        // bounded batches, so a job that streams faster than the
        // channel ever drains cannot starve the socket poll below.
        for _ in 0..256 {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(rsp) => {
                    let is_terminal = matches!(
                        rsp,
                        Response::Done { .. }
                            | Response::JobError { .. }
                            | Response::Drained { .. }
                    );
                    if let Err(e) = proto::write_response(stream, &rsp) {
                        handle.cancel();
                        io_result = Err(e);
                        break 'stream;
                    }
                    if is_terminal {
                        terminal = true;
                        break 'stream;
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break 'stream,
            }
        }
        // Poll the socket for mid-job control frames.
        match proto::try_read_request(stream) {
            Ok(None) => {}
            Ok(Some(Request::Cancel { job: id })) if id == job => handle.cancel(),
            Ok(Some(Request::Ping)) => {
                if let Err(e) = proto::write_response(stream, &Response::Pong) {
                    handle.cancel();
                    io_result = Err(e);
                    break 'stream;
                }
            }
            Ok(Some(_)) => {} // other requests are invalid mid-job; ignored
            Err(e) => {
                handle.cancel();
                io_result = Err(e);
                break 'stream;
            }
        }
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let joined = handle.join();
    if !terminal && io_result.is_ok() {
        // The job thread died without a terminal frame — a panic.
        let message = match joined {
            Err(p) => p.message,
            Ok(()) => "job ended without a result".into(),
        };
        ServerMetrics::incr(&state.metrics.jobs_failed);
        proto::write_response(
            stream,
            &Response::JobError {
                job,
                code: ExitCode::SimFault.code() as u64,
                message,
            },
        )?;
    }
    io_result
}

/// Execute one job on its pool thread, reporting through `tx`. Always
/// ends with exactly one terminal event (`Done`, `JobError`, or
/// `Drained`).
fn run_job(
    state: &Arc<State>,
    job: u64,
    spec: &JobSpec,
    tx: &Sender<Response>,
    cancel: &CancelToken,
) {
    let fail = |code: u64, message: String| {
        ServerMetrics::incr(&state.metrics.jobs_failed);
        let _ = tx.send(Response::JobError { job, code, message });
    };
    let sim_fail = |e: &SimError| fail(e.exit_code().code() as u64, e.to_string());

    let (prefetch, window) = match PrefetchMode::parse_spec(&spec.prefetch) {
        Ok(p) => p,
        Err(e) => return fail(ExitCode::Validation.code() as u64, e),
    };
    if spec.machines.is_empty() {
        return fail(
            ExitCode::Validation.code() as u64,
            "job names no machines".into(),
        );
    }
    if spec.kind == JobKind::Run && spec.machines.len() != 1 {
        return fail(
            ExitCode::Validation.code() as u64,
            format!("run jobs take one machine, got {}", spec.machines.len()),
        );
    }
    let mut cfgs = Vec::with_capacity(spec.machines.len());
    for label in &spec.machines {
        let Some(kind) = MachineKind::parse(label) else {
            return fail(
                ExitCode::Validation.code() as u64,
                format!("unknown machine '{label}' (standard|nwcache|dcd)"),
            );
        };
        let params = RunParams {
            machine: kind,
            prefetch,
            prefetch_window: window,
            scale: spec.scale,
            seed: spec.seed,
            topo: spec.topo.clone(),
        };
        match params.to_config() {
            Ok(cfg) => cfgs.push(cfg),
            Err(e) => return sim_fail(&e),
        }
    }
    if let Err(e) = AppSel::parse(&spec.spec) {
        return sim_fail(&e);
    }
    let deadline = (spec.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(spec.deadline_ms));
    let chunk = if spec.progress_every > 0 {
        spec.progress_every
    } else {
        state.opts.chunk_events.max(1)
    };
    let cells = cfgs.len() as u64;
    let mut summaries: Vec<RunSummary> = Vec::with_capacity(cfgs.len());
    let mut warm_hit = false;
    for (i, cfg) in cfgs.iter().enumerate() {
        let Some((metrics, hit)) =
            run_cell(state, job, spec, cfg, i as u64, cells, chunk, deadline, cancel, tx)
        else {
            return; // terminal event already sent
        };
        warm_hit |= hit;
        summaries.push(metrics.summary());
    }
    let json = match spec.kind {
        JobKind::Run => summaries[0].to_json(),
        JobKind::Sweep => summaries_to_json(&summaries),
    };
    ServerMetrics::incr(&state.metrics.jobs_completed);
    let _ = tx.send(Response::Done {
        job,
        warm_hit,
        json,
    });
}

/// Run one `(config, workload)` cell in control-checked chunks.
/// `None` means a terminal event was already sent (failure, cancel,
/// deadline, or drain-autosave).
#[allow(clippy::too_many_arguments)]
fn run_cell(
    state: &Arc<State>,
    job: u64,
    spec: &JobSpec,
    cfg: &nwcache::MachineConfig,
    cell: u64,
    cells: u64,
    chunk: u64,
    deadline: Option<Instant>,
    cancel: &CancelToken,
    tx: &Sender<Response>,
) -> Option<(nwcache::RunMetrics, bool)> {
    let fail = |code: u64, message: String| {
        ServerMetrics::incr(&state.metrics.jobs_failed);
        let _ = tx.send(Response::JobError { job, code, message });
    };
    let mut hit = false;
    let mut machine: Box<Machine> = if spec.warmup_events > 0 {
        match cache::warm_start(
            &state.cache,
            cfg,
            &spec.spec,
            spec.warmup_events,
            spec.verify_warm,
        ) {
            Ok(WarmStart::Finished(metrics)) => return Some((*metrics, false)),
            Ok(WarmStart::Ready { machine, hit: h }) => {
                hit = h;
                machine
            }
            Err(e @ cache::WarmError::Drift { .. }) => {
                fail(ExitCode::GateFailed.code() as u64, e.to_string());
                return None;
            }
            Err(cache::WarmError::Sim(e)) => {
                fail(e.exit_code().code() as u64, e.to_string());
                return None;
            }
        }
    } else {
        let built = (|| {
            let sel = AppSel::parse(&spec.spec)?;
            cfg.validate().map_err(SimError::BadConfig)?;
            let build = sel.build(cfg)?;
            Machine::try_from_build(cfg.clone(), build)
        })();
        match built {
            Ok(m) => Box::new(m),
            Err(e) => {
                fail(e.exit_code().code() as u64, e.to_string());
                return None;
            }
        }
    };
    if spec.want_trace && spec.kind == JobKind::Run {
        machine.enable_observer(nwcache::observe::ObserveConfig::default());
    }
    loop {
        if cancel.is_cancelled() {
            ServerMetrics::incr(&state.metrics.jobs_canceled);
            fail(proto::CODE_CANCELED, "job canceled".into());
            return None;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            fail(
                proto::CODE_DEADLINE,
                format!("deadline of {}ms expired", spec.deadline_ms),
            );
            return None;
        }
        if state.draining() {
            let dir = &state.opts.autosave_dir;
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("job-{job}.nwckpt"));
            match checkpoint::save_file(&path, &spec.spec, &machine) {
                Ok(()) => {
                    ServerMetrics::incr(&state.metrics.jobs_drained);
                    let _ = tx.send(Response::Drained {
                        job,
                        path: path.display().to_string(),
                        events: machine.events_dispatched(),
                    });
                }
                Err(e) => fail(e.exit_code().code() as u64, e.to_string()),
            }
            return None;
        }
        match machine.try_run_events(chunk) {
            Ok(RunOutcome::Done(metrics)) => {
                if spec.want_trace && spec.kind == JobKind::Run {
                    if let Some(obs) = machine.take_observation() {
                        let _ = tx.send(Response::TraceJson {
                            job,
                            json: obs.to_chrome_json(),
                        });
                    }
                }
                return Some((*metrics, hit));
            }
            Ok(RunOutcome::Paused) => {
                let _ = tx.send(Response::Progress {
                    job,
                    cell,
                    cells,
                    events: machine.events_dispatched(),
                    now: machine.exec_time(),
                });
            }
            Err(e) => {
                fail(e.exit_code().code() as u64, e.to_string());
                return None;
            }
        }
    }
}
