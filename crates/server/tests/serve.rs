//! End-to-end `nwserve-v1` tests: a real [`Server`] on a loopback
//! port, real [`Connection`] clients, and byte-identity against the
//! in-process batch paths.

use nw_server::proto::{CODE_CANCELED, CODE_DEADLINE};
use nw_server::{Connection, JobKind, JobSpec, Response, ServeOptions, Server, ServerHandle};
use nwcache::config::{MachineKind, PrefetchMode, RunParams};
use nwcache::metrics::summaries_to_json;
use nwcache::workload::AppSel;
use nwcache::{checkpoint, try_run_sel};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::thread;

/// A fast generated workload (finishes in well under a second).
const QUICK: &str = "workload:gen:zipf:0.9,ws=64,acc=2000";
/// A workload long enough to cancel / drain / deadline mid-run.
const LONG: &str = "workload:gen:zipf:0.9,ws=256,acc=8000";

fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nwserve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn start(opts: ServeOptions) -> (String, ServerHandle, thread::JoinHandle<nw_server::ServeStats>) {
    let server = Server::bind(opts).expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn run_spec(spec: &str) -> JobSpec {
    JobSpec {
        kind: JobKind::Run,
        spec: spec.into(),
        machines: vec!["nwcache".into()],
        ..JobSpec::default()
    }
}

/// The batch-side reference JSON for one cell of a job.
fn batch_json(spec: &JobSpec, machine: &str) -> String {
    let (prefetch, window) = PrefetchMode::parse_spec(&spec.prefetch).unwrap();
    let params = RunParams {
        machine: MachineKind::parse(machine).unwrap(),
        prefetch,
        prefetch_window: window,
        scale: spec.scale,
        seed: spec.seed,
        topo: spec.topo.clone(),
    };
    let cfg = params.to_config().unwrap();
    let sel = AppSel::parse(&spec.spec).unwrap();
    try_run_sel(&cfg, &sel).unwrap().summary().to_json()
}

#[test]
fn run_job_matches_batch_json_byte_for_byte() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    conn.ping().unwrap();
    let spec = run_spec(QUICK);
    let result = conn.run_job(&spec, |_| {}).unwrap();
    assert_eq!(result.code, 0, "{:?}", result.message);
    assert!(!result.warm_hit);
    assert_eq!(result.json.as_deref(), Some(batch_json(&spec, "nwcache").as_str()));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn sweep_job_streams_progress_and_matches_summaries_json() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    let spec = JobSpec {
        kind: JobKind::Sweep,
        spec: QUICK.into(),
        machines: vec!["standard".into(), "nwcache".into(), "dcd".into()],
        progress_every: 500,
        ..JobSpec::default()
    };
    let mut progress = 0u32;
    let mut cells_seen = Vec::new();
    let result = conn
        .run_job(&spec, |e| {
            if let Response::Progress { cell, cells, .. } = e {
                progress += 1;
                assert_eq!(*cells, 3);
                cells_seen.push(*cell);
            }
        })
        .unwrap();
    assert_eq!(result.code, 0, "{:?}", result.message);
    assert!(progress > 0, "expected at least one Progress frame");
    assert!(cells_seen.windows(2).all(|w| w[0] <= w[1]), "{cells_seen:?}");
    // The sweep JSON is the deterministic summaries array, identical
    // to running the three cells cold in-process.
    let expect: Vec<_> = ["standard", "nwcache", "dcd"]
        .iter()
        .map(|m| {
            let (prefetch, window) = PrefetchMode::parse_spec(&spec.prefetch).unwrap();
            let params = RunParams {
                machine: MachineKind::parse(m).unwrap(),
                prefetch,
                prefetch_window: window,
                scale: spec.scale,
                seed: spec.seed,
                topo: spec.topo.clone(),
            };
            let cfg = params.to_config().unwrap();
            let sel = AppSel::parse(&spec.spec).unwrap();
            try_run_sel(&cfg, &sel).unwrap().summary()
        })
        .collect();
    assert_eq!(result.json.as_deref(), Some(summaries_to_json(&expect).as_str()));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_jobs_on_separate_connections_are_isolated() {
    let (addr, handle, join) = start(ServeOptions::default());
    let specs = [
        run_spec(QUICK),
        run_spec("workload:gen:uniform,ws=32,acc=1500"),
    ];
    let workers: Vec<_> = specs
        .iter()
        .cloned()
        .map(|spec| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut conn = Connection::connect(&addr).unwrap();
                let result = conn.run_job(&spec, |_| {}).unwrap();
                (spec, result)
            })
        })
        .collect();
    for w in workers {
        let (spec, result) = w.join().unwrap();
        assert_eq!(result.code, 0, "{:?}", result.message);
        assert_eq!(
            result.json.as_deref(),
            Some(batch_json(&spec, "nwcache").as_str()),
            "job for {} diverged from the batch CLI",
            spec.spec
        );
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn warm_start_misses_then_hits_and_stays_bit_identical() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    let cold = conn.run_job(&run_spec(QUICK), |_| {}).unwrap();
    assert_eq!(cold.code, 0);

    let mut warm = run_spec(QUICK);
    warm.warmup_events = 500;
    let first = conn.run_job(&warm, |_| {}).unwrap();
    assert_eq!(first.code, 0, "{:?}", first.message);
    assert!(!first.warm_hit, "first warm run must miss the cache");
    let second = conn.run_job(&warm, |_| {}).unwrap();
    assert_eq!(second.code, 0, "{:?}", second.message);
    assert!(second.warm_hit, "second warm run must hit the cache");

    // Cold, warm-miss and warm-hit must all be byte-identical.
    assert_eq!(cold.json, first.json);
    assert_eq!(first.json, second.json);

    // Paranoid mode re-warms cold and diffs the cached checkpoint:
    // an honest cache passes.
    let mut verify = warm.clone();
    verify.verify_warm = true;
    let third = conn.run_job(&verify, |_| {}).unwrap();
    assert_eq!(third.code, 0, "{:?}", third.message);
    assert!(third.warm_hit);
    assert_eq!(third.json, cold.json);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cancel_mid_job_yields_the_canceled_code() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    let mut spec = run_spec(LONG);
    spec.progress_every = 200;
    let job = conn.submit(&spec).unwrap();
    let mut canceled = false;
    loop {
        match conn.next_event().unwrap() {
            Response::Progress { .. } => {
                if !canceled {
                    conn.cancel(job).unwrap();
                    canceled = true;
                }
            }
            Response::JobError { code, message, .. } => {
                assert_eq!(code, CODE_CANCELED, "{message}");
                break;
            }
            Response::Done { .. } => panic!("job finished despite cancel"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn expired_deadline_yields_the_deadline_code() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    let mut spec = run_spec(LONG);
    spec.progress_every = 200;
    spec.deadline_ms = 1;
    let result = conn.run_job(&spec, |_| {}).unwrap();
    assert_eq!(result.code, CODE_DEADLINE, "{:?}", result.message);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn validation_errors_carry_the_cli_exit_code() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    // Unknown machine and unknown app are both validation failures
    // (exit code 2 in the CLI).
    let mut bad_machine = run_spec(QUICK);
    bad_machine.machines = vec!["warpdrive".into()];
    let r = conn.run_job(&bad_machine, |_| {}).unwrap();
    assert_eq!(r.code, 2, "{:?}", r.message);
    assert!(r.message.unwrap().contains("warpdrive"));
    let bad_app = run_spec("guass");
    let r = conn.run_job(&bad_app, |_| {}).unwrap();
    assert_eq!(r.code, 2, "{:?}", r.message);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_served_over_protocol_and_plain_http() {
    let (addr, handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    conn.run_job(&run_spec(QUICK), |_| {}).unwrap();
    let text = conn.metrics_text().unwrap();
    assert!(text.contains("nwserve_jobs_completed_total 1"), "{text}");
    assert!(text.contains("nwserve_jobs_submitted_total 1"), "{text}");
    assert!(text.contains("nwsim_runs_completed_total"), "{text}");

    // Same port, plain HTTP.
    let mut http = std::net::TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut page = String::new();
    http.read_to_string(&mut page).unwrap();
    assert!(page.starts_with("HTTP/1.0 200 OK"), "{page}");
    assert!(page.contains("nwserve_http_scrapes_total 1"), "{page}");
    assert!(page.contains("nwserve_jobs_completed_total 1"), "{page}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn drain_autosaves_the_running_job_and_refuses_new_work() {
    let dir = scratch_dir("drain");
    let opts = ServeOptions {
        autosave_dir: dir.clone(),
        ..ServeOptions::default()
    };
    let (addr, handle, join) = start(opts);
    let mut conn = Connection::connect(&addr).unwrap();
    let mut spec = run_spec(LONG);
    spec.progress_every = 200;
    let job = conn.submit(&spec).unwrap();
    let mut requested = false;
    let path = loop {
        match conn.next_event().unwrap() {
            Response::Progress { .. } => {
                if !requested {
                    handle.shutdown();
                    requested = true;
                }
            }
            Response::Drained { job: id, path, events } => {
                assert_eq!(id, job);
                assert!(events > 0);
                break PathBuf::from(path);
            }
            Response::Done { .. } => panic!("job outran the drain; grow LONG"),
            other => panic!("unexpected frame {other:?}"),
        }
    };
    // The autosave is a valid nwckpt-v1 container...
    checkpoint::validate_file(&path).expect("drained autosave must validate");
    // ...and resuming it finishes the run bit-identically to a cold
    // uninterrupted run.
    let (meta, mut machine) = checkpoint::load_file(&path).unwrap();
    assert_eq!(meta.spec, LONG);
    let resumed = match machine.try_run_events(u64::MAX).unwrap() {
        nwcache::RunOutcome::Done(m) => m.summary().to_json(),
        nwcache::RunOutcome::Paused => panic!("unbounded resume paused"),
    };
    assert_eq!(resumed, batch_json(&spec, "nwcache"));

    // After the drain the connection receives an unsolicited
    // ShuttingDown notice and is closed — new submissions fail.
    match conn.next_event().unwrap() {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown after drain, got {other:?}"),
    }
    assert!(conn.submit(&spec).is_err(), "draining server must refuse work");

    let stats = join.join().unwrap();
    assert_eq!(stats.jobs_drained, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_frame_drains_an_idle_server() {
    let (addr, _handle, join) = start(ServeOptions::default());
    let mut conn = Connection::connect(&addr).unwrap();
    conn.shutdown_server().unwrap();
    let stats = join.join().unwrap();
    assert_eq!(stats.jobs_drained, 0);
    assert_eq!(stats.jobs_completed, 0);
}
