//! FFT — 1-D fast Fourier transform (Table 2: 64 K complex points,
//! ~3.1 MB).
//!
//! Radix-2, ping-ponging between two arrays of complex doubles with a
//! table of twiddle factors. Points are block-partitioned; pass `s`
//! pairs point `i` with `i XOR 2^s`, so early passes are local and the
//! later (large-stride) passes read the partner line from a *remote*
//! processor's partition — the all-to-all phase that makes FFT the most
//! network-intensive program of the suite (it is the one application
//! that can slow down under the NWCache with naive prefetching).

use crate::layout::{block_partition, Allocator, Vec1};
use crate::{Action, AppBuild};

const FULL_POINTS: usize = 64 * 1024;
/// Complex double = 16 bytes -> 4 points per 64 B line.
const POINTS_PER_LINE: u64 = 4;
/// Compute per butterfly line (4 complex MACs).
const COMPUTE_PER_LINE: u32 = 40;

/// Build the FFT kernel streams.
pub fn build(nprocs: usize, scale: f64, _seed: u64) -> AppBuild {
    // Round the scaled size down to a power of two, minimum 1 K points.
    let want = (FULL_POINTS as f64 * scale) as usize;
    let n = want.next_power_of_two().clamp(1024, FULL_POINTS) as u64;
    let n = if n as usize > want && n > 1024 { n / 2 } else { n };
    let passes = n.trailing_zeros();
    let mut alloc = Allocator::new();
    let d0 = Vec1::alloc(&mut alloc, n, 16);
    let d1 = Vec1::alloc(&mut alloc, n, 16);
    let tw = Vec1::alloc(&mut alloc, n, 16);
    let data_bytes = alloc.allocated();

    let streams = (0..nprocs)
        .map(|p| {
            let (i0, i1) = block_partition(n, nprocs, p);
            let iter = (0..passes).flat_map(move |s| {
                let (src, dst) = if s % 2 == 0 { (d0, d1) } else { (d1, d0) };
                let stride = 1u64 << s;
                // Iterate over my points line by line.
                let body = (i0..i1).step_by(POINTS_PER_LINE as usize).flat_map(move |i| {
                    let partner = i ^ stride;
                    let same_line = partner / POINTS_PER_LINE == i / POINTS_PER_LINE;
                    let mut v = Vec::with_capacity(5);
                    v.push(Action::Read(src.line_of(i)));
                    if !same_line {
                        v.push(Action::Read(src.line_of(partner)));
                    }
                    v.push(Action::Read(tw.line_of(i % tw.len)));
                    v.push(Action::Compute(COMPUTE_PER_LINE));
                    v.push(Action::Write(dst.line_of(i)));
                    v
                });
                body.chain(std::iter::once(Action::Barrier(s)))
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "fft",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 3.0).abs() < 0.3, "{mb}");
    }

    #[test]
    fn pass_count_is_log2() {
        let b = build(1, 1.0 / 64.0, 0); // 1K points
        let barriers = b
            .streams
            .into_iter()
            .next()
            .unwrap()
            .filter(|a| matches!(a, Action::Barrier(_)))
            .count();
        assert_eq!(barriers, 10); // log2(1024)
    }

    #[test]
    fn early_passes_local_late_passes_remote() {
        // With 2 procs and 1K points, pass 9 (stride 512) partners
        // across the partition boundary, pass 0 does not.
        let b = build(2, 1.0 / 64.0, 0);
        let s0 = b.streams.into_iter().next().unwrap();
        let mut pass = 0u32;
        let mut cross_by_pass = [false; 10];
        // Proc 0 owns points 0..512 = lines 0..128 of d0.
        for a in s0 {
            match a {
                Action::Barrier(id) => pass = id + 1,
                Action::Read(l) => {
                    // d0 occupies lines [0, 256), d1 [256, 512).
                    let local_lines = 128u64;
                    let arr_base = (l / 256) * 256;
                    let off = l - arr_base;
                    if l < 768 && off >= local_lines {
                        cross_by_pass[pass as usize] = true;
                    }
                }
                _ => {}
            }
        }
        assert!(!cross_by_pass[0], "pass 0 must be partition-local");
        assert!(cross_by_pass[9], "last pass must cross partitions");
    }

    #[test]
    fn butterflies_read_both_halves() {
        let b = build(1, 1.0 / 64.0, 0);
        let mut has_partner_read = false;
        let mut prev_read: Option<u64> = None;
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Read(l) => {
                    if let Some(p) = prev_read {
                        if l > p + 1 {
                            has_partner_read = true;
                        }
                    }
                    prev_read = Some(l);
                }
                _ => prev_read = None,
            }
        }
        assert!(has_partner_read);
    }
}
