//! Radix — parallel integer radix sort (Table 2: 320 K keys, radix
//! 1024, ~2.6 MB).
//!
//! Three passes of stable counting sort over 10-bit digits of 30-bit
//! keys, ping-ponging between a source and a destination array. Each
//! pass: (1) sequential local-histogram scan, (2) histogram exchange
//! (every processor reads all histograms to compute its offsets),
//! (3) the permutation — sequential reads, *scattered* writes across
//! the whole destination array. The scattered writes are what makes
//! Radix swap-intensive with poor locality.

use crate::layout::{block_partition, Allocator, Vec1};
use crate::{scaled, Action, AppBuild};
use nw_sim::Pcg32;
use std::sync::Arc;

const FULL_KEYS: usize = 320 * 1024;
const RADIX_BITS: u32 = 10;
const RADIX: usize = 1 << RADIX_BITS;
const KEY_BITS: u32 = 30;
const PASSES: u32 = KEY_BITS / RADIX_BITS;
/// Keys per 64 B line (u32 keys).
const KEYS_PER_LINE: u64 = 16;

/// Host-side stable radix-sort replay: for each pass, the destination
/// index of the key at each source position.
fn plan_passes(keys: &[u32]) -> Vec<Vec<u32>> {
    let mut order: Vec<u32> = keys.to_vec();
    let mut plans = Vec::with_capacity(PASSES as usize);
    for pass in 0..PASSES {
        let shift = pass * RADIX_BITS;
        let mut counts = vec![0u32; RADIX];
        for &k in &order {
            counts[((k >> shift) as usize) & (RADIX - 1)] += 1;
        }
        let mut offsets = vec![0u32; RADIX];
        let mut acc = 0;
        for (d, &c) in counts.iter().enumerate() {
            offsets[d] = acc;
            acc += c;
        }
        let mut dst_idx = vec![0u32; order.len()];
        let mut next = vec![0u32; order.len()];
        for (i, &k) in order.iter().enumerate() {
            let d = ((k >> shift) as usize) & (RADIX - 1);
            let pos = offsets[d];
            offsets[d] += 1;
            dst_idx[i] = pos;
            next[pos as usize] = k;
        }
        plans.push(dst_idx);
        order = next;
    }
    plans
}

/// Build the radix-sort kernel streams.
pub fn build(nprocs: usize, scale: f64, seed: u64) -> AppBuild {
    let nkeys = (scaled(FULL_KEYS, scale, 4096) as u64 / KEYS_PER_LINE) * KEYS_PER_LINE;
    let mut rng = Pcg32::new(seed, 0x5AD1);
    let keys: Vec<u32> = (0..nkeys)
        .map(|_| rng.next_u32() & ((1 << KEY_BITS) - 1))
        .collect();
    let plans = Arc::new(plan_passes(&keys));

    let mut alloc = Allocator::new();
    let a0 = Vec1::alloc(&mut alloc, nkeys, 4);
    let a1 = Vec1::alloc(&mut alloc, nkeys, 4);
    let hist = Vec1::alloc(&mut alloc, (RADIX * nprocs) as u64, 4);
    let data_bytes = alloc.allocated();

    let streams = (0..nprocs)
        .map(|p| {
            let (k0, k1) = block_partition(nkeys, nprocs, p);
            let plans = Arc::clone(&plans);
            let iter = (0..PASSES).flat_map(move |pass| {
                let (src, dst) = if pass % 2 == 0 { (a0, a1) } else { (a1, a0) };
                let plans = Arc::clone(&plans);
                // Phase 1: local histogram — sequential read of my keys.
                let histo = src
                    .lines(k0, k1)
                    .flat_map(|l| [Action::Read(l), Action::Compute(32)])
                    .chain(hist.lines((p * RADIX) as u64, ((p + 1) * RADIX) as u64)
                        .map(Action::Write))
                    .chain(std::iter::once(Action::Barrier(3 * pass)));
                // Phase 2: read everyone's histogram for prefix sums.
                let exchange = hist
                    .lines(0, (RADIX * nprocs) as u64)
                    .flat_map(|l| [Action::Read(l), Action::Compute(4)])
                    .chain(std::iter::once(Action::Barrier(3 * pass + 1)));
                // Phase 3: permute — sequential reads, scattered writes.
                let permute = (k0..k1)
                    .step_by(KEYS_PER_LINE as usize)
                    .flat_map(move |i| {
                        let plans = Arc::clone(&plans);
                        std::iter::once(Action::Read(src.line_of(i))).chain(
                            (i..(i + KEYS_PER_LINE).min(k1)).map(move |j| {
                                let d = plans[pass as usize][j as usize] as u64;
                                Action::Write(dst.line_of(d))
                            }),
                        )
                    })
                    .chain(std::iter::once(Action::Barrier(3 * pass + 2)));
                histo.chain(exchange).chain(permute)
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "radix",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_permutation_per_pass() {
        let mut rng = Pcg32::new(1, 2);
        let keys: Vec<u32> = (0..4096).map(|_| rng.next_u32() & 0x3FFF_FFFF).collect();
        for plan in plan_passes(&keys) {
            let mut seen = vec![false; keys.len()];
            for &d in &plan {
                assert!(!seen[d as usize], "duplicate destination {d}");
                seen[d as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn plan_sorts_the_keys() {
        let mut rng = Pcg32::new(7, 7);
        let keys: Vec<u32> = (0..8192).map(|_| rng.next_u32() & 0x3FFF_FFFF).collect();
        let plans = plan_passes(&keys);
        // Replay all passes.
        let mut order = keys.clone();
        for plan in &plans {
            let mut next = vec![0u32; order.len()];
            for (i, &k) in order.iter().enumerate() {
                next[plan[i] as usize] = k;
            }
            order = next;
        }
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(order, expect);
    }

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 2.5).abs() < 0.25, "{mb}");
    }

    #[test]
    fn nine_barriers_total() {
        let b = build(2, 0.02, 3);
        let barriers = b
            .streams
            .into_iter()
            .next()
            .unwrap()
            .filter(|a| matches!(a, Action::Barrier(_)))
            .count();
        assert_eq!(barriers, 9); // 3 passes x 3 phases
    }

    #[test]
    fn permute_writes_scatter() {
        // Distinct destination lines written in one pass should be
        // spread widely, not a couple of hot lines.
        let b = build(2, 0.02, 3);
        let mut dst_lines = std::collections::HashSet::new();
        let mut in_permute = false;
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Barrier(id) => {
                    if id == 1 {
                        in_permute = true;
                    }
                    if id == 2 {
                        break;
                    }
                }
                Action::Write(l) if in_permute => {
                    dst_lines.insert(l);
                }
                _ => {}
            }
        }
        assert!(dst_lines.len() > 50, "only {} distinct lines", dst_lines.len());
    }
}
