//! LU — blocked dense LU factorization (Table 2: 576 x 576 doubles,
//! ~2.7 MB).
//!
//! The matrix is split into an 8 x 8 grid of blocks distributed
//! round-robin over the processors. Each elimination step factors the
//! diagonal block, updates the row and column panels, then performs
//! the trailing-matrix update (the GEMM-like phase that dominates the
//! access stream). Three barriers per step separate the phases.

use crate::layout::{Allocator, Mat2};
use crate::{Action, AppBuild};

const FULL_N: usize = 576;
/// Blocks per matrix dimension.
const NB: u64 = 8;

/// Distinct lines of block `(bi, bj)` of matrix `m` with block size
/// `bs`: each of the block's `bs` rows contributes its line range.
fn block_lines(m: Mat2, bs: u64, bi: u64, bj: u64) -> impl Iterator<Item = u64> {
    (bi * bs..(bi + 1) * bs).flat_map(move |r| m.row_lines(r, bj * bs, (bj + 1) * bs))
}

/// Round-robin block owner.
fn owner(bi: u64, bj: u64, nprocs: usize) -> usize {
    ((bi * NB + bj) % nprocs as u64) as usize
}

/// Build the LU kernel streams.
pub fn build(nprocs: usize, scale: f64, _seed: u64) -> AppBuild {
    // sqrt-scaling; keep n a multiple of NB * 8 so blocks line-align.
    let want = (FULL_N as f64 * scale.sqrt()) as u64;
    let n = (want / 64).max(1) * 64;
    let n = n.min(FULL_N as u64);
    let bs = n / NB;
    let mut alloc = Allocator::new();
    let m = Mat2::alloc(&mut alloc, n, n, 8);
    let data_bytes = alloc.allocated();
    // Compute scaling: ~2 flops per element per rank-1 step, charged
    // per line of 8 doubles across the bs accumulation depth.
    let gemm_compute = (2 * bs).min(u32::MAX as u64) as u32;

    let streams = (0..nprocs)
        .map(|p| {
            let iter = (0..NB).flat_map(move |k| {
                // Phase 1: factor diagonal block (its owner only).
                let diag: Box<dyn Iterator<Item = Action> + Send> = if owner(k, k, nprocs) == p {
                    Box::new(block_lines(m, bs, k, k).flat_map(move |l| {
                        [
                            Action::Read(l),
                            Action::Compute(gemm_compute / 2),
                            Action::Write(l),
                        ]
                    }))
                } else {
                    Box::new(std::iter::empty())
                };
                let b1 = std::iter::once(Action::Barrier((3 * k) as u32));

                // Phase 2: row and column panel updates by their owners.
                let panels = (k + 1..NB).flat_map(move |j| {
                    let row_panel: Box<dyn Iterator<Item = Action> + Send> =
                        if owner(k, j, nprocs) == p {
                            Box::new(
                                block_lines(m, bs, k, k).map(Action::Read).chain(
                                    block_lines(m, bs, k, j).flat_map(move |l| {
                                        [
                                            Action::Read(l),
                                            Action::Compute(gemm_compute),
                                            Action::Write(l),
                                        ]
                                    }),
                                ),
                            )
                        } else {
                            Box::new(std::iter::empty())
                        };
                    let col_panel: Box<dyn Iterator<Item = Action> + Send> =
                        if owner(j, k, nprocs) == p {
                            Box::new(
                                block_lines(m, bs, k, k).map(Action::Read).chain(
                                    block_lines(m, bs, j, k).flat_map(move |l| {
                                        [
                                            Action::Read(l),
                                            Action::Compute(gemm_compute),
                                            Action::Write(l),
                                        ]
                                    }),
                                ),
                            )
                        } else {
                            Box::new(std::iter::empty())
                        };
                    row_panel.chain(col_panel)
                });
                let b2 = std::iter::once(Action::Barrier((3 * k + 1) as u32));

                // Phase 3: trailing update of owned blocks (i, j).
                let trailing = (k + 1..NB).flat_map(move |i| {
                    (k + 1..NB).flat_map(move |j| {
                        let mine = owner(i, j, nprocs) == p;
                        let a_panel: Box<dyn Iterator<Item = Action> + Send> = if mine {
                            Box::new(
                                block_lines(m, bs, i, k)
                                    .map(Action::Read)
                                    .chain(block_lines(m, bs, k, j).map(Action::Read))
                                    .chain(block_lines(m, bs, i, j).flat_map(move |l| {
                                        [
                                            Action::Read(l),
                                            Action::Compute(gemm_compute),
                                            Action::Write(l),
                                        ]
                                    })),
                            )
                        } else {
                            Box::new(std::iter::empty())
                        };
                        a_panel
                    })
                });
                let b3 = std::iter::once(Action::Barrier((3 * k + 2) as u32));

                diag.chain(b1).chain(panels).chain(b2).chain(trailing).chain(b3)
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "lu",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 2.53).abs() < 0.25, "{mb}");
    }

    #[test]
    fn three_barriers_per_step() {
        let b = build(2, 0.15, 0);
        let barriers: Vec<u32> = b
            .streams
            .into_iter()
            .next()
            .unwrap()
            .filter_map(|a| match a {
                Action::Barrier(id) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(barriers.len(), 24); // 8 steps x 3 phases
        assert_eq!(barriers, (0..24).collect::<Vec<u32>>());
    }

    #[test]
    fn only_diag_owner_works_in_phase_one() {
        let nprocs = 4;
        let b = build(nprocs, 0.15, 0);
        for (p, s) in b.streams.into_iter().enumerate() {
            // Count accesses before the first barrier (step 0 phase 1).
            let mut count = 0;
            for a in s {
                match a {
                    Action::Barrier(_) => break,
                    Action::Read(_) | Action::Write(_) => count += 1,
                    _ => {}
                }
            }
            if p == owner(0, 0, nprocs) {
                assert!(count > 0, "owner {p} did no work");
            } else {
                assert_eq!(count, 0, "non-owner {p} touched the diagonal");
            }
        }
    }

    #[test]
    fn trailing_work_shrinks_with_k() {
        let b = build(1, 0.15, 0);
        // Accesses between barrier 2 (start of step-0 trailing) and 3,
        // vs between barrier 20 and 21 (step-6 trailing).
        let mut counts = vec![0u64];
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Barrier(_) => counts.push(0),
                Action::Read(_) | Action::Write(_) => *counts.last_mut().unwrap() += 1,
                _ => {}
            }
        }
        // Segment 2 is step-0 trailing; segment 20 is step-6 trailing.
        assert!(counts[2] > counts[20]);
    }

    #[test]
    fn block_lines_are_disjoint_between_blocks() {
        let mut a = Allocator::new();
        let m = Mat2::alloc(&mut a, 64, 64, 8);
        let b00: std::collections::HashSet<u64> = block_lines(m, 8, 0, 0).collect();
        let b01: std::collections::HashSet<u64> = block_lines(m, 8, 0, 1).collect();
        let b10: std::collections::HashSet<u64> = block_lines(m, 8, 1, 0).collect();
        assert!(b00.is_disjoint(&b01));
        assert!(b00.is_disjoint(&b10));
        assert_eq!(b00.len(), 8); // 8 rows x 8 doubles = 1 line per row
    }
}
