//! Synthetic parametric workload — not part of the paper's Table 2
//! suite, but invaluable for probing the machine: a dial-controlled
//! SPMD kernel with a configurable working set, access stride, write
//! fraction and compute density. The `reuse` experiment uses it to
//! measure victim-cache hit rate as a function of how far the working
//! set overflows memory + ring ("only Gauss and MG have working sets
//! that can (almost) fit in the combined memory/NWCache size").

use crate::layout::{block_partition, Allocator, Vec1};
use crate::{Action, AppBuild};
use nw_sim::Pcg32;

/// Parameters of the synthetic kernel.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Shared data footprint in bytes (page-rounded).
    pub data_bytes: u64,
    /// Element access stride in cache lines (1 = sequential sweep).
    pub stride_lines: u64,
    /// Fraction of accesses that are writes, in `[0, 1]`.
    pub write_frac: f64,
    /// Fraction of accesses redirected to uniformly random lines
    /// (0 = pure sweep; 1 = pure random).
    pub random_frac: f64,
    /// Full sweeps over the working set.
    pub iters: u32,
    /// Compute cycles charged per accessed line.
    pub compute_per_line: u32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            data_bytes: 2 * 1024 * 1024,
            stride_lines: 1,
            write_frac: 0.5,
            random_frac: 0.0,
            iters: 4,
            compute_per_line: 40,
        }
    }
}

/// Build the synthetic kernel for `nprocs` processors.
pub fn build(cfg: SynthConfig, nprocs: usize, seed: u64) -> AppBuild {
    assert!(nprocs > 0);
    assert!((0.0..=1.0).contains(&cfg.write_frac));
    assert!((0.0..=1.0).contains(&cfg.random_frac));
    assert!(cfg.stride_lines > 0);
    let mut alloc = Allocator::new();
    let lines_total = cfg.data_bytes.div_ceil(64);
    let arr = Vec1::alloc(&mut alloc, lines_total, 64); // one elem per line
    let data_bytes = alloc.allocated();

    let streams = (0..nprocs)
        .map(|p| {
            let (l0, l1) = block_partition(lines_total, nprocs, p);
            let mut rng = Pcg32::new(seed, 0x517 + p as u64);
            let iter = (0..cfg.iters).flat_map(move |it| {
                let mut local_rng = rng.split(it as u64);
                let body = (l0..l1)
                    .step_by(cfg.stride_lines as usize)
                    .flat_map(move |l| {
                        let target = if local_rng.gen_bool(cfg.random_frac) {
                            local_rng.gen_range(0, lines_total)
                        } else {
                            l
                        };
                        let line = arr.line_of(target);
                        let is_write = local_rng.gen_bool(cfg.write_frac);
                        let access = if is_write {
                            Action::Write(line)
                        } else {
                            Action::Read(line)
                        };
                        [access, Action::Compute(cfg.compute_per_line)]
                    });
                body.chain(std::iter::once(Action::Barrier(it)))
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "synth",
        data_bytes,
        streams,
        node_private: false,
    }
}

/// Build a node-private variant of the synthetic kernel: a pure block
/// sweep where processor `p` touches only its own page-aligned slice
/// of the array, so the [`AppBuild::node_private`] contract holds.
///
/// # Panics
/// Panics unless `random_frac == 0` (random accesses cross
/// partitions) and the line count splits into page-aligned per-proc
/// blocks (`lines_total % (nprocs * 64) == 0`, 64 lines per 4 KB
/// page), which makes every partition boundary a page boundary.
pub fn build_private(cfg: SynthConfig, nprocs: usize, seed: u64) -> AppBuild {
    assert!(
        cfg.random_frac == 0.0,
        "node-private synth cannot use random accesses"
    );
    let lines_total = cfg.data_bytes.div_ceil(64);
    assert!(
        lines_total.is_multiple_of(nprocs as u64 * 64),
        "node-private synth needs page-aligned per-proc blocks \
         ({lines_total} lines over {nprocs} procs)"
    );
    let mut b = build(cfg, nprocs, seed);
    b.node_private = true;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_page_rounded() {
        let b = build(
            SynthConfig {
                data_bytes: 5000,
                ..Default::default()
            },
            2,
            0,
        );
        assert_eq!(b.data_bytes, 8192);
    }

    #[test]
    fn pure_sweep_is_sequential() {
        let cfg = SynthConfig {
            data_bytes: 64 * 64, // 64 lines
            write_frac: 0.0,
            random_frac: 0.0,
            iters: 1,
            ..Default::default()
        };
        let b = build(cfg, 1, 0);
        let mut last = None;
        for a in b.streams.into_iter().next().unwrap() {
            if let Action::Read(l) = a {
                if let Some(prev) = last {
                    assert_eq!(l, prev + 1, "sweep must be sequential");
                }
                last = Some(l);
            }
        }
        assert!(last.is_some());
    }

    #[test]
    fn write_fraction_respected() {
        let cfg = SynthConfig {
            data_bytes: 1024 * 1024,
            write_frac: 0.25,
            iters: 2,
            ..Default::default()
        };
        let b = build(cfg, 1, 7);
        let (mut reads, mut writes) = (0u64, 0u64);
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Read(_) => reads += 1,
                Action::Write(_) => writes += 1,
                _ => {}
            }
        }
        let frac = writes as f64 / (reads + writes) as f64;
        assert!((frac - 0.25).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn random_accesses_scatter() {
        let cfg = SynthConfig {
            data_bytes: 1024 * 1024,
            random_frac: 1.0,
            iters: 1,
            ..Default::default()
        };
        let b = build(cfg, 1, 3);
        let mut sequential_pairs = 0;
        let mut total_pairs = 0;
        let mut last = None;
        for a in b.streams.into_iter().next().unwrap() {
            if let Action::Read(l) | Action::Write(l) = a {
                if let Some(prev) = last {
                    total_pairs += 1;
                    if l == prev + 1 {
                        sequential_pairs += 1;
                    }
                }
                last = Some(l);
            }
        }
        assert!(total_pairs > 100);
        assert!(
            sequential_pairs * 20 < total_pairs,
            "{sequential_pairs}/{total_pairs} pairs sequential under pure-random config"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::default();
        let a: Vec<Action> = build(cfg, 2, 9).streams.remove(0).take(1000).collect();
        let b: Vec<Action> = build(cfg, 2, 9).streams.remove(0).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn stride_skips_lines() {
        let cfg = SynthConfig {
            data_bytes: 64 * 64,
            stride_lines: 4,
            write_frac: 0.0,
            iters: 1,
            ..Default::default()
        };
        let b = build(cfg, 1, 0);
        let touched: Vec<u64> = b
            .streams
            .into_iter()
            .next()
            .unwrap()
            .filter_map(|a| match a {
                Action::Read(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(touched.len(), 16);
        assert!(touched.windows(2).all(|w| w[1] == w[0] + 4));
    }
}
