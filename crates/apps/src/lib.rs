//! # nw-apps — the out-of-core parallel application workload
//!
//! The seven programs of the paper's Table 2, reimplemented as
//! deterministic SPMD *reference generators*: each processor's kernel
//! is a lazy stream of [`Action`]s (compute bursts, cache-line reads
//! and writes into a shared virtual address space, and barriers). The
//! machine model in `nwcache-core` executes these streams against the
//! simulated memory hierarchy and VM system.
//!
//! | Program | Description | Input (full scale) | Data |
//! |---------|-------------|--------------------|------|
//! | Em3d    | Electromagnetic wave propagation | 32 K nodes, 5% remote, 10 iters | ~2.5 MB |
//! | FFT     | 1D Fast Fourier Transform | 64 K points | ~3.1 MB |
//! | Gauss   | Unblocked Gaussian elimination | 570 x 512 doubles | ~2.3 MB |
//! | LU      | Blocked LU factorization | 576 x 576 doubles | ~2.7 MB |
//! | Mg      | 3D Poisson multigrid | 32 x 32 x 64, 10 iters | ~2.4 MB |
//! | Radix   | Integer radix sort | 320 K keys, radix 1024 | ~2.6 MB |
//! | SOR     | Successive over-relaxation | 640 x 512 floats, 10 iters | ~2.6 MB |
//!
//! All applications `mmap` their data in the paper — i.e. they access
//! it through the virtual memory system, which is precisely what the
//! streams model. A `scale` parameter shrinks every input (for tests
//! and quick benches) while preserving the access-pattern shape.
//!
//! ```
//! use nw_apps::{build, Action, AppId};
//!
//! // Four processors run a small SOR; streams are lazy.
//! let app = build(AppId::Sor, 4, 0.05, 42);
//! assert_eq!(app.streams.len(), 4);
//! let first: Vec<Action> = app.streams.into_iter().next().unwrap().take(5).collect();
//! // A stencil update: three reads, compute, then the write.
//! assert!(matches!(first[0], Action::Read(_)));
//! assert!(matches!(first[3], Action::Compute(_)));
//! assert!(matches!(first[4], Action::Write(_)));
//! ```

pub mod em3d;
pub mod fft;
pub mod gauss;
pub mod layout;
pub mod lu;
pub mod mg;
pub mod radix;
pub mod sor;
pub mod synth;

/// A global cache-line index (byte address / 64).
pub type Line = u64;

/// Cache-line size in bytes, shared with `nw-memhier`.
pub const LINE_BYTES: u64 = 64;

/// One step of a processor's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Run for this many pcycles without touching shared memory.
    Compute(u32),
    /// Load from a shared cache line.
    Read(Line),
    /// Store to a shared cache line.
    Write(Line),
    /// Global barrier with a sequential id; every processor emits the
    /// same barrier ids in the same order.
    Barrier(u32),
}

/// A lazily generated per-processor action stream. Exhaustion means
/// the processor is done.
pub type ActionStream = Box<dyn Iterator<Item = Action> + Send>;

/// A fully built application instance: one stream per processor.
pub struct AppBuild {
    /// Application name (lower case, as in the paper's tables).
    pub name: &'static str,
    /// Total shared data footprint in bytes.
    pub data_bytes: u64,
    /// One action stream per processor.
    pub streams: Vec<ActionStream>,
    /// Contract: processor `p` only ever touches pages in its own
    /// block partition of the address space (no page or cache-line
    /// sharing between processors). Lets the simulator run same-time
    /// events from different partitions in parallel. Must only be set
    /// by builders that guarantee it — a mislabel silently breaks the
    /// parallel engine's bit-identical-to-serial property.
    pub node_private: bool,
}

impl AppBuild {
    /// Build from fully materialized per-processor action vectors.
    /// This is the replay hook: a recorded or generated trace becomes
    /// an ordinary application the machine model cannot distinguish
    /// from a hand-written kernel.
    pub fn from_actions(
        name: &'static str,
        data_bytes: u64,
        actions: Vec<Vec<Action>>,
    ) -> AppBuild {
        AppBuild {
            name,
            data_bytes,
            streams: actions
                .into_iter()
                .map(|v| Box::new(v.into_iter()) as ActionStream)
                .collect(),
            node_private: false,
        }
    }

    /// Drain every stream into concrete action vectors. This is the
    /// recorder hook: it captures the exact per-processor order the
    /// simulator would consume, at the `AppBuild`/`Action` boundary.
    pub fn into_actions(self) -> (&'static str, u64, Vec<Vec<Action>>) {
        (
            self.name,
            self.data_bytes,
            self.streams.into_iter().map(|s| s.collect()).collect(),
        )
    }
}

/// The seven applications of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Electromagnetic wave propagation on a bipartite graph.
    Em3d,
    /// 1D fast Fourier transform.
    Fft,
    /// Unblocked Gaussian elimination.
    Gauss,
    /// Blocked LU factorization.
    Lu,
    /// 3D Poisson solver using multigrid.
    Mg,
    /// Integer radix sort.
    Radix,
    /// Successive over-relaxation.
    Sor,
}

impl AppId {
    /// All applications, in the paper's table order.
    pub const ALL: [AppId; 7] = [
        AppId::Em3d,
        AppId::Fft,
        AppId::Gauss,
        AppId::Lu,
        AppId::Mg,
        AppId::Radix,
        AppId::Sor,
    ];

    /// Lower-case name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Em3d => "em3d",
            AppId::Fft => "fft",
            AppId::Gauss => "gauss",
            AppId::Lu => "lu",
            AppId::Mg => "mg",
            AppId::Radix => "radix",
            AppId::Sor => "sor",
        }
    }

    /// Parse a name (as printed by [`AppId::name`]).
    pub fn from_name(s: &str) -> Option<AppId> {
        AppId::ALL.iter().copied().find(|a| a.name() == s)
    }
}

/// Build application `app` for `nprocs` processors at `scale` (1.0 =
/// the paper's full input) with deterministic randomness from `seed`.
///
/// # Panics
/// Panics if `nprocs` is zero or `scale` is not in `(0, 1]`.
pub fn build(app: AppId, nprocs: usize, scale: f64, seed: u64) -> AppBuild {
    assert!(nprocs > 0, "need at least one processor");
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    match app {
        AppId::Em3d => em3d::build(nprocs, scale, seed),
        AppId::Fft => fft::build(nprocs, scale, seed),
        AppId::Gauss => gauss::build(nprocs, scale, seed),
        AppId::Lu => lu::build(nprocs, scale, seed),
        AppId::Mg => mg::build(nprocs, scale, seed),
        AppId::Radix => radix::build(nprocs, scale, seed),
        AppId::Sor => sor::build(nprocs, scale, seed),
    }
}

/// Scale an integer dimension, keeping at least `min`.
pub(crate) fn scaled(full: usize, scale: f64, min: usize) -> usize {
    ((full as f64 * scale) as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Drain a stream into per-kind counts plus the barrier sequence.
    fn summarize(s: ActionStream) -> (u64, u64, u64, Vec<u32>) {
        let (mut c, mut r, mut w) = (0u64, 0u64, 0u64);
        let mut barriers = Vec::new();
        for a in s {
            match a {
                Action::Compute(_) => c += 1,
                Action::Read(_) => r += 1,
                Action::Write(_) => w += 1,
                Action::Barrier(id) => barriers.push(id),
            }
        }
        (c, r, w, barriers)
    }

    #[test]
    fn recorder_hooks_roundtrip() {
        let (name, bytes, actions) = build(AppId::Gauss, 2, 0.05, 11).into_actions();
        let again = AppBuild::from_actions(name, bytes, actions.clone());
        assert_eq!(again.name, "gauss");
        assert_eq!(again.data_bytes, bytes);
        let replayed: Vec<Vec<Action>> =
            again.streams.into_iter().map(|s| s.collect()).collect();
        assert_eq!(replayed, actions);
    }

    #[test]
    fn names_roundtrip() {
        for app in AppId::ALL {
            assert_eq!(AppId::from_name(app.name()), Some(app));
        }
        assert_eq!(AppId::from_name("nope"), None);
    }

    #[test]
    fn all_apps_build_at_small_scale() {
        for app in AppId::ALL {
            let b = build(app, 4, 0.05, 42);
            assert_eq!(b.streams.len(), 4, "{}", b.name);
            assert!(b.data_bytes > 0, "{}", b.name);
        }
    }

    #[test]
    fn barrier_sequences_agree_across_procs() {
        for app in AppId::ALL {
            let b = build(app, 4, 0.05, 7);
            let mut seqs = Vec::new();
            for s in b.streams {
                let (_, _, _, barriers) = summarize(s);
                seqs.push(barriers);
            }
            for s in &seqs[1..] {
                assert_eq!(s, &seqs[0], "{}: procs disagree on barriers", app.name());
            }
            assert!(!seqs[0].is_empty(), "{}: no barriers", app.name());
            // Barrier ids strictly increase.
            for w in seqs[0].windows(2) {
                assert!(w[0] < w[1], "{}: barrier ids not increasing", app.name());
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        for app in AppId::ALL {
            let a = build(app, 2, 0.05, 99);
            let b = build(app, 2, 0.05, 99);
            for (sa, sb) in a.streams.into_iter().zip(b.streams) {
                let va: Vec<Action> = sa.take(5000).collect();
                let vb: Vec<Action> = sb.take(5000).collect();
                assert_eq!(va, vb, "{}", app.name());
            }
        }
    }

    #[test]
    fn every_app_reads_and_writes() {
        for app in AppId::ALL {
            let b = build(app, 2, 0.05, 1);
            let mut reads = 0;
            let mut writes = 0;
            for s in b.streams {
                let (_, r, w, _) = summarize(s);
                reads += r;
                writes += w;
            }
            assert!(reads > 0, "{} never reads", app.name());
            assert!(writes > 0, "{} never writes", app.name());
        }
    }

    #[test]
    fn accesses_stay_inside_data_footprint() {
        for app in AppId::ALL {
            let b = build(app, 3, 0.05, 5);
            let max_line = b.data_bytes.div_ceil(LINE_BYTES);
            for s in b.streams {
                for a in s {
                    if let Action::Read(l) | Action::Write(l) = a {
                        assert!(
                            l < max_line,
                            "{}: line {l} beyond footprint {max_line}",
                            b.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_scale_footprints_match_table2() {
        // Paper Table 2 data sizes in MB; allow 15% slack.
        let expect: HashMap<AppId, f64> = [
            (AppId::Em3d, 2.5),
            (AppId::Fft, 3.1),
            (AppId::Gauss, 2.3),
            (AppId::Lu, 2.7),
            (AppId::Mg, 2.4),
            (AppId::Radix, 2.6),
            (AppId::Sor, 2.6),
        ]
        .into_iter()
        .collect();
        for app in AppId::ALL {
            let b = build(app, 8, 1.0, 0);
            let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
            let want = expect[&app];
            assert!(
                (mb - want).abs() / want < 0.15,
                "{}: footprint {mb:.2} MB vs paper {want} MB",
                app.name()
            );
        }
    }

    #[test]
    fn different_procs_touch_different_lines_mostly() {
        // Partitioned apps: the write sets of different processors
        // must be (nearly) disjoint.
        for app in [AppId::Sor, AppId::Gauss, AppId::Fft] {
            let b = build(app, 4, 0.05, 3);
            let mut write_sets: Vec<std::collections::HashSet<Line>> = Vec::new();
            for s in b.streams {
                let mut set = std::collections::HashSet::new();
                for a in s {
                    if let Action::Write(l) = a {
                        set.insert(l);
                    }
                }
                write_sets.push(set);
            }
            for i in 0..write_sets.len() {
                for j in i + 1..write_sets.len() {
                    let inter = write_sets[i].intersection(&write_sets[j]).count();
                    let min = write_sets[i].len().min(write_sets[j].len()).max(1);
                    assert!(
                        inter * 10 < min,
                        "{}: procs {i}/{j} share {inter} written lines",
                        app.name()
                    );
                }
            }
        }
    }
}
