//! Mg — 3-D Poisson solver using multigrid (Table 2: 32 x 32 x 64
//! grid, 10 iterations, ~2.4 MB).
//!
//! V-cycles over a hierarchy of grids, each level holding solution,
//! right-hand-side, residual and scratch arrays. Grids are partitioned
//! by z-planes; every smoothing/residual sweep reads the two
//! neighbouring planes (nearest-neighbour sharing), while restriction
//! and prolongation couple adjacent levels. A barrier separates every
//! phase. Mg's working set almost fits in memory + NWCache, giving it
//! the second-highest victim hit rate of the suite (Table 7).

use crate::layout::{block_partition, Allocator, Vec1};
use crate::{Action, AppBuild};

const FULL_NX: u64 = 32;
const FULL_NY: u64 = 32;
const FULL_NZ: u64 = 64;
const ITERS: u32 = 10;
const COMPUTE_PER_LINE: u32 = 56;

/// One grid level's arrays and geometry.
#[derive(Debug, Clone, Copy)]
struct Level {
    u: Vec1,
    rhs: Vec1,
    res: Vec1,
    tmp: Vec1,
    nx: u64,
    ny: u64,
    nz: u64,
}

impl Level {
    fn alloc(a: &mut Allocator, nx: u64, ny: u64, nz: u64) -> Self {
        let cells = nx * ny * nz;
        Level {
            u: Vec1::alloc(a, cells, 8),
            rhs: Vec1::alloc(a, cells, 8),
            res: Vec1::alloc(a, cells, 8),
            tmp: Vec1::alloc(a, cells, 8),
            nx,
            ny,
            nz,
        }
    }

    /// Element index range of plane `z`.
    fn plane(&self, z: u64) -> (u64, u64) {
        let n = self.nx * self.ny;
        (z * n, (z + 1) * n)
    }
}

/// The per-iteration phase schedule (identical on every processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Jacobi smoothing half-sweep at `level`: reads `u`, writes the
    /// scratch grid (`to_tmp = true`) or reads scratch, writes `u`.
    Smooth(usize, bool),
    /// Residual computation at `level`.
    Residual(usize),
    /// Restrict residual of `level` to rhs of `level + 1`.
    Restrict(usize),
    /// Prolong u of `level + 1` onto u of `level`.
    Prolong(usize),
}

fn vcycle_plan(levels: usize) -> Vec<Phase> {
    let mut plan = Vec::new();
    for l in 0..levels - 1 {
        plan.push(Phase::Smooth(l, true));
        plan.push(Phase::Smooth(l, false));
        plan.push(Phase::Residual(l));
        plan.push(Phase::Restrict(l));
    }
    plan.push(Phase::Smooth(levels - 1, true));
    plan.push(Phase::Smooth(levels - 1, false));
    for l in (0..levels - 1).rev() {
        plan.push(Phase::Prolong(l));
        plan.push(Phase::Smooth(l, true));
        plan.push(Phase::Smooth(l, false));
    }
    plan
}

/// Actions of `phase` for processor `p`.
fn phase_actions(
    levels: &[Level],
    phase: Phase,
    p: usize,
    nprocs: usize,
) -> Box<dyn Iterator<Item = Action> + Send> {
    match phase {
        Phase::Smooth(l, to_tmp) => {
            let lv = levels[l];
            // Jacobi half-sweep: read one grid's 3 planes + rhs, write
            // the other grid.
            let (src, dst) = if to_tmp { (lv.u, lv.tmp) } else { (lv.tmp, lv.u) };
            let (z0, z1) = block_partition(lv.nz, nprocs, p);
            Box::new((z0..z1).flat_map(move |z| {
                let zm = z.saturating_sub(1);
                let zp = (z + 1).min(lv.nz - 1);
                let (e0, e1) = lv.plane(z);
                let (m0, _) = lv.plane(zm);
                let (p0, _) = lv.plane(zp);
                src.lines(e0, e1).enumerate().flat_map(move |(i, line)| {
                    let off = (i as u64) * src.elems_per_line();
                    [
                        Action::Read(src.line_of(m0 + off)),
                        Action::Read(line),
                        Action::Read(src.line_of(p0 + off)),
                        Action::Read(lv.rhs.line_of(e0 + off)),
                        Action::Compute(COMPUTE_PER_LINE),
                        Action::Write(dst.line_of(e0 + off)),
                    ]
                })
            }))
        }
        Phase::Residual(l) => {
            let lv = levels[l];
            let (z0, z1) = block_partition(lv.nz, nprocs, p);
            Box::new((z0..z1).flat_map(move |z| {
                let zm = z.saturating_sub(1);
                let zp = (z + 1).min(lv.nz - 1);
                let (e0, e1) = lv.plane(z);
                let (m0, _) = lv.plane(zm);
                let (p0, _) = lv.plane(zp);
                lv.u.lines(e0, e1).enumerate().flat_map(move |(i, line)| {
                    let off = (i as u64) * lv.u.elems_per_line();
                    [
                        Action::Read(lv.u.line_of(m0 + off)),
                        Action::Read(line),
                        Action::Read(lv.u.line_of(p0 + off)),
                        Action::Read(lv.rhs.line_of(e0 + off)),
                        Action::Compute(COMPUTE_PER_LINE),
                        Action::Write(lv.res.line_of(e0 + off)),
                    ]
                })
            }))
        }
        Phase::Restrict(l) => {
            let fine = levels[l];
            let coarse = levels[l + 1];
            let (cz0, cz1) = block_partition(coarse.nz, nprocs, p);
            Box::new((cz0..cz1).flat_map(move |cz| {
                let (c0, c1) = coarse.plane(cz);
                let (f0, _) = fine.plane((cz * 2).min(fine.nz - 1));
                coarse
                    .rhs
                    .lines(c0, c1)
                    .enumerate()
                    .flat_map(move |(i, cline)| {
                        // Each coarse line aggregates ~4 fine lines.
                        let foff = f0 + (i as u64) * 4 * fine.res.elems_per_line();
                        (0..4)
                            .map(move |k| {
                                let idx = (foff + k * fine.res.elems_per_line())
                                    .min(fine.res.len - 1);
                                Action::Read(fine.res.line_of(idx))
                            })
                            .chain([Action::Compute(32), Action::Write(cline)])
                    })
            }))
        }
        Phase::Prolong(l) => {
            let fine = levels[l];
            let coarse = levels[l + 1];
            let (z0, z1) = block_partition(fine.nz, nprocs, p);
            Box::new((z0..z1).flat_map(move |z| {
                let (e0, e1) = fine.plane(z);
                let (c0, _) = coarse.plane((z / 2).min(coarse.nz - 1));
                fine.u.lines(e0, e1).enumerate().flat_map(move |(i, fline)| {
                    let cidx = (c0 + (i as u64 / 4) * coarse.u.elems_per_line())
                        .min(coarse.u.len - 1);
                    [
                        Action::Read(coarse.u.line_of(cidx)),
                        Action::Read(fline),
                        Action::Compute(24),
                        Action::Write(fline),
                    ]
                })
            }))
        }
    }
}

/// Build the multigrid kernel streams.
pub fn build(nprocs: usize, scale: f64, _seed: u64) -> AppBuild {
    // Scale each dimension by the cube root of `scale`.
    let f = scale.cbrt();
    let dim = |full: u64| (((full as f64 * f) as u64) / 4).max(1) * 4;
    let (nx, ny, nz) = (dim(FULL_NX), dim(FULL_NY), dim(FULL_NZ));

    let mut alloc = Allocator::new();
    let mut levels = Vec::new();
    let (mut cx, mut cy, mut cz) = (nx, ny, nz);
    loop {
        levels.push(Level::alloc(&mut alloc, cx, cy, cz));
        if cx / 2 < 4 || cy / 2 < 4 || cz / 2 < 4 {
            break;
        }
        cx /= 2;
        cy /= 2;
        cz /= 2;
    }
    let data_bytes = alloc.allocated();
    let plan = vcycle_plan(levels.len());
    let plan_len = plan.len() as u32;

    let streams = (0..nprocs)
        .map(|p| {
            let levels = levels.clone();
            let plan = plan.clone();
            let iter = (0..ITERS).flat_map(move |it| {
                let levels = levels.clone();
                plan.clone()
                    .into_iter()
                    .enumerate()
                    .flat_map(move |(pi, phase)| {
                        phase_actions(&levels, phase, p, nprocs)
                            .chain(std::iter::once(Action::Barrier(it * plan_len + pi as u32)))
                    })
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "mg",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 2.2).abs() < 0.45, "{mb}");
    }

    #[test]
    fn plan_is_a_v_cycle() {
        let plan = vcycle_plan(3);
        assert_eq!(
            plan,
            vec![
                Phase::Smooth(0, true),
                Phase::Smooth(0, false),
                Phase::Residual(0),
                Phase::Restrict(0),
                Phase::Smooth(1, true),
                Phase::Smooth(1, false),
                Phase::Residual(1),
                Phase::Restrict(1),
                Phase::Smooth(2, true),
                Phase::Smooth(2, false),
                Phase::Prolong(1),
                Phase::Smooth(1, true),
                Phase::Smooth(1, false),
                Phase::Prolong(0),
                Phase::Smooth(0, true),
                Phase::Smooth(0, false),
            ]
        );
    }

    #[test]
    fn coarse_levels_touch_fewer_lines() {
        let mut a = Allocator::new();
        let l0 = Level::alloc(&mut a, 16, 16, 32);
        let l1 = Level::alloc(&mut a, 8, 8, 16);
        let levels = vec![l0, l1];
        let fine: Vec<Action> = phase_actions(&levels, Phase::Smooth(0, true), 0, 1).collect();
        let coarse: Vec<Action> = phase_actions(&levels, Phase::Smooth(1, true), 0, 1).collect();
        assert!(fine.len() > 4 * coarse.len());
    }

    #[test]
    fn smooth_writes_u_residual_writes_res() {
        let mut a = Allocator::new();
        let l0 = Level::alloc(&mut a, 8, 8, 8);
        let levels = vec![l0];
        // Smooth(_, false) writes u (the first region).
        for act in phase_actions(&levels, Phase::Smooth(0, false), 0, 1) {
            if let Action::Write(l) = act {
                assert!(l < l0.rhs.line_of(0), "smooth wrote outside u: {l}");
            }
        }
        // Smooth(_, true) writes tmp.
        for act in phase_actions(&levels, Phase::Smooth(0, true), 0, 1) {
            if let Action::Write(l) = act {
                assert!(l >= l0.tmp.line_of(0), "smooth wrote outside tmp: {l}");
            }
        }
        for act in phase_actions(&levels, Phase::Residual(0), 0, 1) {
            if let Action::Write(l) = act {
                assert!(
                    l >= l0.res.line_of(0) && l < l0.tmp.line_of(0),
                    "residual wrote outside res: {l}"
                );
            }
        }
    }

    #[test]
    fn barrier_count_is_iters_times_plan() {
        let b = build(2, 0.05, 0);
        let barriers = b
            .streams
            .into_iter()
            .next()
            .unwrap()
            .filter(|a| matches!(a, Action::Barrier(_)))
            .count();
        // scale 0.05 -> cbrt ~ 0.368 -> dims (8, 8, 20)... at least
        // two levels; plan length depends on levels, but must be a
        // multiple of ITERS.
        assert_eq!(barriers % ITERS as usize, 0);
        assert!(barriers >= ITERS as usize * 6);
    }
}
