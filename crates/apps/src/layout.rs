//! Shared-address-space layout helpers for the application kernels.
//!
//! Each application allocates its arrays from a single bump
//! [`Allocator`] starting at virtual byte 0; regions are page-aligned
//! so that distinct arrays never share a page. All structures are
//! `Copy` so kernel closures can capture them by value.

use crate::{Line, LINE_BYTES};

/// Page size used for alignment (matches the machine's 4 KB pages).
pub const PAGE_BYTES: u64 = 4096;

/// A page-aligned bump allocator for the virtual address space.
#[derive(Debug, Default)]
pub struct Allocator {
    next: u64,
}

impl Allocator {
    /// Start allocating at address zero.
    pub fn new() -> Self {
        Allocator { next: 0 }
    }

    /// Reserve `bytes` bytes, page aligned.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let base = self.next;
        let size = bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        self.next += size;
        Region { base, bytes: size }
    }

    /// Total bytes allocated so far (the data footprint).
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

/// A contiguous byte region of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u64,
    /// Size in bytes (page aligned).
    pub bytes: u64,
}

impl Region {
    /// The line containing byte offset `off` within the region.
    pub fn line_at(&self, off: u64) -> Line {
        debug_assert!(off < self.bytes, "offset {off} outside region");
        (self.base + off) / LINE_BYTES
    }

    /// Iterator over the distinct lines covering byte offsets
    /// `[from, to)` within the region.
    pub fn lines(&self, from: u64, to: u64) -> impl Iterator<Item = Line> {
        debug_assert!(from <= to && to <= self.bytes);
        let first = (self.base + from) / LINE_BYTES;
        let last = if to == from {
            first
        } else {
            (self.base + to - 1) / LINE_BYTES + 1
        };
        first..last
    }
}

/// A 1-D array of fixed-size elements inside a region.
#[derive(Debug, Clone, Copy)]
pub struct Vec1 {
    region: Region,
    /// Element size in bytes.
    pub elem: u64,
    /// Number of elements.
    pub len: u64,
}

impl Vec1 {
    /// Allocate a `len`-element array of `elem`-byte elements.
    pub fn alloc(a: &mut Allocator, len: u64, elem: u64) -> Self {
        Vec1 {
            region: a.alloc(len * elem),
            elem,
            len,
        }
    }

    /// Line containing element `i`.
    pub fn line_of(&self, i: u64) -> Line {
        debug_assert!(i < self.len);
        self.region.line_at(i * self.elem)
    }

    /// Distinct lines covering elements `[i0, i1)`.
    pub fn lines(&self, i0: u64, i1: u64) -> impl Iterator<Item = Line> {
        self.region.lines(i0 * self.elem, i1 * self.elem)
    }

    /// Elements per cache line.
    pub fn elems_per_line(&self) -> u64 {
        (LINE_BYTES / self.elem).max(1)
    }
}

/// A row-major 2-D matrix of fixed-size elements inside a region.
#[derive(Debug, Clone, Copy)]
pub struct Mat2 {
    region: Region,
    /// Element size in bytes.
    pub elem: u64,
    /// Rows.
    pub rows: u64,
    /// Columns.
    pub cols: u64,
    /// Row stride in bytes (>= cols * elem).
    pub stride: u64,
}

impl Mat2 {
    /// Allocate a `rows x cols` matrix of `elem`-byte elements,
    /// densely packed.
    pub fn alloc(a: &mut Allocator, rows: u64, cols: u64, elem: u64) -> Self {
        let stride = cols * elem;
        Mat2 {
            region: a.alloc(rows * stride),
            elem,
            rows,
            cols,
            stride,
        }
    }

    /// Allocate with each row padded to a cache-line multiple, so rows
    /// never share a line (avoids false sharing for cyclic row
    /// distributions).
    pub fn alloc_padded(a: &mut Allocator, rows: u64, cols: u64, elem: u64) -> Self {
        let stride = (cols * elem).div_ceil(LINE_BYTES) * LINE_BYTES;
        Mat2 {
            region: a.alloc(rows * stride),
            elem,
            rows,
            cols,
            stride,
        }
    }

    /// Line containing element `(r, c)`.
    pub fn line_of(&self, r: u64, c: u64) -> Line {
        debug_assert!(r < self.rows && c < self.cols);
        self.region.line_at(r * self.stride + c * self.elem)
    }

    /// Distinct lines covering row `r`, columns `[c0, c1)`.
    pub fn row_lines(&self, r: u64, c0: u64, c1: u64) -> impl Iterator<Item = Line> {
        debug_assert!(r < self.rows && c0 <= c1 && c1 <= self.cols);
        self.region
            .lines(r * self.stride + c0 * self.elem, r * self.stride + c1 * self.elem)
    }

    /// Elements per cache line.
    pub fn elems_per_line(&self) -> u64 {
        (LINE_BYTES / self.elem).max(1)
    }
}

/// Split `n` items over `nprocs` processors in contiguous blocks;
/// returns processor `p`'s `[start, end)`.
pub fn block_partition(n: u64, nprocs: usize, p: usize) -> (u64, u64) {
    let nprocs = nprocs as u64;
    let p = p as u64;
    let base = n / nprocs;
    let extra = n % nprocs;
    let start = p * base + p.min(extra);
    let len = base + if p < extra { 1 } else { 0 };
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_page_aligns() {
        let mut a = Allocator::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(5000);
        assert_eq!(r1.base, 0);
        assert_eq!(r1.bytes, 4096);
        assert_eq!(r2.base, 4096);
        assert_eq!(r2.bytes, 8192);
        assert_eq!(a.allocated(), 12288);
    }

    #[test]
    fn region_lines_cover_range() {
        let mut a = Allocator::new();
        let r = a.alloc(4096);
        let lines: Vec<Line> = r.lines(0, 64).collect();
        assert_eq!(lines, vec![0]);
        let lines: Vec<Line> = r.lines(0, 65).collect();
        assert_eq!(lines, vec![0, 1]);
        let lines: Vec<Line> = r.lines(60, 70).collect();
        assert_eq!(lines, vec![0, 1]);
        assert_eq!(r.lines(10, 10).count(), 0);
    }

    #[test]
    fn vec1_line_mapping() {
        let mut a = Allocator::new();
        let _pad = a.alloc(4096); // shift base to page 1
        let v = Vec1::alloc(&mut a, 100, 8);
        assert_eq!(v.line_of(0), 64); // page 1 starts at line 64
        assert_eq!(v.line_of(7), 64);
        assert_eq!(v.line_of(8), 65);
        assert_eq!(v.elems_per_line(), 8);
        assert_eq!(v.lines(0, 16).count(), 2);
    }

    #[test]
    fn mat2_row_lines() {
        let mut a = Allocator::new();
        let m = Mat2::alloc(&mut a, 10, 16, 8); // 16 doubles = 2 lines/row
        assert_eq!(m.row_lines(0, 0, 16).count(), 2);
        assert_eq!(m.row_lines(1, 0, 8).count(), 1);
        assert_eq!(m.line_of(1, 0), m.row_lines(1, 0, 1).next().unwrap());
        // Rows are contiguous: row 1 starts right after row 0.
        assert_eq!(m.line_of(1, 0), 2);
    }

    #[test]
    fn block_partition_covers_exactly() {
        for n in [0u64, 1, 7, 64, 570] {
            for nprocs in [1usize, 2, 3, 8] {
                let mut total = 0;
                let mut prev_end = 0;
                for p in 0..nprocs {
                    let (s, e) = block_partition(n, nprocs, p);
                    assert_eq!(s, prev_end, "n={n} nprocs={nprocs} p={p}");
                    assert!(e >= s);
                    total += e - s;
                    prev_end = e;
                }
                assert_eq!(total, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn block_partition_balanced() {
        for p in 0..8 {
            let (s, e) = block_partition(570, 8, p);
            assert!((e - s) == 71 || (e - s) == 72, "p={p}: {}", e - s);
        }
    }
}
