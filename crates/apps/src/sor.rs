//! SOR — successive over-relaxation (Table 2: 640 x 512 floats,
//! 10 iterations, ~2.6 MB).
//!
//! Jacobi-style 5-point stencil over two ping-pong grids, rows block-
//! partitioned across processors. Each iteration reads the three
//! neighbouring rows of the source grid and writes one row of the
//! destination grid; a barrier separates iterations. Sharing occurs at
//! partition-boundary rows.

use crate::layout::{block_partition, Allocator, Mat2};
use crate::{scaled, Action, AppBuild};

const FULL_ROWS: usize = 640;
const FULL_COLS: usize = 512;
const ITERS: u32 = 10;
/// Compute cycles per line of 16 floats (4 flops each).
const COMPUTE_PER_LINE: u32 = 48;

/// Build the SOR kernel streams.
pub fn build(nprocs: usize, scale: f64, _seed: u64) -> AppBuild {
    // Scale each dimension by sqrt(scale) so the footprint scales
    // linearly with `scale` (keeps scaled runs out-of-core).
    let f = scale.sqrt();
    let rows = scaled(FULL_ROWS, f, 8) as u64;
    let cols = scaled(FULL_COLS, f, 16) as u64;
    let mut alloc = Allocator::new();
    let g0 = Mat2::alloc(&mut alloc, rows, cols, 4);
    let g1 = Mat2::alloc(&mut alloc, rows, cols, 4);
    let data_bytes = alloc.allocated();

    let streams = (0..nprocs)
        .map(|p| {
            let (r0, r1) = block_partition(rows, nprocs, p);
            let iter = (0..ITERS).flat_map(move |it| {
                let (src, dst) = if it % 2 == 0 { (g0, g1) } else { (g1, g0) };
                let epl = src.elems_per_line();
                (r0..r1)
                    .flat_map(move |r| {
                        let up = r.saturating_sub(1);
                        let down = (r + 1).min(rows - 1);
                        (0..cols).step_by(epl as usize).flat_map(move |c| {
                            [
                                Action::Read(src.line_of(up, c)),
                                Action::Read(src.line_of(r, c)),
                                Action::Read(src.line_of(down, c)),
                                Action::Compute(COMPUTE_PER_LINE),
                                Action::Write(dst.line_of(r, c)),
                            ]
                        })
                    })
                    .chain(std::iter::once(Action::Barrier(it)))
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "sor",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 2.5).abs() < 0.2, "{mb}");
    }

    #[test]
    fn reads_three_rows_per_written_line() {
        let b = build(2, 0.05, 0);
        let actions: Vec<Action> = b.streams.into_iter().next().unwrap().collect();
        let reads = actions
            .iter()
            .filter(|a| matches!(a, Action::Read(_)))
            .count();
        let writes = actions
            .iter()
            .filter(|a| matches!(a, Action::Write(_)))
            .count();
        assert_eq!(reads, 3 * writes);
    }

    #[test]
    fn ten_barriers() {
        let b = build(1, 0.05, 0);
        let barriers = b.streams.into_iter().next().unwrap()
            .filter(|a| matches!(a, Action::Barrier(_)))
            .count();
        assert_eq!(barriers, 10);
    }

    #[test]
    fn grids_pingpong_between_iterations() {
        // Writes in iteration 0 go to grid 1, in iteration 1 to grid 0.
        let b = build(1, 0.05, 0);
        let mut it0_writes = Vec::new();
        let mut it1_writes = Vec::new();
        let mut iter_no = 0;
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Barrier(_) => iter_no += 1,
                Action::Write(l) if iter_no == 0 => it0_writes.push(l),
                Action::Write(l) if iter_no == 1 => it1_writes.push(l),
                _ => {}
            }
        }
        // Grid 0 precedes grid 1 in the address space, so iteration 1
        // (writing grid 0) uses strictly lower lines than iteration 0.
        assert!(it1_writes.iter().max().unwrap() < it0_writes.iter().min().unwrap());
    }
}
