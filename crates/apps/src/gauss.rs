//! Gauss — unblocked Gaussian elimination (Table 2: 570 x 512
//! doubles, ~2.3 MB).
//!
//! Rows are distributed cyclically across processors. For each
//! elimination step `k`, every processor reads the pivot row (heavy
//! read sharing — Gauss shows the highest NWCache victim-cache hit
//! rates in Table 7) and updates its own rows below the pivot over
//! columns `k..cols`. One barrier per elimination step.

use crate::layout::{Allocator, Mat2};
use crate::{scaled, Action, AppBuild};

const FULL_ROWS: usize = 570;
const FULL_COLS: usize = 512;
/// Compute cycles per updated line (8 doubles, multiply-subtract each).
const COMPUTE_PER_LINE: u32 = 24;

/// Build the Gaussian-elimination kernel streams.
pub fn build(nprocs: usize, scale: f64, _seed: u64) -> AppBuild {
    // sqrt-scaling per dimension: footprint scales linearly.
    let f = scale.sqrt();
    let rows = scaled(FULL_ROWS, f, 10) as u64;
    let cols = scaled(FULL_COLS, f, 8) as u64;
    let steps = (rows - 1).min(cols) as u32;
    let mut alloc = Allocator::new();
    let m = Mat2::alloc_padded(&mut alloc, rows, cols, 8);
    let data_bytes = alloc.allocated();

    let streams = (0..nprocs)
        .map(|p| {
            let np = nprocs as u64;
            let iter = (0..steps).flat_map(move |k| {
                let kk = k as u64;
                // Everyone reads the pivot row's active segment.
                let pivot = m
                    .row_lines(kk, kk, cols)
                    .map(Action::Read)
                    .chain(std::iter::once(Action::Compute(8)));
                // Update owned rows below the pivot.
                let updates = (kk + 1..rows).filter(move |r| r % np == p as u64).flat_map(
                    move |r| {
                        m.row_lines(r, kk, cols).flat_map(move |l| {
                            [
                                Action::Read(l),
                                Action::Compute(COMPUTE_PER_LINE),
                                Action::Write(l),
                            ]
                        })
                    },
                );
                pivot
                    .chain(updates)
                    .chain(std::iter::once(Action::Barrier(k)))
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "gauss",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 2.23).abs() < 0.2, "{mb}");
    }

    #[test]
    fn active_region_shrinks() {
        // Later steps touch fewer lines: compare step 0 vs last step.
        let b = build(1, 0.05, 0);
        let mut per_step = vec![0u64];
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Barrier(_) => per_step.push(0),
                Action::Read(_) | Action::Write(_) => *per_step.last_mut().unwrap() += 1,
                _ => {}
            }
        }
        per_step.pop(); // trailing empty
        assert!(per_step.first().unwrap() > per_step.last().unwrap());
    }

    #[test]
    fn every_proc_reads_every_pivot() {
        let b = build(4, 0.05, 0);
        let f = 0.05f64.sqrt();
        let rows = scaled(FULL_ROWS, f, 10) as u64;
        let cols = scaled(FULL_COLS, f, 8) as u64;
        let mut alloc = Allocator::new();
        let m = Mat2::alloc_padded(&mut alloc, rows, cols, 8);
        for s in b.streams {
            // First action of each step must read the pivot row start.
            let mut expect_pivot = true;
            let mut k = 0u64;
            for a in s {
                match a {
                    Action::Read(l) if expect_pivot => {
                        assert_eq!(l, m.line_of(k, k), "step {k}");
                        expect_pivot = false;
                    }
                    Action::Barrier(_) => {
                        k += 1;
                        expect_pivot = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn updates_only_own_rows() {
        let b = build(4, 0.05, 0);
        let f = 0.05f64.sqrt();
        let rows = scaled(FULL_ROWS, f, 10) as u64;
        let cols = scaled(FULL_COLS, f, 8) as u64;
        let mut alloc = Allocator::new();
        let m = Mat2::alloc_padded(&mut alloc, rows, cols, 8);
        let bytes_per_row = m.stride;
        for (p, s) in b.streams.into_iter().enumerate() {
            for a in s {
                if let Action::Write(l) = a {
                    // Rows are line-padded, so the row is recoverable
                    // from the line's first byte.
                    let byte = l * 64;
                    let row = byte / bytes_per_row;
                    assert_eq!(row % 4, p as u64, "proc {p} wrote row {row}");
                    let _ = m;
                }
            }
        }
    }
}
