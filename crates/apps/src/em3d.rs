//! Em3d — electromagnetic wave propagation (Table 2: 32 K nodes, 5%
//! remote dependencies, 10 iterations, ~2.5 MB).
//!
//! A bipartite graph of E-field and H-field nodes. Each iteration
//! first updates every E node from its H-node dependencies, then every
//! H node from its E-node dependencies, with a barrier between the two
//! half-steps. 95% of a node's dependencies fall inside the owning
//! processor's partition; 5% are uniformly random remote nodes — the
//! irregular sharing that gives Em3d the lowest victim-cache hit rate
//! of the suite (Table 7).

use crate::layout::{block_partition, Allocator, Vec1};
use crate::{scaled, Action, AppBuild};
use nw_sim::Pcg32;
use std::sync::Arc;

const FULL_NODES: usize = 32 * 1024;
const DEGREE: usize = 10;
const REMOTE_FRAC: f64 = 0.05;
const ITERS: u32 = 10;
const COMPUTE_PER_NODE: u32 = 48;

/// Build the dependency lists: for each of the `n` nodes (E nodes are
/// `0..n/2`, H nodes are `n/2..n`), `DEGREE` targets in the opposite
/// half, 95% within the same partition slot.
fn build_graph(n: u64, nprocs: usize, rng: &mut Pcg32) -> Vec<u32> {
    let half = n / 2;
    let mut deps = Vec::with_capacity((n as usize) * DEGREE);
    for node in 0..n {
        let is_e = node < half;
        let idx = if is_e { node } else { node - half };
        // Partition of this node within its half.
        let p = (0..nprocs)
            .find(|&q| {
                let (s, e) = block_partition(half, nprocs, q);
                idx >= s && idx < e
            })
            .expect("partition covers half");
        let (ps, pe) = block_partition(half, nprocs, p);
        for _ in 0..DEGREE {
            let target_idx = if rng.gen_f64() < REMOTE_FRAC {
                rng.gen_range(0, half)
            } else {
                rng.gen_range(ps, pe)
            };
            // Dependencies point to the opposite half.
            let target = if is_e { half + target_idx } else { target_idx };
            deps.push(target as u32);
        }
    }
    deps
}

/// Build the Em3d kernel streams.
pub fn build(nprocs: usize, scale: f64, seed: u64) -> AppBuild {
    // Multiple of 16 so the two halves never share a cache line.
    let n = (scaled(FULL_NODES, scale, 256) as u64 / 16) * 16;
    let half = n / 2;
    let mut rng = Pcg32::new(seed, 0xE3D);
    let deps = Arc::new(build_graph(n, nprocs, &mut rng));

    let mut alloc = Allocator::new();
    let values = Vec1::alloc(&mut alloc, n, 8);
    let coeffs = Vec1::alloc(&mut alloc, n, 8);
    // Per-node field state (3 components), rewritten every update --
    // this is the bulk of Em3d's dirty working set.
    let fields = Vec1::alloc(&mut alloc, n * 3, 8);
    let adj = Vec1::alloc(&mut alloc, n * DEGREE as u64, 4);
    let data_bytes = alloc.allocated();

    let streams = (0..nprocs)
        .map(|p| {
            let (e0, e1) = block_partition(half, nprocs, p);
            let deps = Arc::clone(&deps);
            let iter = (0..ITERS).flat_map(move |it| {
                let deps_e = Arc::clone(&deps);
                let deps_h = Arc::clone(&deps);
                // E half-step: update my E nodes from H values.
                let e_phase = (e0..e1)
                    .flat_map(move |i| {
                        let deps = Arc::clone(&deps_e);
                        let first = i * DEGREE as u64;
                        std::iter::once(Action::Read(adj.line_of(first)))
                            .chain((0..DEGREE).map(move |d| {
                                Action::Read(values.line_of(deps[(first + d as u64) as usize] as u64))
                            }))
                            .chain([
                                Action::Read(coeffs.line_of(i)),
                                Action::Compute(COMPUTE_PER_NODE),
                                Action::Write(values.line_of(i)),
                                Action::Write(fields.line_of(i * 3)),
                            ])
                    })
                    .chain(std::iter::once(Action::Barrier(2 * it)));
                // H half-step: update my H nodes from E values.
                let h_phase = (e0..e1)
                    .flat_map(move |i| {
                        let deps = Arc::clone(&deps_h);
                        let node = half + i;
                        let first = node * DEGREE as u64;
                        std::iter::once(Action::Read(adj.line_of(first)))
                            .chain((0..DEGREE).map(move |d| {
                                Action::Read(values.line_of(deps[(first + d as u64) as usize] as u64))
                            }))
                            .chain([
                                Action::Read(coeffs.line_of(node)),
                                Action::Compute(COMPUTE_PER_NODE),
                                Action::Write(values.line_of(node)),
                                Action::Write(fields.line_of(node * 3)),
                            ])
                    })
                    .chain(std::iter::once(Action::Barrier(2 * it + 1)));
                e_phase.chain(h_phase)
            });
            Box::new(iter) as crate::ActionStream
        })
        .collect();

    AppBuild {
        name: "em3d",
        data_bytes,
        streams,
        node_private: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_paper() {
        let b = build(8, 1.0, 0);
        let mb = b.data_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 2.5).abs() < 0.25, "{mb}");
    }

    #[test]
    fn graph_dependencies_cross_halves() {
        let mut rng = Pcg32::new(0, 1);
        let n = 512;
        let deps = build_graph(n, 4, &mut rng);
        assert_eq!(deps.len(), n as usize * DEGREE);
        for (i, &d) in deps.iter().enumerate() {
            let node = (i / DEGREE) as u64;
            if node < n / 2 {
                assert!((d as u64) >= n / 2, "E node {node} depends on E node {d}");
            } else {
                assert!((d as u64) < n / 2, "H node {node} depends on H node {d}");
            }
        }
    }

    #[test]
    fn remote_fraction_is_about_five_percent() {
        let mut rng = Pcg32::new(3, 9);
        let n = 8192u64;
        let nprocs = 4;
        let deps = build_graph(n, nprocs, &mut rng);
        let half = n / 2;
        let mut remote = 0usize;
        for (i, &d) in deps.iter().enumerate() {
            let node = (i / DEGREE) as u64;
            let idx = if node < half { node } else { node - half };
            let target_idx = if (d as u64) < half { d as u64 } else { d as u64 - half };
            let my_part = (0..nprocs)
                .find(|&q| {
                    let (s, e) = block_partition(half, nprocs, q);
                    idx >= s && idx < e
                })
                .unwrap();
            let (s, e) = block_partition(half, nprocs, my_part);
            if target_idx < s || target_idx >= e {
                remote += 1;
            }
        }
        let frac = remote as f64 / deps.len() as f64;
        // 5% requested, but a random "remote" draw can land locally;
        // expected observed fraction ~ 0.05 * (1 - 1/nprocs) = 3.75%.
        assert!(frac > 0.02 && frac < 0.06, "remote fraction {frac}");
    }

    #[test]
    fn twenty_barriers() {
        let b = build(2, 0.02, 0);
        let count = b
            .streams
            .into_iter()
            .next()
            .unwrap()
            .filter(|a| matches!(a, Action::Barrier(_)))
            .count();
        assert_eq!(count, 20); // 10 iters x 2 half-steps
    }

    #[test]
    fn e_phase_writes_low_half_h_phase_high_half() {
        let b = build(1, 0.02, 0);
        let n = (scaled(FULL_NODES, 0.02, 256) as u64 / 16) * 16;
        let half_boundary_line = {
            // values array starts at byte 0; E nodes end at half*8.
            (n / 2) * 8 / 64
        };
        // Only check writes inside the values array (the first
        // region); the per-node field-state writes land beyond it.
        let values_end_line = n * 8 / 64;
        let mut phase = 0;
        for a in b.streams.into_iter().next().unwrap() {
            match a {
                Action::Barrier(_) => phase += 1,
                Action::Write(l) if l < values_end_line => {
                    if phase % 2 == 0 {
                        assert!(l < half_boundary_line, "E phase wrote line {l}");
                    } else {
                        assert!(l >= half_boundary_line, "H phase wrote line {l}");
                    }
                }
                _ => {}
            }
        }
    }
}
