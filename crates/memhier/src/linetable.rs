//! Open-addressing hash table mapping cache lines to packed state.
//!
//! The directory consults one entry per coherence transaction — every
//! L2 miss in the machine lands here — so the container is built for
//! probe speed rather than ordered iteration:
//!
//! * **Power-of-two capacity** with Fibonacci hashing: the slot index
//!   is the top bits of `line * 2^64/phi`, so clustered line indices
//!   (lines of a page are consecutive integers) spread evenly without
//!   a modulo.
//! * **Fingerprint probing**: a parallel `u8` tag array holds 7 hash
//!   bits per occupied slot (high bit set marks occupancy, `0` is
//!   empty). A probe touches only the dense tag bytes until the
//!   fingerprint matches, so misses rarely dereference the key array.
//! * **Linear probing with backward-shift deletion**: removals shift
//!   displaced entries back instead of leaving tombstones, so probe
//!   lengths stay short over any workload mix and lookups never scan
//!   dead slots.
//!
//! Iteration order is unspecified (slot order); callers that need
//! deterministic order — the directory's page purge — iterate the key
//! range themselves, which is cheap because lines of a page are 64
//! consecutive integers.

use crate::Line;

/// `2^64 / phi`, the Fibonacci hashing multiplier.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tag byte for an empty slot.
const EMPTY: u8 = 0;

/// Initial capacity on first insert (power of two).
const MIN_CAP: usize = 64;

#[inline]
fn hash(line: Line) -> u64 {
    line.wrapping_mul(HASH_MUL)
}

/// An open-addressing map from [`Line`] to a caller-packed `u64`.
///
/// Values are opaque to the table; the directory packs its MSI state
/// into them. The empty table allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct LineTable {
    /// Occupancy + 7-bit fingerprints, one byte per slot.
    tags: Vec<u8>,
    keys: Vec<Line>,
    vals: Vec<u64>,
    len: usize,
}

impl LineTable {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.tags.len() - 1
    }

    #[inline]
    fn ideal_slot(&self, line: Line) -> usize {
        // Top bits of the hash, folded to the table size.
        (hash(line) >> (64 - self.tags.len().trailing_zeros())) as usize
    }

    #[inline]
    fn fingerprint(line: Line) -> u8 {
        // Low hash bits — independent of the (top) slot-index bits —
        // with the occupancy bit forced on.
        (hash(line) as u8 & 0x7F) | 0x80
    }

    /// Slot of `line`, if present.
    #[inline]
    fn find_slot(&self, line: Line) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let fp = Self::fingerprint(line);
        let mut i = self.ideal_slot(line);
        loop {
            let tag = self.tags[i];
            if tag == EMPTY {
                return None;
            }
            if tag == fp && self.keys[i] == line {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Value of `line`, if present.
    #[inline]
    pub fn get(&self, line: Line) -> Option<u64> {
        self.find_slot(line).map(|i| self.vals[i])
    }

    /// Mutable value of `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: Line) -> Option<&mut u64> {
        self.find_slot(line).map(|i| &mut self.vals[i])
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn insert(&mut self, line: Line, val: u64) -> Option<u64> {
        if self.tags.is_empty() || self.len + 1 > self.tags.len() / 8 * 7 {
            self.grow();
        }
        let mask = self.mask();
        let fp = Self::fingerprint(line);
        let mut i = self.ideal_slot(line);
        loop {
            let tag = self.tags[i];
            if tag == EMPTY {
                self.tags[i] = fp;
                self.keys[i] = line;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            if tag == fp && self.keys[i] == line {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove `line`, returning its value if present. Displaced
    /// entries are shifted back over the hole (no tombstones).
    pub fn remove(&mut self, line: Line) -> Option<u64> {
        let slot = self.find_slot(line)?;
        let val = self.vals[slot];
        let mask = self.mask();
        let mut hole = slot;
        let mut j = slot;
        loop {
            j = (j + 1) & mask;
            if self.tags[j] == EMPTY {
                break;
            }
            // The entry at `j` may fill the hole iff doing so does not
            // move it before its ideal slot: its probe distance at `j`
            // must cover the distance back to the hole.
            let ideal = self.ideal_slot(self.keys[j]);
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.tags[hole] = self.tags[j];
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.tags[hole] = EMPTY;
        self.len -= 1;
        Some(val)
    }

    /// Visit every entry in unspecified (slot) order.
    pub fn iter(&self) -> impl Iterator<Item = (Line, u64)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != EMPTY)
            .map(|(i, _)| (self.keys[i], self.vals[i]))
    }

    /// Double the capacity (or allocate the first slots) and rehash.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.tags.len() * 2).max(MIN_CAP);
        let old_tags = std::mem::replace(&mut self.tags, vec![EMPTY; new_cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        let mask = new_cap - 1;
        for (i, tag) in old_tags.into_iter().enumerate() {
            if tag == EMPTY {
                continue;
            }
            let mut j = self.ideal_slot(old_keys[i]);
            while self.tags[j] != EMPTY {
                j = (j + 1) & mask;
            }
            self.tags[j] = tag;
            self.keys[j] = old_keys[i];
            self.vals[j] = old_vals[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_allocates_nothing() {
        let t = LineTable::new();
        assert_eq!(t.capacity(), 0);
        assert_eq!(t.get(0), None);
        assert!(t.is_empty());
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = LineTable::new();
        assert_eq!(t.insert(42, 7), None);
        assert_eq!(t.get(42), Some(7));
        assert_eq!(t.insert(42, 9), Some(7));
        assert_eq!(t.get(42), Some(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = LineTable::new();
        t.insert(5, 1);
        *t.get_mut(5).unwrap() |= 0b100;
        assert_eq!(t.get(5), Some(0b101));
        assert_eq!(t.get_mut(6), None);
    }

    #[test]
    fn remove_shifts_displaced_entries_back() {
        let mut t = LineTable::new();
        // Consecutive lines of one page: exactly the directory's load.
        for l in 0..64u64 {
            t.insert(l, l + 1);
        }
        // Remove odds, then every even must still be reachable.
        for l in (1..64u64).step_by(2) {
            assert_eq!(t.remove(l), Some(l + 1));
        }
        for l in (0..64u64).step_by(2) {
            assert_eq!(t.get(l), Some(l + 1), "line {l} lost after removals");
        }
        assert_eq!(t.len(), 32);
        assert_eq!(t.remove(999), None);
    }

    #[test]
    fn grows_past_load_factor() {
        let mut t = LineTable::new();
        for l in 0..10_000u64 {
            t.insert(l * 64, l); // page-stride keys stress the hash
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.capacity().is_power_of_two());
        for l in 0..10_000u64 {
            assert_eq!(t.get(l * 64), Some(l));
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut t = LineTable::new();
        for l in 0..100u64 {
            t.insert(l * 3, l);
        }
        let mut seen: Vec<_> = t.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 100);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!((k, v), (i as u64 * 3, i as u64));
        }
    }
}
