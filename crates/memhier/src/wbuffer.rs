//! Coalescing write buffer ("WB" in Figure 1).
//!
//! Under release consistency the processor retires stores into a small
//! coalescing write buffer and continues; the buffer drains to the
//! memory system in the background. A store to a line already buffered
//! coalesces for free; a store to a full buffer stalls the processor
//! until the head entry drains (the machine model charges that stall).

use crate::Line;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use std::collections::VecDeque;

/// Result of inserting a store into the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbOutcome {
    /// The line was already buffered; store merged for free.
    Coalesced,
    /// A new entry was allocated.
    Queued,
    /// The buffer is full: the processor must stall until an entry
    /// drains, then retry.
    Full,
}

/// A FIFO coalescing write buffer of cache-line granularity entries.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    entries: VecDeque<Line>,
    coalesced: u64,
    queued: u64,
    full_stalls: u64,
}

impl WriteBuffer {
    /// A write buffer with room for `capacity` distinct lines.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs capacity");
        WriteBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            coalesced: 0,
            queued: 0,
            full_stalls: 0,
        }
    }

    /// Insert a store to `line`.
    pub fn insert(&mut self, line: Line) -> WbOutcome {
        if self.entries.contains(&line) {
            self.coalesced += 1;
            return WbOutcome::Coalesced;
        }
        if self.entries.len() == self.capacity {
            self.full_stalls += 1;
            return WbOutcome::Full;
        }
        self.entries.push_back(line);
        self.queued += 1;
        WbOutcome::Queued
    }

    /// Drain the oldest entry, returning its line.
    pub fn drain_one(&mut self) -> Option<Line> {
        self.entries.pop_front()
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no new line can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Stores merged into existing entries.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// New entries allocated.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Times a store found the buffer full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Serialize the FIFO contents (in drain order) and statistics.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.entries.len());
        for &line in &self.entries {
            w.u64(line);
        }
        w.u64(self.coalesced);
        w.u64(self.queued);
        w.u64(self.full_stalls);
    }

    /// Overlay state saved by [`WriteBuffer::ckpt_save`] onto a buffer
    /// of the same capacity.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n > self.capacity {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("write buffer holds {n} lines, capacity is {}", self.capacity),
            });
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push_back(r.u64()?);
        }
        self.coalesced = r.u64()?;
        self.queued = r.u64()?;
        self.full_stalls = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_and_coalesce() {
        let mut wb = WriteBuffer::new(4);
        assert_eq!(wb.insert(1), WbOutcome::Queued);
        assert_eq!(wb.insert(1), WbOutcome::Coalesced);
        assert_eq!(wb.insert(2), WbOutcome::Queued);
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.coalesced(), 1);
        assert_eq!(wb.queued(), 2);
    }

    #[test]
    fn full_buffer_reports_stall() {
        let mut wb = WriteBuffer::new(2);
        wb.insert(1);
        wb.insert(2);
        assert!(wb.is_full());
        assert_eq!(wb.insert(3), WbOutcome::Full);
        assert_eq!(wb.full_stalls(), 1);
        // Coalescing still works when full.
        assert_eq!(wb.insert(2), WbOutcome::Coalesced);
    }

    #[test]
    fn drains_fifo() {
        let mut wb = WriteBuffer::new(4);
        wb.insert(10);
        wb.insert(20);
        wb.insert(30);
        assert_eq!(wb.drain_one(), Some(10));
        assert_eq!(wb.drain_one(), Some(20));
        assert_eq!(wb.drain_one(), Some(30));
        assert_eq!(wb.drain_one(), None);
        assert!(wb.is_empty());
    }

    #[test]
    fn drain_frees_capacity() {
        let mut wb = WriteBuffer::new(1);
        wb.insert(1);
        assert_eq!(wb.insert(2), WbOutcome::Full);
        wb.drain_one();
        assert_eq!(wb.insert(2), WbOutcome::Queued);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        WriteBuffer::new(0);
    }
}
