//! Per-node memory bus model.
//!
//! Every node's local memory ("LM" in Figure 1) sits behind a shared
//! memory bus (Table 1: 800 MB/s). All of the node's traffic crosses
//! it: local cache fills, incoming/outgoing network transfers, page
//! transfers to and from the I/O bus. The NWCache's contention benefit
//! partly comes from removing swap-out and ring-hit page traffic from
//! these buses.

use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::{Bandwidth, Grant, Resource, Time};

/// A node memory bus: a FIFO resource plus a fixed per-transaction
/// overhead and a bandwidth for payload serialization.
#[derive(Debug)]
pub struct MemoryBus {
    bw: Bandwidth,
    overhead: Time,
    res: Resource,
    bytes: u64,
}

impl MemoryBus {
    /// A bus with payload bandwidth `bw` and `overhead` cycles of
    /// arbitration/setup per transaction.
    pub fn new(name: &'static str, bw: Bandwidth, overhead: Time) -> Self {
        MemoryBus {
            bw,
            overhead,
            res: Resource::new(name),
            bytes: 0,
        }
    }

    /// The paper's 800 MB/s memory bus with a small arbitration cost.
    pub fn paper_memory_bus() -> Self {
        MemoryBus::new("mem-bus", Bandwidth::from_mbytes_per_sec(800), 8)
    }

    /// The paper's 300 MB/s I/O bus.
    pub fn paper_io_bus() -> Self {
        MemoryBus::new("io-bus", Bandwidth::from_mbytes_per_sec(300), 8)
    }

    /// Occupy the bus for a `bytes`-byte transfer starting no earlier
    /// than `now`; returns the granted interval.
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Grant {
        self.bytes += bytes;
        let dur = self.overhead + self.bw.transfer_cycles(bytes);
        self.res.acquire(now, dur)
    }

    /// Cycles a transfer of `bytes` would occupy (no contention).
    pub fn occupancy(&self, bytes: u64) -> Time {
        self.overhead + self.bw.transfer_cycles(bytes)
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Underlying resource (for utilization reports).
    pub fn resource(&self) -> &Resource {
        &self.res
    }

    /// Serialize the dynamic state (bandwidth/overhead are config).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        self.res.ckpt_save(w);
        w.u64(self.bytes);
    }

    /// Overlay state saved by [`MemoryBus::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.res.ckpt_restore(r)?;
        self.bytes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_timing() {
        let mut bus = MemoryBus::paper_memory_bus();
        // 4KB at 4 B/cycle = 1024 cycles + 8 overhead.
        let g = bus.transfer(0, 4096);
        assert_eq!(g.start, 0);
        assert_eq!(g.end, 1032);
        assert_eq!(bus.occupancy(4096), 1032);
    }

    #[test]
    fn io_bus_slower() {
        let mut bus = MemoryBus::paper_io_bus();
        let g = bus.transfer(0, 4096);
        assert_eq!(g.end, 2731 + 8);
    }

    #[test]
    fn contention_queues() {
        let mut bus = MemoryBus::paper_memory_bus();
        let g1 = bus.transfer(0, 4096);
        let g2 = bus.transfer(10, 64);
        assert_eq!(g2.start, g1.end);
        assert_eq!(bus.bytes_moved(), 4160);
        assert!(bus.resource().wait_cycles() > 0);
    }

    #[test]
    fn line_transfer_is_cheap() {
        let bus = MemoryBus::paper_memory_bus();
        assert_eq!(bus.occupancy(64), 8 + 16);
    }
}
