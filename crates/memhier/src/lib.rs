//! # nw-memhier — node memory hierarchy and coherence substrate
//!
//! Per-node hardware from Figure 1 of the paper: TLB, first- and
//! second-level caches, a coalescing write buffer, and the local memory
//! bus — plus the machine-wide directory used to keep caches coherent
//! (the paper's base machine is DASH-like, i.e. directory-based).
//!
//! These components are *timing models*: they track tags, states and
//! statistics, while the actual latencies/contention are charged by the
//! machine model in `nwcache-core` using the outcomes returned here.
//!
//! Addresses are cache-line indices (`Line`): the global byte address
//! divided by the line size. Page-level helpers convert between lines
//! and virtual page numbers.
//!
//! ```
//! use nw_memhier::{Cache, CacheConfig, Directory, LookupResult, ReadOutcome};
//!
//! let mut l1 = Cache::new(CacheConfig::l1_default());
//! let mut dir = Directory::new();
//!
//! // Node 3 reads a line: L1 miss, directory says fetch from memory.
//! assert_eq!(l1.access(42, false), LookupResult::Miss);
//! assert_eq!(dir.read(42, 3), ReadOutcome::FromMemory);
//! l1.fill(42, false);
//! assert_eq!(l1.access(42, false), LookupResult::Hit);
//!
//! // Node 5 writes the same line: node 3 must be invalidated.
//! let w = dir.write(42, 5);
//! assert_eq!(w.invalidate, 1 << 3);
//! ```

pub mod bus;
pub mod cache;
pub mod directory;
pub mod linetable;
pub mod tlb;
pub mod wbuffer;

pub use bus::MemoryBus;
pub use cache::{Cache, CacheConfig, Evicted, LookupResult};
pub use directory::{Directory, ReadOutcome, WriteOutcome};
pub use linetable::LineTable;
pub use tlb::Tlb;
pub use wbuffer::{WbOutcome, WriteBuffer};

/// A global cache-line index (byte address / line size).
pub type Line = u64;

/// A virtual page number.
pub type Vpn = u64;

/// Cache line size in bytes used across the machine (64 B).
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes (paper Table 1: 4 KB).
pub const PAGE_BYTES: u64 = 4096;

/// Cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// The page containing a line.
pub const fn page_of_line(line: Line) -> Vpn {
    line / LINES_PER_PAGE
}

/// The first line of a page.
pub const fn first_line_of_page(vpn: Vpn) -> Line {
    vpn * LINES_PER_PAGE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_page_mapping() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(page_of_line(0), 0);
        assert_eq!(page_of_line(63), 0);
        assert_eq!(page_of_line(64), 1);
        assert_eq!(first_line_of_page(3), 192);
        assert_eq!(page_of_line(first_line_of_page(17)), 17);
    }
}
