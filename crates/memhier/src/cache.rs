//! Set-associative processor caches (L1/L2).
//!
//! Tag/state arrays with true-LRU replacement inside each set. The
//! cache does not hold data — it is a timing/state model. Lines carry a
//! dirty bit; coherence state (shared vs exclusive) is tracked at the
//! machine-wide [`crate::Directory`], so the per-node cache only needs
//! presence + dirtiness.

use crate::{first_line_of_page, Line, Vpn, LINES_PER_PAGE};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// A 16 KB direct-mapped L1 (modest 1999-era on-chip cache).
    pub fn l1_default() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            assoc: 1,
            line_bytes: crate::LINE_BYTES,
        }
    }

    /// A 128 KB 4-way L2.
    pub fn l2_default() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            assoc: 4,
            line_bytes: crate::LINE_BYTES,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.assoc;
        assert!(sets > 0, "cache too small for its associativity");
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        sets
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: Line,
    dirty: bool,
    last_use: u64,
    valid: bool,
}

impl Way {
    const EMPTY: Way = Way {
        line: 0,
        dirty: false,
        last_use: 0,
        valid: false,
    };
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line address.
    pub line: Line,
    /// Whether it held modified data (must be written back).
    pub dirty: bool,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present; LRU refreshed (and dirtied on writes).
    Hit,
    /// Line absent; caller must fetch and then [`Cache::fill`].
    Miss,
}

/// A set-associative cache tag/state array.
///
/// Ways live in one contiguous `Vec<Way>`, stride-indexed by set
/// (PR 3 hot-path layout; see DESIGN.md §11): set `s` owns
/// `ways[s * assoc .. (s + 1) * assoc]`. A probe touches one small
/// contiguous slice instead of chasing a per-set heap allocation, and
/// way order within the slice is exactly the old inner-`Vec` order,
/// so LRU ties and purge output are unchanged.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    set_mask: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// An empty cache with geometry `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = cfg.num_sets();
        Cache {
            cfg,
            ways: vec![Way::EMPTY; n * cfg.assoc],
            set_mask: n as u64 - 1,
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn set_of(&self, line: Line) -> usize {
        (line & self.set_mask) as usize
    }

    /// The ways of the set holding `line`, as a contiguous slice.
    #[inline]
    fn set(&self, line: Line) -> &[Way] {
        let base = self.set_of(line) * self.cfg.assoc;
        &self.ways[base..base + self.cfg.assoc]
    }

    /// Mutable variant of [`set`](Self::set).
    #[inline]
    fn set_mut(&mut self, line: Line) -> &mut [Way] {
        let base = self.set_of(line) * self.cfg.assoc;
        &mut self.ways[base..base + self.cfg.assoc]
    }

    /// Probe for `line`; on a hit refresh LRU and set the dirty bit if
    /// `is_write`.
    pub fn access(&mut self, line: Line, is_write: bool) -> LookupResult {
        self.clock += 1;
        let clock = self.clock;
        for way in self.set_mut(line) {
            if way.valid && way.line == line {
                way.last_use = clock;
                if is_write {
                    way.dirty = true;
                }
                self.hits += 1;
                return LookupResult::Hit;
            }
        }
        self.misses += 1;
        LookupResult::Miss
    }

    /// Insert `line` after a miss was serviced, returning any evicted
    /// victim. `is_write` marks the incoming line dirty immediately.
    pub fn fill(&mut self, line: Line, is_write: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_mut(line);
        // Already present (e.g. racing fill): just refresh.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.line == line) {
            way.last_use = clock;
            way.dirty |= is_write;
            return None;
        }
        // Prefer an invalid way.
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                line,
                dirty: is_write,
                last_use: clock,
                valid: true,
            };
            return None;
        }
        // Evict true-LRU (first-way wins ties, as before).
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_use)
            .map(|(i, _)| i)
            .expect("assoc > 0");
        let victim = set[victim_idx];
        set[victim_idx] = Way {
            line,
            dirty: is_write,
            last_use: clock,
            valid: true,
        };
        if victim.dirty {
            self.writebacks += 1;
        }
        Some(Evicted {
            line: victim.line,
            dirty: victim.dirty,
        })
    }

    /// Invalidate `line` if present; returns `Some(dirty)` when an
    /// entry was dropped.
    pub fn invalidate(&mut self, line: Line) -> Option<bool> {
        for way in self.set_mut(line) {
            if way.valid && way.line == line {
                way.valid = false;
                let dirty = way.dirty;
                way.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Set the dirty bit of `line` if present, without touching LRU or
    /// hit/miss statistics (used when an upper-level victim merges
    /// down). Returns true if the line was present.
    pub fn mark_dirty(&mut self, line: Line) -> bool {
        for way in self.set_mut(line) {
            if way.valid && way.line == line {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Clear the dirty bit of `line` (after a writeback triggered by a
    /// remote read); returns true if the line was present and dirty.
    pub fn clean(&mut self, line: Line) -> bool {
        for way in self.set_mut(line) {
            if way.valid && way.line == line && way.dirty {
                way.dirty = false;
                return true;
            }
        }
        false
    }

    /// Invalidate every cached line of page `vpn`; returns the evicted
    /// lines with their dirtiness, in ascending line order. Used when
    /// the VM system replaces a page (access-rights downgrade).
    pub fn purge_page(&mut self, vpn: Vpn) -> Vec<Evicted> {
        let mut out = Vec::new();
        self.purge_page_into(vpn, &mut out);
        out
    }

    /// Allocation-free variant of [`purge_page`](Self::purge_page):
    /// clears `out` and fills it with the purged lines in ascending
    /// line order. The page-replacement path passes a scratch buffer
    /// that lives for the whole run.
    pub fn purge_page_into(&mut self, vpn: Vpn, out: &mut Vec<Evicted>) {
        out.clear();
        let start = first_line_of_page(vpn);
        for l in start..start + LINES_PER_PAGE {
            if let Some(dirty) = self.invalidate(l) {
                out.push(Evicted { line: l, dirty });
            }
        }
    }

    /// Whether `line` is present (no LRU update).
    pub fn contains(&self, line: Line) -> bool {
        self.set(line).iter().any(|w| w.valid && w.line == line)
    }

    /// Whether `line` is present and dirty.
    pub fn is_dirty(&self, line: Line) -> bool {
        self.set(line)
            .iter()
            .any(|w| w.valid && w.line == line && w.dirty)
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions performed.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Serialize the dynamic state: every way in slot order (way order
    /// inside a set is observable through LRU tie-breaking) plus the
    /// LRU clock and statistics. Geometry comes from construction.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.ways.len());
        for way in &self.ways {
            w.bool(way.valid);
            w.u64(way.line);
            w.bool(way.dirty);
            w.u64(way.last_use);
        }
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.writebacks);
    }

    /// Overlay state saved by [`Cache::ckpt_save`] onto a cache of the
    /// same geometry.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.ways.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("cache has {n} ways, expected {}", self.ways.len()),
            });
        }
        for way in &mut self.ways {
            way.valid = r.bool()?;
            way.line = r.u64()?;
            way.dirty = r.bool()?;
            way.last_use = r.u64()?;
        }
        self.clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.writebacks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B cache.
        Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = tiny();
        assert_eq!(c.access(100, false), LookupResult::Miss);
        assert_eq!(c.fill(100, false), None);
        assert_eq!(c.access(100, false), LookupResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn write_sets_dirty() {
        let mut c = tiny();
        c.fill(5, false);
        assert!(!c.is_dirty(5));
        c.access(5, true);
        assert!(c.is_dirty(5));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, false);
        c.access(0, false); // 4 becomes LRU
        let ev = c.fill(8, false).unwrap();
        assert_eq!(ev.line, 4);
        assert!(c.contains(0));
        assert!(c.contains(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, true);
        c.fill(4, false);
        let ev = c.fill(8, false).unwrap();
        assert_eq!(ev, Evicted { line: 0, dirty: true });
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn clean_clears_dirty_bit() {
        let mut c = tiny();
        c.fill(3, true);
        assert!(c.clean(3));
        assert!(!c.is_dirty(3));
        assert!(c.contains(3));
        assert!(!c.clean(3));
    }

    #[test]
    fn purge_page_removes_all_lines() {
        let mut c = Cache::new(CacheConfig::l2_default());
        // Fill some lines of page 2 (lines 128..192).
        c.fill(130, true);
        c.fill(150, false);
        c.fill(191, true);
        c.fill(192, false); // page 3, must survive
        let purged = c.purge_page(2);
        assert_eq!(purged.len(), 3);
        assert_eq!(purged[0], Evicted { line: 130, dirty: true });
        assert_eq!(purged[1], Evicted { line: 150, dirty: false });
        assert_eq!(purged[2], Evicted { line: 191, dirty: true });
        assert!(c.contains(192));
    }

    #[test]
    fn refill_existing_is_noop() {
        let mut c = tiny();
        c.fill(9, true);
        assert_eq!(c.fill(9, false), None);
        assert!(c.is_dirty(9), "refill must not lose the dirty bit");
    }

    #[test]
    fn default_geometries_are_valid() {
        let l1 = Cache::new(CacheConfig::l1_default());
        let l2 = Cache::new(CacheConfig::l2_default());
        assert_eq!(l1.config().num_sets(), 256);
        assert_eq!(l2.config().num_sets(), 512);
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(1, false);
        c.fill(1, false);
        c.access(1, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
