//! Translation lookaside buffer with shootdown support.
//!
//! The paper's VM system keeps a machine-wide page table; every time a
//! page's access rights are downgraded (e.g. it is chosen for
//! replacement) a *TLB shootdown* interrupts all other processors,
//! which must delete their entry for the page (§3.1). The TLB model
//! here is fully associative with true-LRU replacement; the shootdown
//! latencies themselves (100/500/400 pcycles) are charged by the
//! machine model.

use crate::Vpn;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};

/// A fully associative, LRU translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// `(vpn, last_use)` pairs; length <= capacity.
    entries: Vec<(Vpn, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// A TLB with `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must have at least one entry");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Look up `vpn`, updating LRU state. Returns `true` on a hit.
    /// On a miss the entry is *not* inserted — callers insert after the
    /// page-table walk succeeds (the page may not be resident at all).
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert a translation for `vpn`, evicting the LRU entry if full.
    pub fn insert(&mut self, vpn: Vpn) {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.clock;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("TLB full implies non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.clock));
    }

    /// Remove the entry for `vpn` (TLB shootdown). Returns `true` if an
    /// entry was present — only then does the processor pay the
    /// shootdown interrupt.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        if let Some(i) = self.entries.iter().position(|e| e.0 == vpn) {
            self.entries.swap_remove(i);
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Whether `vpn` is currently cached (no LRU update).
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.entries.iter().any(|e| e.0 == vpn)
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total successful invalidations.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Serialize the dynamic state. Entry order is observable (LRU
    /// eviction scans in order and swap-removes), so entries are saved
    /// exactly as stored.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.entries.len());
        for &(vpn, last_use) in &self.entries {
            w.u64(vpn);
            w.u64(last_use);
        }
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.invalidations);
    }

    /// Overlay state saved by [`Tlb::ckpt_save`] onto a TLB of the
    /// same capacity.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n > self.capacity {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("TLB holds {n} entries, capacity is {}", self.capacity),
            });
        }
        self.entries.clear();
        for _ in 0..n {
            let vpn = r.u64()?;
            let last_use = r.u64()?;
            self.entries.push((vpn, last_use));
        }
        self.clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.invalidations = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.lookup(10));
        tlb.insert(10);
        assert!(tlb.lookup(10));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1);
        tlb.insert(2);
        assert!(tlb.lookup(1)); // 2 is now LRU
        tlb.insert(3); // evicts 2
        assert!(tlb.contains(1));
        assert!(!tlb.contains(2));
        assert!(tlb.contains(3));
    }

    #[test]
    fn insert_existing_refreshes() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1);
        tlb.insert(2);
        tlb.insert(1); // refresh, not duplicate
        assert_eq!(tlb.len(), 2);
        tlb.insert(3); // evicts 2 (LRU), not 1
        assert!(tlb.contains(1));
        assert!(!tlb.contains(2));
    }

    #[test]
    fn shootdown_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.insert(7);
        assert!(tlb.invalidate(7));
        assert!(!tlb.invalidate(7)); // already gone
        assert!(!tlb.contains(7));
        assert_eq!(tlb.invalidations(), 1);
    }

    #[test]
    fn capacity_respected() {
        let mut tlb = Tlb::new(8);
        for v in 0..100 {
            tlb.insert(v);
        }
        assert_eq!(tlb.len(), 8);
        // The most recent 8 survive under LRU.
        for v in 92..100 {
            assert!(tlb.contains(v), "missing {v}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }
}
