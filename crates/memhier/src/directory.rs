//! Machine-wide directory-based cache coherence (MSI, atomic-directory
//! approximation).
//!
//! The base machine is DASH-like (§4): each resident page has a home
//! node (the node whose memory holds the frame) and a directory that
//! tracks, per cache line, which processors cache the line and whether
//! one of them holds it modified. We collapse transient protocol states:
//! each read/write transaction consults the directory once and the
//! outcome tells the machine model which messages/latencies to charge
//! (remote fetch, owner writeback, invalidations). Under release
//! consistency the processor does not wait for invalidation acks on
//! writes, but the traffic still contends for the network.
//!
//! Directory entries live in an open-addressing [`LineTable`] keyed by
//! cache-line index (PR 3 hot-path layout; see DESIGN.md §11). Each
//! entry packs its MSI state into the table's `u64` value; page purges
//! walk the page's 64 consecutive line indices directly, which keeps
//! their output in ascending line order — the same observable order
//! the previous `BTreeMap` range scan produced.

use crate::linetable::LineTable;
use crate::{first_line_of_page, Line, Vpn, LINES_PER_PAGE};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};

/// Bitmask of nodes caching a line (machines up to 32 nodes).
pub type SharerMask = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// One or more nodes cache the line clean.
    Shared(SharerMask),
    /// Exactly one node holds the line modified.
    Modified(u32),
}

/// Tag bit distinguishing `Modified(owner)` from `Shared(mask)` in the
/// packed table value (sharer masks only use the low 32 bits).
const MOD_TAG: u64 = 1 << 63;

impl State {
    #[inline]
    fn pack(self) -> u64 {
        match self {
            State::Shared(mask) => mask as u64,
            State::Modified(owner) => MOD_TAG | owner as u64,
        }
    }

    #[inline]
    fn unpack(v: u64) -> State {
        if v & MOD_TAG != 0 {
            State::Modified((v & !MOD_TAG) as u32)
        } else {
            State::Shared(v as SharerMask)
        }
    }

    /// All nodes caching the line (modified owner counts as one).
    #[inline]
    fn mask(self) -> SharerMask {
        match self {
            State::Shared(m) => m,
            State::Modified(o) => 1 << o,
        }
    }
}

/// Outcome of a read transaction at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Line was uncached anywhere; fetch from home memory.
    FromMemory,
    /// Line was shared; fetch from home memory (data is clean there).
    FromMemoryShared,
    /// Line was modified at `owner`: owner must write back / forward.
    FromOwner {
        /// Node that held the modified copy.
        owner: u32,
    },
}

/// Outcome of a write (ownership) transaction at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Sharers (excluding the writer) that must be invalidated.
    pub invalidate: SharerMask,
    /// Previous modified owner whose data must be fetched, if any.
    pub fetch_from: Option<u32>,
    /// Whether the line had to be fetched from home memory.
    pub from_memory: bool,
}

/// The directory for all resident lines of the machine.
#[derive(Debug, Default)]
pub struct Directory {
    entries: LineTable,
    reads: u64,
    writes: u64,
    invalidations_sent: u64,
    owner_forwards: u64,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// A read by `node`. Updates sharer state and reports where the
    /// data comes from.
    pub fn read(&mut self, line: Line, node: u32) -> ReadOutcome {
        self.reads += 1;
        let bit = 1u32 << node;
        if let Some(v) = self.entries.get_mut(line) {
            return match State::unpack(*v) {
                State::Shared(mask) => {
                    *v = State::Shared(mask | bit).pack();
                    ReadOutcome::FromMemoryShared
                }
                // Own modified copy: silent hit, state unchanged.
                State::Modified(owner) if owner == node => ReadOutcome::FromMemoryShared,
                State::Modified(owner) => {
                    // Owner writes back; both now share.
                    *v = State::Shared(bit | (1 << owner)).pack();
                    self.owner_forwards += 1;
                    ReadOutcome::FromOwner { owner }
                }
            };
        }
        self.entries.insert(line, State::Shared(bit).pack());
        ReadOutcome::FromMemory
    }

    /// A write (ownership request) by `node`.
    pub fn write(&mut self, line: Line, node: u32) -> WriteOutcome {
        self.writes += 1;
        let bit = 1u32 << node;
        let new = State::Modified(node).pack();
        if let Some(v) = self.entries.get_mut(line) {
            let outcome = match State::unpack(*v) {
                State::Shared(mask) => {
                    let inv = mask & !bit;
                    self.invalidations_sent += inv.count_ones() as u64;
                    WriteOutcome {
                        invalidate: inv,
                        fetch_from: None,
                        // If the writer already shared the line it upgrades
                        // in place; otherwise data comes from memory.
                        from_memory: mask & bit == 0,
                    }
                }
                State::Modified(owner) if owner == node => WriteOutcome {
                    invalidate: 0,
                    fetch_from: None,
                    from_memory: false,
                },
                State::Modified(owner) => {
                    self.owner_forwards += 1;
                    WriteOutcome {
                        invalidate: 0,
                        fetch_from: Some(owner),
                        from_memory: false,
                    }
                }
            };
            *v = new;
            return outcome;
        }
        self.entries.insert(line, new);
        WriteOutcome {
            invalidate: 0,
            fetch_from: None,
            from_memory: true,
        }
    }

    /// `node` silently dropped its copy (clean eviction) or wrote back
    /// (dirty eviction). Keeps the directory conservative-but-correct.
    pub fn evict(&mut self, line: Line, node: u32) {
        let bit = 1u32 << node;
        let Some(v) = self.entries.get(line) else {
            return;
        };
        match State::unpack(v) {
            State::Shared(mask) => {
                let mask = mask & !bit;
                if mask == 0 {
                    self.entries.remove(line);
                } else if let Some(slot) = self.entries.get_mut(line) {
                    *slot = State::Shared(mask).pack();
                }
            }
            State::Modified(owner) if owner == node => {
                self.entries.remove(line);
            }
            State::Modified(_) => {}
        }
    }

    /// Drop every directory entry for page `vpn`, returning for each
    /// line the set of nodes that cached it (so their caches can be
    /// invalidated) — this is the access-rights downgrade performed at
    /// page replacement.
    pub fn purge_page(&mut self, vpn: Vpn) -> Vec<(Line, SharerMask)> {
        let mut out = Vec::new();
        self.purge_page_into(vpn, &mut out);
        out
    }

    /// Allocation-free variant of [`purge_page`](Self::purge_page):
    /// clears `out` and fills it with the purged `(line, sharers)`
    /// pairs in ascending line order. The hot page-replacement path
    /// passes a scratch buffer that lives for the whole run.
    pub fn purge_page_into(&mut self, vpn: Vpn, out: &mut Vec<(Line, SharerMask)>) {
        out.clear();
        // Lines of a page are 64 consecutive indices: probing each
        // beats an ordered range scan, and ascending order falls out
        // of the loop (bit-compatible with the old BTreeMap range).
        let start = first_line_of_page(vpn);
        for line in start..start + LINES_PER_PAGE {
            if let Some(v) = self.entries.remove(line) {
                out.push((line, State::unpack(v).mask()));
            }
        }
    }

    /// Sharer mask of `line` (modified owner counts as one sharer).
    pub fn sharers(&self, line: Line) -> SharerMask {
        match self.entries.get(line) {
            None => 0,
            Some(v) => State::unpack(v).mask(),
        }
    }

    /// Whether `line` is held modified, and by whom.
    pub fn modified_owner(&self, line: Line) -> Option<u32> {
        match self.entries.get(line).map(State::unpack) {
            Some(State::Modified(o)) => Some(o),
            _ => None,
        }
    }

    /// Number of lines with directory state.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Total read transactions.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total write transactions.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total invalidation messages implied by write transactions.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Total dirty-owner forwards/writebacks implied by transactions.
    pub fn owner_forwards(&self) -> u64 {
        self.owner_forwards
    }

    /// Serialize every `(line, packed state)` entry in ascending line
    /// order plus the transaction counters. The [`LineTable`]'s slot
    /// layout is not observable (ordered walks probe by key), so a
    /// canonical sorted dump keeps checkpoint bytes stable across
    /// different insertion histories.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        let mut entries: Vec<(Line, u64)> = self.entries.iter().collect();
        entries.sort_unstable_by_key(|&(line, _)| line);
        w.usize(entries.len());
        for (line, v) in entries {
            w.u64(line);
            w.u64(v);
        }
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.invalidations_sent);
        w.u64(self.owner_forwards);
    }

    /// Overlay state saved by [`Directory::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        self.entries = LineTable::new();
        for _ in 0..n {
            let line = r.u64()?;
            let v = r.u64()?;
            if self.entries.insert(line, v).is_some() {
                return Err(CkptError::Invalid {
                    offset: r.offset(),
                    what: format!("duplicate directory line {line}"),
                });
            }
        }
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.invalidations_sent = r.u64()?;
        self.owner_forwards = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_comes_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read(10, 0), ReadOutcome::FromMemory);
        assert_eq!(d.sharers(10), 0b1);
    }

    #[test]
    fn second_reader_shares() {
        let mut d = Directory::new();
        d.read(10, 0);
        assert_eq!(d.read(10, 3), ReadOutcome::FromMemoryShared);
        assert_eq!(d.sharers(10), 0b1001);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(10, 0);
        d.read(10, 1);
        d.read(10, 2);
        let w = d.write(10, 0);
        assert_eq!(w.invalidate, 0b110); // nodes 1 and 2
        assert!(!w.from_memory); // writer already shared the line
        assert_eq!(d.modified_owner(10), Some(0));
        assert_eq!(d.invalidations_sent(), 2);
    }

    #[test]
    fn write_by_non_sharer_fetches_memory() {
        let mut d = Directory::new();
        d.read(10, 1);
        let w = d.write(10, 2);
        assert_eq!(w.invalidate, 0b10);
        assert!(w.from_memory);
    }

    #[test]
    fn read_of_modified_forces_owner_writeback() {
        let mut d = Directory::new();
        d.write(10, 5);
        assert_eq!(d.read(10, 1), ReadOutcome::FromOwner { owner: 5 });
        // Both now share.
        assert_eq!(d.sharers(10), (1 << 5) | (1 << 1));
        assert_eq!(d.owner_forwards(), 1);
    }

    #[test]
    fn owner_rereads_own_line_silently() {
        let mut d = Directory::new();
        d.write(10, 5);
        assert_eq!(d.read(10, 5), ReadOutcome::FromMemoryShared);
        assert_eq!(d.modified_owner(10), Some(5));
    }

    #[test]
    fn write_to_modified_fetches_from_owner() {
        let mut d = Directory::new();
        d.write(10, 0);
        let w = d.write(10, 1);
        assert_eq!(w.fetch_from, Some(0));
        assert_eq!(w.invalidate, 0);
        assert_eq!(d.modified_owner(10), Some(1));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.write(10, 0);
        let w = d.write(10, 0);
        assert_eq!(w.fetch_from, None);
        assert_eq!(w.invalidate, 0);
        assert!(!w.from_memory);
    }

    #[test]
    fn evict_clears_state() {
        let mut d = Directory::new();
        d.read(10, 0);
        d.read(10, 1);
        d.evict(10, 0);
        assert_eq!(d.sharers(10), 0b10);
        d.evict(10, 1);
        assert_eq!(d.sharers(10), 0);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn evict_by_non_owner_keeps_modified() {
        let mut d = Directory::new();
        d.write(10, 2);
        d.evict(10, 3); // stale message from non-owner
        assert_eq!(d.modified_owner(10), Some(2));
    }

    #[test]
    fn purge_page_returns_all_cached_lines() {
        let mut d = Directory::new();
        // Page 1 covers lines 64..128.
        d.read(64, 0);
        d.read(70, 1);
        d.write(100, 2);
        d.read(128, 3); // page 2, untouched
        let purged = d.purge_page(1);
        assert_eq!(purged.len(), 3);
        assert_eq!(purged[0], (64, 0b1));
        assert_eq!(purged[1], (70, 0b10));
        assert_eq!(purged[2], (100, 0b100));
        assert_eq!(d.tracked_lines(), 1);
        assert_eq!(d.sharers(128), 0b1000);
    }

    #[test]
    fn purge_empty_page_is_empty() {
        let mut d = Directory::new();
        assert!(d.purge_page(42).is_empty());
    }
}
