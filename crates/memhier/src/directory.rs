//! Machine-wide directory-based cache coherence (MSI, atomic-directory
//! approximation).
//!
//! The base machine is DASH-like (§4): each resident page has a home
//! node (the node whose memory holds the frame) and a directory that
//! tracks, per cache line, which processors cache the line and whether
//! one of them holds it modified. We collapse transient protocol states:
//! each read/write transaction consults the directory once and the
//! outcome tells the machine model which messages/latencies to charge
//! (remote fetch, owner writeback, invalidations). Under release
//! consistency the processor does not wait for invalidation acks on
//! writes, but the traffic still contends for the network.
//!
//! Directory entries live in open-addressing [`LineTable`]s keyed by
//! cache-line index (PR 3 hot-path layout; see DESIGN.md §11). Each
//! entry packs its MSI state into the table's `u64` value; page purges
//! walk the page's 64 consecutive line indices directly, which keeps
//! their output in ascending line order — the same observable order
//! the previous `BTreeMap` range scan produced.
//!
//! **Sharding** (generated topologies). The directory can split its
//! lines over several [`LineTable`] shards, keyed by page
//! (`(line / LINES_PER_PAGE) % shards`) so every line of a page lands
//! in one shard and a page purge probes exactly one table. One shard
//! (the default) is the paper machine's single directory.
//!
//! **Coarse sharer vectors** (machines past 32 nodes). The sharer
//! mask is a `u32`; with more than 32 nodes each bit covers a *group*
//! of `ceil(nodes/32)` consecutive nodes, DASH's coarse-vector
//! scheme: invalidations go to every node of a sharing group, clean
//! evictions cannot clear a group bit (another group member may still
//! share), and only the exact `Modified(owner)` state stays
//! node-precise. At 32 nodes or fewer the group size is 1 and the
//! directory is bit-for-bit the precise one.

use crate::linetable::LineTable;
use crate::{first_line_of_page, Line, Vpn, LINES_PER_PAGE};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};

/// Bitmask of node *groups* caching a line: one node per group up to
/// 32 nodes, `ceil(nodes/32)` nodes per group beyond (see the module
/// docs). Use [`Directory::expand_mask`] to enumerate member nodes.
pub type SharerMask = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// One or more nodes cache the line clean.
    Shared(SharerMask),
    /// Exactly one node holds the line modified.
    Modified(u32),
}

/// Tag bit distinguishing `Modified(owner)` from `Shared(mask)` in the
/// packed table value (sharer masks only use the low 32 bits).
const MOD_TAG: u64 = 1 << 63;

impl State {
    #[inline]
    fn pack(self) -> u64 {
        match self {
            State::Shared(mask) => mask as u64,
            State::Modified(owner) => MOD_TAG | owner as u64,
        }
    }

    #[inline]
    fn unpack(v: u64) -> State {
        if v & MOD_TAG != 0 {
            State::Modified((v & !MOD_TAG) as u32)
        } else {
            State::Shared(v as SharerMask)
        }
    }

}

/// Outcome of a read transaction at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Line was uncached anywhere; fetch from home memory.
    FromMemory,
    /// Line was shared; fetch from home memory (data is clean there).
    FromMemoryShared,
    /// Line was modified at `owner`: owner must write back / forward.
    FromOwner {
        /// Node that held the modified copy.
        owner: u32,
    },
}

/// Outcome of a write (ownership) transaction at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Sharers (excluding the writer) that must be invalidated.
    pub invalidate: SharerMask,
    /// Previous modified owner whose data must be fetched, if any.
    pub fetch_from: Option<u32>,
    /// Whether the line had to be fetched from home memory.
    pub from_memory: bool,
}

/// The directory for all resident lines of the machine.
#[derive(Debug)]
pub struct Directory {
    shards: Vec<LineTable>,
    /// Nodes per sharer-mask bit (1 up to 32 nodes; DASH coarse
    /// vector beyond).
    granularity: u32,
    reads: u64,
    writes: u64,
    invalidations_sent: u64,
    owner_forwards: u64,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty single-shard directory with node-precise sharer bits
    /// (the paper machine's directory).
    pub fn new() -> Self {
        Self::with_topology(1, 1)
    }

    /// An empty directory with `shards` line-table shards, sized for a
    /// `nodes`-node machine (the sharer-bit granularity is
    /// `ceil(nodes/32)`). `with_topology(1, n)` for `n <= 32` behaves
    /// exactly like [`Directory::new`].
    pub fn with_topology(shards: usize, nodes: u32) -> Self {
        assert!(shards > 0, "directory needs at least one shard");
        assert!(nodes >= 1, "directory needs at least one node");
        Directory {
            shards: (0..shards).map(|_| LineTable::new()).collect(),
            granularity: nodes.div_ceil(32).max(1),
            reads: 0,
            writes: 0,
            invalidations_sent: 0,
            owner_forwards: 0,
        }
    }

    /// Number of line-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Nodes covered by one sharer-mask bit (1 = node-precise).
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// Shard index for `line`: keyed by page so every line of a page
    /// (and therefore each purge) probes exactly one shard.
    #[inline]
    fn shard_of(&self, line: Line) -> usize {
        ((line / LINES_PER_PAGE) % self.shards.len() as u64) as usize
    }

    #[inline]
    fn bit(&self, node: u32) -> SharerMask {
        1 << (node / self.granularity)
    }

    /// Call `f` for every node a sharer mask covers (ascending): the
    /// bit's whole node group at the current granularity, clipped to
    /// `nodes`. At granularity 1 this enumerates exactly the mask's
    /// set bits.
    pub fn expand_mask(&self, mask: SharerMask, nodes: u32, mut f: impl FnMut(u32)) {
        let g = self.granularity;
        let mut m = mask;
        while m != 0 {
            let group = m.trailing_zeros();
            m &= m - 1;
            for node in (group * g)..((group + 1) * g).min(nodes) {
                f(node);
            }
        }
    }

    /// A read by `node`. Updates sharer state and reports where the
    /// data comes from.
    pub fn read(&mut self, line: Line, node: u32) -> ReadOutcome {
        self.reads += 1;
        let bit = self.bit(node);
        let owner_bit = |o: u32| 1u32 << (o / self.granularity);
        let shard = self.shard_of(line);
        let entries = &mut self.shards[shard];
        if let Some(v) = entries.get_mut(line) {
            return match State::unpack(*v) {
                State::Shared(mask) => {
                    *v = State::Shared(mask | bit).pack();
                    ReadOutcome::FromMemoryShared
                }
                // Own modified copy: silent hit, state unchanged.
                State::Modified(owner) if owner == node => ReadOutcome::FromMemoryShared,
                State::Modified(owner) => {
                    // Owner writes back; both now share.
                    *v = State::Shared(bit | owner_bit(owner)).pack();
                    self.owner_forwards += 1;
                    ReadOutcome::FromOwner { owner }
                }
            };
        }
        entries.insert(line, State::Shared(bit).pack());
        ReadOutcome::FromMemory
    }

    /// A write (ownership request) by `node`.
    pub fn write(&mut self, line: Line, node: u32) -> WriteOutcome {
        self.writes += 1;
        let bit = self.bit(node);
        let new = State::Modified(node).pack();
        let shard = self.shard_of(line);
        let entries = &mut self.shards[shard];
        if let Some(v) = entries.get_mut(line) {
            let outcome = match State::unpack(*v) {
                State::Shared(mask) => {
                    let inv = mask & !bit;
                    self.invalidations_sent += inv.count_ones() as u64;
                    WriteOutcome {
                        invalidate: inv,
                        fetch_from: None,
                        // If the writer already shared the line it upgrades
                        // in place; otherwise data comes from memory.
                        from_memory: mask & bit == 0,
                    }
                }
                State::Modified(owner) if owner == node => WriteOutcome {
                    invalidate: 0,
                    fetch_from: None,
                    from_memory: false,
                },
                State::Modified(owner) => {
                    self.owner_forwards += 1;
                    WriteOutcome {
                        invalidate: 0,
                        fetch_from: Some(owner),
                        from_memory: false,
                    }
                }
            };
            *v = new;
            return outcome;
        }
        entries.insert(line, new);
        WriteOutcome {
            invalidate: 0,
            fetch_from: None,
            from_memory: true,
        }
    }

    /// `node` silently dropped its copy (clean eviction) or wrote back
    /// (dirty eviction). Keeps the directory conservative-but-correct:
    /// with coarse sharer groups a clean eviction cannot clear the
    /// group's bit (another member may still share the line), so only
    /// the node-precise granularity ever shrinks a shared mask.
    pub fn evict(&mut self, line: Line, node: u32) {
        let bit = self.bit(node);
        let precise = self.granularity == 1;
        let shard = self.shard_of(line);
        let entries = &mut self.shards[shard];
        let Some(v) = entries.get(line) else {
            return;
        };
        match State::unpack(v) {
            State::Shared(mask) if precise => {
                let mask = mask & !bit;
                if mask == 0 {
                    entries.remove(line);
                } else if let Some(slot) = entries.get_mut(line) {
                    *slot = State::Shared(mask).pack();
                }
            }
            State::Shared(_) => {}
            State::Modified(owner) if owner == node => {
                entries.remove(line);
            }
            State::Modified(_) => {}
        }
    }

    /// Drop every directory entry for page `vpn`, returning for each
    /// line the set of nodes that cached it (so their caches can be
    /// invalidated) — this is the access-rights downgrade performed at
    /// page replacement.
    pub fn purge_page(&mut self, vpn: Vpn) -> Vec<(Line, SharerMask)> {
        let mut out = Vec::new();
        self.purge_page_into(vpn, &mut out);
        out
    }

    /// Allocation-free variant of [`purge_page`](Self::purge_page):
    /// clears `out` and fills it with the purged `(line, sharers)`
    /// pairs in ascending line order. The hot page-replacement path
    /// passes a scratch buffer that lives for the whole run.
    pub fn purge_page_into(&mut self, vpn: Vpn, out: &mut Vec<(Line, SharerMask)>) {
        out.clear();
        // Lines of a page are 64 consecutive indices in one shard:
        // probing each beats an ordered range scan, and ascending
        // order falls out of the loop (bit-compatible with the old
        // BTreeMap range).
        let start = first_line_of_page(vpn);
        let g = self.granularity;
        let shard = self.shard_of(start);
        let entries = &mut self.shards[shard];
        for line in start..start + LINES_PER_PAGE {
            if let Some(v) = entries.remove(line) {
                let mask = match State::unpack(v) {
                    State::Shared(m) => m,
                    State::Modified(o) => 1 << (o / g),
                };
                out.push((line, mask));
            }
        }
    }

    /// Sharer mask of `line` (modified owner counts as one sharer).
    pub fn sharers(&self, line: Line) -> SharerMask {
        let g = self.granularity;
        match self.shards[self.shard_of(line)].get(line) {
            None => 0,
            Some(v) => match State::unpack(v) {
                State::Shared(m) => m,
                State::Modified(o) => 1 << (o / g),
            },
        }
    }

    /// Whether `line` is held modified, and by whom.
    pub fn modified_owner(&self, line: Line) -> Option<u32> {
        match self.shards[self.shard_of(line)].get(line).map(State::unpack) {
            Some(State::Modified(o)) => Some(o),
            _ => None,
        }
    }

    /// Number of lines with directory state.
    pub fn tracked_lines(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Total read transactions.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total write transactions.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total invalidation messages implied by write transactions.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Total dirty-owner forwards/writebacks implied by transactions.
    pub fn owner_forwards(&self) -> u64 {
        self.owner_forwards
    }

    /// Serialize every `(line, packed state)` entry in ascending line
    /// order plus the transaction counters. Entries are merged across
    /// shards into one globally sorted dump: the shard split (like the
    /// [`LineTable`]'s slot layout) is not observable, so a sharded
    /// directory checkpoints to exactly the bytes a single-shard one
    /// would.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        let mut entries: Vec<(Line, u64)> = self.shards.iter().flat_map(|s| s.iter()).collect();
        entries.sort_unstable_by_key(|&(line, _)| line);
        w.usize(entries.len());
        for (line, v) in entries {
            w.u64(line);
            w.u64(v);
        }
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.invalidations_sent);
        w.u64(self.owner_forwards);
    }

    /// Overlay state saved by [`Directory::ckpt_save`]. The shard
    /// count and granularity come from the receiving directory (they
    /// are config, not state).
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        for s in &mut self.shards {
            *s = LineTable::new();
        }
        for _ in 0..n {
            let line = r.u64()?;
            let v = r.u64()?;
            let shard = self.shard_of(line);
            if self.shards[shard].insert(line, v).is_some() {
                return Err(CkptError::Invalid {
                    offset: r.offset(),
                    what: format!("duplicate directory line {line}"),
                });
            }
        }
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.invalidations_sent = r.u64()?;
        self.owner_forwards = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_comes_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.read(10, 0), ReadOutcome::FromMemory);
        assert_eq!(d.sharers(10), 0b1);
    }

    #[test]
    fn second_reader_shares() {
        let mut d = Directory::new();
        d.read(10, 0);
        assert_eq!(d.read(10, 3), ReadOutcome::FromMemoryShared);
        assert_eq!(d.sharers(10), 0b1001);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(10, 0);
        d.read(10, 1);
        d.read(10, 2);
        let w = d.write(10, 0);
        assert_eq!(w.invalidate, 0b110); // nodes 1 and 2
        assert!(!w.from_memory); // writer already shared the line
        assert_eq!(d.modified_owner(10), Some(0));
        assert_eq!(d.invalidations_sent(), 2);
    }

    #[test]
    fn write_by_non_sharer_fetches_memory() {
        let mut d = Directory::new();
        d.read(10, 1);
        let w = d.write(10, 2);
        assert_eq!(w.invalidate, 0b10);
        assert!(w.from_memory);
    }

    #[test]
    fn read_of_modified_forces_owner_writeback() {
        let mut d = Directory::new();
        d.write(10, 5);
        assert_eq!(d.read(10, 1), ReadOutcome::FromOwner { owner: 5 });
        // Both now share.
        assert_eq!(d.sharers(10), (1 << 5) | (1 << 1));
        assert_eq!(d.owner_forwards(), 1);
    }

    #[test]
    fn owner_rereads_own_line_silently() {
        let mut d = Directory::new();
        d.write(10, 5);
        assert_eq!(d.read(10, 5), ReadOutcome::FromMemoryShared);
        assert_eq!(d.modified_owner(10), Some(5));
    }

    #[test]
    fn write_to_modified_fetches_from_owner() {
        let mut d = Directory::new();
        d.write(10, 0);
        let w = d.write(10, 1);
        assert_eq!(w.fetch_from, Some(0));
        assert_eq!(w.invalidate, 0);
        assert_eq!(d.modified_owner(10), Some(1));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.write(10, 0);
        let w = d.write(10, 0);
        assert_eq!(w.fetch_from, None);
        assert_eq!(w.invalidate, 0);
        assert!(!w.from_memory);
    }

    #[test]
    fn evict_clears_state() {
        let mut d = Directory::new();
        d.read(10, 0);
        d.read(10, 1);
        d.evict(10, 0);
        assert_eq!(d.sharers(10), 0b10);
        d.evict(10, 1);
        assert_eq!(d.sharers(10), 0);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn evict_by_non_owner_keeps_modified() {
        let mut d = Directory::new();
        d.write(10, 2);
        d.evict(10, 3); // stale message from non-owner
        assert_eq!(d.modified_owner(10), Some(2));
    }

    #[test]
    fn purge_page_returns_all_cached_lines() {
        let mut d = Directory::new();
        // Page 1 covers lines 64..128.
        d.read(64, 0);
        d.read(70, 1);
        d.write(100, 2);
        d.read(128, 3); // page 2, untouched
        let purged = d.purge_page(1);
        assert_eq!(purged.len(), 3);
        assert_eq!(purged[0], (64, 0b1));
        assert_eq!(purged[1], (70, 0b10));
        assert_eq!(purged[2], (100, 0b100));
        assert_eq!(d.tracked_lines(), 1);
        assert_eq!(d.sharers(128), 0b1000);
    }

    #[test]
    fn purge_empty_page_is_empty() {
        let mut d = Directory::new();
        assert!(d.purge_page(42).is_empty());
    }

    #[test]
    fn sharded_directory_behaves_like_single_shard() {
        // Drive the same transaction stream through 1 and 4 shards:
        // every outcome and counter must agree (the shard split is an
        // implementation detail).
        let mut one = Directory::with_topology(1, 8);
        let mut four = Directory::with_topology(4, 8);
        assert_eq!(four.shard_count(), 4);
        for (line, node) in [(64u64, 0u32), (70, 1), (129, 2), (200, 3), (64, 2), (300, 0)] {
            assert_eq!(one.read(line, node), four.read(line, node), "read {line} {node}");
        }
        for (line, node) in [(64u64, 1u32), (129, 0), (300, 0)] {
            assert_eq!(one.write(line, node), four.write(line, node), "write {line} {node}");
        }
        one.evict(70, 1);
        four.evict(70, 1);
        assert_eq!(one.purge_page(1), four.purge_page(1));
        assert_eq!(one.tracked_lines(), four.tracked_lines());
        assert_eq!(one.invalidations_sent(), four.invalidations_sent());
        // Identical checkpoint bytes: the split is not observable.
        let mut w1 = CkptWriter::new();
        let mut w4 = CkptWriter::new();
        w1.begin_section(1);
        one.ckpt_save(&mut w1);
        w1.end_section();
        w4.begin_section(1);
        four.ckpt_save(&mut w4);
        w4.end_section();
        assert_eq!(w1.finish(), w4.finish());
    }

    #[test]
    fn sharded_checkpoint_restores_into_any_shard_count() {
        let mut d = Directory::with_topology(3, 8);
        d.read(64, 0);
        d.write(129, 2);
        d.read(700, 1);
        let mut w = CkptWriter::new();
        w.begin_section(1);
        d.ckpt_save(&mut w);
        w.end_section();
        let bytes = w.finish();
        let mut e = Directory::with_topology(5, 8);
        let mut r = CkptReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        e.ckpt_restore(&mut r).unwrap();
        r.end_section().unwrap();
        assert_eq!(e.tracked_lines(), 3);
        assert_eq!(e.modified_owner(129), Some(2));
        assert_eq!(e.sharers(700), 0b10);
    }

    #[test]
    fn coarse_vector_groups_nodes_past_32() {
        // 64 nodes: 2 nodes per sharer bit.
        let mut d = Directory::with_topology(1, 64);
        assert_eq!(d.granularity(), 2);
        d.read(10, 0);
        d.read(10, 1); // same group as node 0
        d.read(10, 63); // group 31
        assert_eq!(d.sharers(10), 0b1 | (1 << 31));
        // A write by node 40 (group 20) invalidates groups 0 and 31.
        let w = d.write(10, 40);
        assert_eq!(w.invalidate, 0b1 | (1 << 31));
        // Modified owner stays node-precise.
        assert_eq!(d.modified_owner(10), Some(40));
        let r = d.read(10, 0);
        assert_eq!(r, ReadOutcome::FromOwner { owner: 40 });
        assert_eq!(d.sharers(10), 0b1 | (1 << 20));
    }

    #[test]
    fn coarse_clean_evict_is_conservative() {
        let mut d = Directory::with_topology(1, 64);
        d.read(10, 4);
        d.read(10, 5); // same group (2)
        d.evict(10, 4);
        // The group bit must survive: node 5 still shares the line.
        assert_eq!(d.sharers(10), 0b100);
        // A modified owner's eviction is still precise.
        d.write(20, 7);
        d.evict(20, 6); // same group, not the owner: ignored
        assert_eq!(d.modified_owner(20), Some(7));
        d.evict(20, 7);
        assert_eq!(d.sharers(20), 0);
    }

    #[test]
    fn expand_mask_enumerates_group_members() {
        let d = Directory::with_topology(1, 64);
        let mut nodes = Vec::new();
        d.expand_mask(0b1 | (1 << 31), 64, |n| nodes.push(n));
        assert_eq!(nodes, vec![0, 1, 62, 63]);
        // Precise directory: expansion is the identity.
        let d = Directory::with_topology(1, 8);
        let mut nodes = Vec::new();
        d.expand_mask(0b1011, 8, |n| nodes.push(n));
        assert_eq!(nodes, vec![0, 1, 3]);
        // The last group is clipped to the node count.
        let d = Directory::with_topology(1, 33); // granularity 2
        let mut nodes = Vec::new();
        d.expand_mask(1 << 16, 33, |n| nodes.push(n));
        assert_eq!(nodes, vec![32]);
    }
}
