//! Randomized property tests for memory-hierarchy invariants, driven
//! by the in-tree deterministic [`Pcg32`].

use nw_memhier::{
    page_of_line, Cache, CacheConfig, Directory, LineTable, Tlb, WbOutcome, WriteBuffer,
    LINES_PER_PAGE,
};
use nw_sim::Pcg32;
use std::collections::BTreeMap;

const CASES: u64 = 48;

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        line_bytes: 64,
    })
}

/// After any access sequence, a line the cache claims to contain
/// hits, and the number of valid lines never exceeds capacity.
#[test]
fn cache_capacity_invariant() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E3A, case);
        let n = rng.gen_range(1, 300) as usize;
        let mut c = tiny_cache();
        for _ in 0..n {
            let l = rng.gen_range(0, 256);
            if let nw_memhier::LookupResult::Miss = c.access(l, false) {
                c.fill(l, false);
            }
            assert!(c.contains(l), "case {case}");
        }
        // Capacity: 1024/64 = 16 lines max.
        let present = (0u64..256).filter(|&l| c.contains(l)).count();
        assert!(present <= 16, "case {case}");
    }
}

/// fill() after a miss makes the next access to the same line hit.
#[test]
fn cache_fill_then_hit() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E3B, case);
        let l = rng.gen_range(0, 100_000);
        let mut c = tiny_cache();
        assert_eq!(c.access(l, false), nw_memhier::LookupResult::Miss);
        c.fill(l, false);
        assert_eq!(c.access(l, false), nw_memhier::LookupResult::Hit);
    }
}

/// Dirty data is never silently lost: every dirty line leaves the
/// cache only via a dirty eviction or an invalidate reporting dirty.
#[test]
fn cache_no_silent_dirty_loss() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E3C, case);
        let n = rng.gen_range(1, 400) as usize;
        let mut c = tiny_cache();
        let mut dirty_model = std::collections::HashSet::new();
        for _ in 0..n {
            let l = rng.gen_range(0, 64);
            let w = rng.gen_bool(0.5);
            match c.access(l, w) {
                nw_memhier::LookupResult::Hit => {
                    if w {
                        dirty_model.insert(l);
                    }
                }
                nw_memhier::LookupResult::Miss => {
                    if let Some(ev) = c.fill(l, w) {
                        // Model and cache must agree on victim dirtiness.
                        assert_eq!(
                            ev.dirty,
                            dirty_model.remove(&ev.line),
                            "case {case}: victim {} dirtiness mismatch",
                            ev.line
                        );
                    }
                    if w {
                        dirty_model.insert(l);
                    }
                }
            }
        }
        for &l in &dirty_model {
            assert!(
                c.is_dirty(l),
                "case {case}: model says {l} dirty, cache disagrees"
            );
        }
    }
}

/// TLB never exceeds capacity and lookups after insert hit.
#[test]
fn tlb_capacity() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E3D, case);
        let n = rng.gen_range(1, 200) as usize;
        let cap = rng.gen_range(1, 16) as usize;
        let mut tlb = Tlb::new(cap);
        for _ in 0..n {
            let v = rng.gen_range(0, 64);
            tlb.insert(v);
            assert!(tlb.lookup(v), "case {case}");
            assert!(tlb.len() <= cap, "case {case}");
        }
    }
}

/// Directory: after any transaction mix, a modified line has exactly
/// one sharer, and purging a page removes all its state.
#[test]
fn directory_single_writer() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E3E, case);
        let n = rng.gen_range(1, 300) as usize;
        let mut d = Directory::new();
        let mut lines_seen = Vec::new();
        for _ in 0..n {
            let line = rng.gen_range(0, 128);
            let node = rng.gen_below(8);
            lines_seen.push(line);
            if rng.gen_bool(0.5) {
                d.write(line, node);
                assert_eq!(d.modified_owner(line), Some(node), "case {case}");
                assert_eq!(d.sharers(line).count_ones(), 1, "case {case}");
            } else {
                d.read(line, node);
                assert!(d.sharers(line) & (1 << node) != 0, "case {case}");
            }
        }
        // Purge every page seen; directory must end empty.
        let mut pages: Vec<u64> = lines_seen.iter().map(|&l| page_of_line(l)).collect();
        pages.sort_unstable();
        pages.dedup();
        for p in pages {
            for (line, mask) in d.purge_page(p) {
                assert!(mask != 0, "case {case}");
                assert_eq!(page_of_line(line), p, "case {case}");
            }
        }
        assert_eq!(d.tracked_lines(), 0, "case {case}");
    }
}

/// Purged lines all belong to the requested page and are sorted.
#[test]
fn directory_purge_sorted() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E3F, case);
        let n = rng.gen_range(1, 100) as usize;
        let mut d = Directory::new();
        for _ in 0..n {
            let l = rng.gen_range(0, 4 * LINES_PER_PAGE);
            d.read(l, (l % 8) as u32);
        }
        let purged = d.purge_page(1);
        let mut prev = None;
        for (l, _) in purged {
            assert_eq!(page_of_line(l), 1, "case {case}");
            if let Some(p) = prev {
                assert!(l > p, "case {case}");
            }
            prev = Some(l);
        }
    }
}

/// Collision-heavy key generator for the [`LineTable`] model tests:
/// keys drawn from a few small clusters of consecutive lines (the
/// table's real load — lines of a page are consecutive) plus keys
/// exactly one table-stride apart, which land in the same slots.
fn collision_heavy_key(rng: &mut Pcg32) -> u64 {
    match rng.gen_below(3) {
        0 => rng.gen_range(0, 48),                      // dense cluster
        1 => 1_000_000 + rng.gen_range(0, 48) * 64,     // page-stride
        _ => rng.gen_range(0, 16) * 4096,               // power-of-two stride
    }
}

/// LineTable vs a `BTreeMap` reference model: any interleaving of
/// insert/overwrite/remove/lookup agrees with the model, including
/// under collision-heavy keys (backward-shift deletion must never
/// strand an entry behind a hole).
#[test]
fn linetable_matches_btreemap_model() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E41, case);
        let n = rng.gen_range(1, 600) as usize;
        let mut t = LineTable::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..n {
            let key = collision_heavy_key(&mut rng);
            match rng.gen_below(4) {
                0 | 1 => {
                    let val = rng.next_u64() | 1;
                    assert_eq!(
                        t.insert(key, val),
                        model.insert(key, val),
                        "case {case} step {step}: insert({key})"
                    );
                }
                2 => {
                    assert_eq!(
                        t.remove(key),
                        model.remove(&key),
                        "case {case} step {step}: remove({key})"
                    );
                }
                _ => {
                    assert_eq!(
                        t.get(key),
                        model.get(&key).copied(),
                        "case {case} step {step}: get({key})"
                    );
                }
            }
            assert_eq!(t.len(), model.len(), "case {case} step {step}");
        }
        // Every surviving key is reachable with the model's value.
        for (&k, &v) in &model {
            assert_eq!(t.get(k), Some(v), "case {case}: key {k} lost");
        }
    }
}

/// LineTable iteration visits exactly the model's entries (order-
/// insensitively) after heavy insert/remove churn, and `get_mut`
/// writes land where `get` reads.
#[test]
fn linetable_iteration_and_get_mut_match_model() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E42, case);
        let mut t = LineTable::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..rng.gen_range(1, 400) {
            let key = collision_heavy_key(&mut rng);
            if rng.gen_bool(0.6) {
                let val = rng.next_u64();
                t.insert(key, val);
                model.insert(key, val);
            } else {
                t.remove(key);
                model.remove(&key);
            }
        }
        // Mutate half the survivors through get_mut.
        for (i, (&k, v)) in model.iter_mut().enumerate() {
            if i % 2 == 0 {
                *v ^= 0xA5;
                *t.get_mut(k).expect("model key present") ^= 0xA5;
            }
        }
        let mut items: Vec<(u64, u64)> = t.iter().collect();
        items.sort_unstable();
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(items, expected, "case {case}");
    }
}

/// Write buffer: drained lines come out in insertion order and every
/// queued line is eventually drained exactly once.
#[test]
fn wbuffer_fifo() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x3E40, case);
        let n = rng.gen_range(1, 100) as usize;
        let mut wb = WriteBuffer::new(8);
        let mut expected = Vec::new();
        for _ in 0..n {
            let l = rng.gen_range(0, 32);
            match wb.insert(l) {
                WbOutcome::Queued => expected.push(l),
                WbOutcome::Coalesced => {}
                WbOutcome::Full => {
                    let drained = wb.drain_one().unwrap();
                    assert_eq!(drained, expected.remove(0), "case {case}");
                    assert_eq!(wb.insert(l), WbOutcome::Queued, "case {case}");
                    expected.push(l);
                }
            }
        }
        while let Some(d) = wb.drain_one() {
            assert_eq!(d, expected.remove(0), "case {case}");
        }
        assert!(expected.is_empty(), "case {case}");
    }
}
