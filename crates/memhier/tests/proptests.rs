//! Property-based tests for memory-hierarchy invariants.

use nw_memhier::{
    page_of_line, Cache, CacheConfig, Directory, Tlb, WbOutcome, WriteBuffer, LINES_PER_PAGE,
};
use proptest::prelude::*;

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        line_bytes: 64,
    })
}

proptest! {
    /// After any access sequence, a line the cache claims to contain
    /// hits, and the number of valid lines never exceeds capacity.
    #[test]
    fn cache_capacity_invariant(lines in proptest::collection::vec(0u64..256, 1..300)) {
        let mut c = tiny_cache();
        for &l in &lines {
            if let nw_memhier::LookupResult::Miss = c.access(l, false) {
                c.fill(l, false);
            }
            prop_assert!(c.contains(l));
        }
        // Capacity: 1024/64 = 16 lines max.
        let present = (0u64..256).filter(|&l| c.contains(l)).count();
        prop_assert!(present <= 16);
    }

    /// fill() after a miss makes the next access to the same line hit.
    #[test]
    fn cache_fill_then_hit(l in 0u64..100_000) {
        let mut c = tiny_cache();
        prop_assert_eq!(c.access(l, false), nw_memhier::LookupResult::Miss);
        c.fill(l, false);
        prop_assert_eq!(c.access(l, false), nw_memhier::LookupResult::Hit);
    }

    /// Dirty data is never silently lost: every dirty line leaves the
    /// cache only via a dirty eviction or an invalidate reporting dirty.
    #[test]
    fn cache_no_silent_dirty_loss(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..400)) {
        let mut c = tiny_cache();
        let mut dirty_model = std::collections::HashSet::new();
        for &(l, w) in &ops {
            match c.access(l, w) {
                nw_memhier::LookupResult::Hit => {
                    if w { dirty_model.insert(l); }
                }
                nw_memhier::LookupResult::Miss => {
                    if let Some(ev) = c.fill(l, w) {
                        // Model and cache must agree on victim dirtiness.
                        prop_assert_eq!(ev.dirty, dirty_model.remove(&ev.line),
                            "victim {} dirtiness mismatch", ev.line);
                    }
                    if w { dirty_model.insert(l); }
                }
            }
        }
        for &l in &dirty_model {
            prop_assert!(c.is_dirty(l), "model says {} dirty, cache disagrees", l);
        }
    }

    /// TLB never exceeds capacity and lookups after insert hit.
    #[test]
    fn tlb_capacity(ops in proptest::collection::vec(0u64..64, 1..200), cap in 1usize..16) {
        let mut tlb = Tlb::new(cap);
        for &v in &ops {
            tlb.insert(v);
            prop_assert!(tlb.lookup(v));
            prop_assert!(tlb.len() <= cap);
        }
    }

    /// Directory: after any transaction mix, a modified line has
    /// exactly one sharer, and purging a page removes all its state.
    #[test]
    fn directory_single_writer(ops in proptest::collection::vec((0u64..128, 0u32..8, any::<bool>()), 1..300)) {
        let mut d = Directory::new();
        for &(line, node, is_write) in &ops {
            if is_write {
                d.write(line, node);
                prop_assert_eq!(d.modified_owner(line), Some(node));
                prop_assert_eq!(d.sharers(line).count_ones(), 1);
            } else {
                d.read(line, node);
                prop_assert!(d.sharers(line) & (1 << node) != 0);
            }
        }
        // Purge every page seen; directory must end empty.
        let mut pages: Vec<u64> = ops.iter().map(|&(l, _, _)| page_of_line(l)).collect();
        pages.sort_unstable();
        pages.dedup();
        for p in pages {
            for (line, mask) in d.purge_page(p) {
                prop_assert!(mask != 0);
                prop_assert_eq!(page_of_line(line), p);
            }
        }
        prop_assert_eq!(d.tracked_lines(), 0);
    }

    /// Purged lines all belong to the requested page and are sorted.
    #[test]
    fn directory_purge_sorted(lines in proptest::collection::vec(0u64..(4 * LINES_PER_PAGE), 1..100)) {
        let mut d = Directory::new();
        for &l in &lines {
            d.read(l, (l % 8) as u32);
        }
        let purged = d.purge_page(1);
        let mut prev = None;
        for (l, _) in purged {
            prop_assert_eq!(page_of_line(l), 1);
            if let Some(p) = prev {
                prop_assert!(l > p);
            }
            prev = Some(l);
        }
    }

    /// Write buffer: drained lines come out in insertion order and
    /// every queued line is eventually drained exactly once.
    #[test]
    fn wbuffer_fifo(lines in proptest::collection::vec(0u64..32, 1..100)) {
        let mut wb = WriteBuffer::new(8);
        let mut expected = Vec::new();
        for &l in &lines {
            match wb.insert(l) {
                WbOutcome::Queued => expected.push(l),
                WbOutcome::Coalesced => {}
                WbOutcome::Full => {
                    let drained = wb.drain_one().unwrap();
                    prop_assert_eq!(drained, expected.remove(0));
                    prop_assert_eq!(wb.insert(l), WbOutcome::Queued);
                    expected.push(l);
                }
            }
        }
        while let Some(d) = wb.drain_one() {
            prop_assert_eq!(d, expected.remove(0));
        }
        prop_assert!(expected.is_empty());
    }
}
