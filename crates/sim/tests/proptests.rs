//! Randomized property tests for the simulation engine invariants,
//! driven by the in-tree deterministic [`Pcg32`] so the workspace
//! needs no external test dependencies. Each test sweeps a fixed set
//! of seeded cases; failures therefore reproduce exactly.

use nw_sim::stats::Tally;
use nw_sim::{EventQueue, Pcg32, Resource};

const CASES: u64 = 32;

/// Events always pop in non-decreasing time order, regardless of the
/// insertion order.
#[test]
fn queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51ED, case);
        let n = rng.gen_range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = 0;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}: time went backwards");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len(), "case {case}");
    }
}

/// Same-timestamp events pop in insertion (FIFO) order.
#[test]
fn queue_fifo_on_ties() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51EE, case);
        let n = rng.gen_range(1, 100) as usize;
        let t = rng.gen_range(0, 1000);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(t, i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some((t, i)), "case {case}");
        }
    }
}

/// The two-tier wheel/heap queue agrees pop-for-pop with a plain
/// binary-heap reference model under random interleavings of
/// schedule and pop, with delays straddling the wheel horizon. Also
/// checks `now()` stays monotone and every event comes back exactly
/// once.
#[test]
fn queue_matches_heap_reference_model() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let horizon = EventQueue::<usize>::wheel_horizon();
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F4, case);
        let mut q = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut id = 0usize;
        for _ in 0..rng.gen_range(50, 400) {
            if model.is_empty() || rng.gen_below(3) != 0 {
                // Near, boundary-straddling, or far-future delays.
                let delay = match rng.gen_below(4) {
                    0 => rng.gen_range(0, 64),
                    1 => rng.gen_range(0, horizon),
                    2 => horizon - 1 + rng.gen_range(0, 3),
                    _ => rng.gen_range(horizon, 8 * horizon),
                };
                let at = now + delay;
                q.schedule_at(at, id);
                model.push(Reverse((at, seq, id)));
                seq += 1;
                id += 1;
            } else {
                let Reverse((at, _, want)) = model.pop().expect("model non-empty");
                assert_eq!(q.pop(), Some((at, want)), "case {case}: wrong event");
                assert!(at >= now, "case {case}: time went backwards");
                now = at;
                assert_eq!(q.now(), now, "case {case}");
            }
        }
        // Drain: every remaining event must come out, in model order.
        while let Some(Reverse((at, _, want))) = model.pop() {
            assert_eq!(q.pop(), Some((at, want)), "case {case}: event lost");
        }
        assert_eq!(q.pop(), None, "case {case}: phantom event");
        assert!(q.is_empty(), "case {case}");
    }
}

/// Events clustered just below, at, and just beyond the wheel horizon
/// — the wheel/heap hand-off — are each delivered exactly once, in
/// timestamp order.
#[test]
fn queue_horizon_boundary_is_lossless() {
    let horizon = EventQueue::<usize>::wheel_horizon();
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F5, case);
        let mut q = EventQueue::new();
        let n = rng.gen_range(10, 200) as usize;
        let mut times = Vec::new();
        for i in 0..n {
            let at = match rng.gen_below(3) {
                0 => horizon - 1 - rng.gen_range(0, 64),
                1 => horizon + rng.gen_range(0, 64),
                _ => rng.gen_range(0, 4 * horizon),
            };
            q.schedule_at(at, i);
            times.push(at);
        }
        times.sort_unstable();
        let mut got = Vec::new();
        while let Some((t, _)) = q.pop() {
            got.push(t);
        }
        assert_eq!(got, times, "case {case}");
    }
}

/// Same-timestamp events stay FIFO even when some of them start life
/// in the far-future heap and migrate into the wheel later.
#[test]
fn queue_fifo_ties_survive_tier_migration() {
    let horizon = EventQueue::<usize>::wheel_horizon();
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F6, case);
        let mut q = EventQueue::new();
        let t = horizon + rng.gen_range(0, horizon); // far at schedule time
        let n = rng.gen_range(2, 50) as usize;
        // A near event first, so the tie group is scheduled while the
        // cursor is still far behind it.
        q.schedule_at(rng.gen_range(0, 64), usize::MAX);
        for i in 0..n {
            q.schedule_at(t, i);
        }
        let (_, first) = q.pop().expect("near event");
        assert_eq!(first, usize::MAX, "case {case}");
        for i in 0..n {
            assert_eq!(q.pop(), Some((t, i)), "case {case}: tie order broken");
        }
    }
}

/// A resource never grants overlapping service intervals and the busy
/// time equals the sum of requested durations.
#[test]
fn resource_grants_disjoint() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51EF, case);
        let n = rng.gen_range(1, 100) as usize;
        // Requests must be issued at non-decreasing times (as in a
        // simulation); sort by request time.
        let mut reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0, 10_000), rng.gen_range(1, 500)))
            .collect();
        reqs.sort_by_key(|r| r.0);
        let mut r = Resource::new("prop");
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for &(at, dur) in &reqs {
            let g = r.acquire(at, dur);
            assert!(g.start >= at, "case {case}: grant before request");
            assert!(g.start >= prev_end, "case {case}: grants overlap");
            assert_eq!(g.end, g.start + dur, "case {case}");
            prev_end = g.end;
            total += dur;
        }
        assert_eq!(r.busy_cycles(), total, "case {case}");
    }
}

/// Lemire sampling stays in bounds for arbitrary seeds and bounds.
#[test]
fn rng_gen_below_in_bounds() {
    for case in 0..CASES {
        let mut meta = Pcg32::new(0x51F0, case);
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let bound = meta.gen_range(1, 1_000_000) as u32;
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..50 {
            assert!(rng.gen_below(bound) < bound, "case {case}");
        }
    }
}

/// The RNG is a pure function of (seed, stream).
#[test]
fn rng_deterministic() {
    for case in 0..CASES {
        let mut meta = Pcg32::new(0x51F1, case);
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let mut a = Pcg32::new(seed, stream);
        let mut b = Pcg32::new(seed, stream);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64(), "case {case}");
        }
    }
}

/// Tally mean is always within [min, max].
#[test]
fn tally_mean_bounded() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F2, case);
        let n = rng.gen_range(1, 500) as usize;
        let samples: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 1_000_000_000)).collect();
        let mut t = Tally::new();
        for &s in &samples {
            t.add(s);
        }
        let mean = t.mean();
        assert!(mean >= t.min().unwrap() as f64 - 1e-9, "case {case}");
        assert!(mean <= t.max().unwrap() as f64 + 1e-9, "case {case}");
        assert_eq!(t.count(), samples.len() as u64, "case {case}");
    }
}

/// Merging tallies is equivalent to tallying the concatenation.
#[test]
fn tally_merge_equivalent() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F3, case);
        let nx = rng.gen_range(0, 100) as usize;
        let ny = rng.gen_range(0, 100) as usize;
        let xs: Vec<u64> = (0..nx).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let ys: Vec<u64> = (0..ny).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let mut a = Tally::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Tally::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        let mut c = Tally::new();
        for &v in xs.iter().chain(ys.iter()) {
            c.add(v);
        }
        assert_eq!(a.count(), c.count(), "case {case}");
        assert_eq!(a.sum(), c.sum(), "case {case}");
        assert_eq!(a.min(), c.min(), "case {case}");
        assert_eq!(a.max(), c.max(), "case {case}");
    }
}
