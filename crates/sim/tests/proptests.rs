//! Randomized property tests for the simulation engine invariants,
//! driven by the in-tree deterministic [`Pcg32`] so the workspace
//! needs no external test dependencies. Each test sweeps a fixed set
//! of seeded cases; failures therefore reproduce exactly.

use nw_sim::stats::Tally;
use nw_sim::{EventQueue, Pcg32, Resource};

const CASES: u64 = 32;

/// Events always pop in non-decreasing time order, regardless of the
/// insertion order.
#[test]
fn queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51ED, case);
        let n = rng.gen_range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = 0;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}: time went backwards");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len(), "case {case}");
    }
}

/// Same-timestamp events pop in insertion (FIFO) order.
#[test]
fn queue_fifo_on_ties() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51EE, case);
        let n = rng.gen_range(1, 100) as usize;
        let t = rng.gen_range(0, 1000);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(t, i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some((t, i)), "case {case}");
        }
    }
}

/// A resource never grants overlapping service intervals and the busy
/// time equals the sum of requested durations.
#[test]
fn resource_grants_disjoint() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51EF, case);
        let n = rng.gen_range(1, 100) as usize;
        // Requests must be issued at non-decreasing times (as in a
        // simulation); sort by request time.
        let mut reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0, 10_000), rng.gen_range(1, 500)))
            .collect();
        reqs.sort_by_key(|r| r.0);
        let mut r = Resource::new("prop");
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for &(at, dur) in &reqs {
            let g = r.acquire(at, dur);
            assert!(g.start >= at, "case {case}: grant before request");
            assert!(g.start >= prev_end, "case {case}: grants overlap");
            assert_eq!(g.end, g.start + dur, "case {case}");
            prev_end = g.end;
            total += dur;
        }
        assert_eq!(r.busy_cycles(), total, "case {case}");
    }
}

/// Lemire sampling stays in bounds for arbitrary seeds and bounds.
#[test]
fn rng_gen_below_in_bounds() {
    for case in 0..CASES {
        let mut meta = Pcg32::new(0x51F0, case);
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let bound = meta.gen_range(1, 1_000_000) as u32;
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..50 {
            assert!(rng.gen_below(bound) < bound, "case {case}");
        }
    }
}

/// The RNG is a pure function of (seed, stream).
#[test]
fn rng_deterministic() {
    for case in 0..CASES {
        let mut meta = Pcg32::new(0x51F1, case);
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let mut a = Pcg32::new(seed, stream);
        let mut b = Pcg32::new(seed, stream);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64(), "case {case}");
        }
    }
}

/// Tally mean is always within [min, max].
#[test]
fn tally_mean_bounded() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F2, case);
        let n = rng.gen_range(1, 500) as usize;
        let samples: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 1_000_000_000)).collect();
        let mut t = Tally::new();
        for &s in &samples {
            t.add(s);
        }
        let mean = t.mean();
        assert!(mean >= t.min().unwrap() as f64 - 1e-9, "case {case}");
        assert!(mean <= t.max().unwrap() as f64 + 1e-9, "case {case}");
        assert_eq!(t.count(), samples.len() as u64, "case {case}");
    }
}

/// Merging tallies is equivalent to tallying the concatenation.
#[test]
fn tally_merge_equivalent() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x51F3, case);
        let nx = rng.gen_range(0, 100) as usize;
        let ny = rng.gen_range(0, 100) as usize;
        let xs: Vec<u64> = (0..nx).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let ys: Vec<u64> = (0..ny).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let mut a = Tally::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Tally::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        let mut c = Tally::new();
        for &v in xs.iter().chain(ys.iter()) {
            c.add(v);
        }
        assert_eq!(a.count(), c.count(), "case {case}");
        assert_eq!(a.sum(), c.sum(), "case {case}");
        assert_eq!(a.min(), c.min(), "case {case}");
        assert_eq!(a.max(), c.max(), "case {case}");
    }
}
