//! Property-based tests for the simulation engine invariants.

use nw_sim::stats::Tally;
use nw_sim::{EventQueue, Pcg32, Resource};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of
    /// the insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Same-timestamp events pop in insertion (FIFO) order.
    #[test]
    fn queue_fifo_on_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((t, i)));
        }
    }

    /// A resource never grants overlapping service intervals and the
    /// busy time equals the sum of requested durations.
    #[test]
    fn resource_grants_disjoint(reqs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        // Requests must be issued at non-decreasing times (as in a
        // simulation); sort by request time.
        let mut reqs = reqs;
        reqs.sort_by_key(|r| r.0);
        let mut r = Resource::new("prop");
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for &(at, dur) in &reqs {
            let g = r.acquire(at, dur);
            prop_assert!(g.start >= at);
            prop_assert!(g.start >= prev_end);
            prop_assert_eq!(g.end, g.start + dur);
            prev_end = g.end;
            total += dur;
        }
        prop_assert_eq!(r.busy_cycles(), total);
    }

    /// Lemire sampling stays in bounds for arbitrary seeds and bounds.
    #[test]
    fn rng_gen_below_in_bounds(seed in any::<u64>(), stream in any::<u64>(), bound in 1u32..1_000_000) {
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..50 {
            prop_assert!(rng.gen_below(bound) < bound);
        }
    }

    /// The RNG is a pure function of (seed, stream).
    #[test]
    fn rng_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Pcg32::new(seed, stream);
        let mut b = Pcg32::new(seed, stream);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Tally mean is always within [min, max].
    #[test]
    fn tally_mean_bounded(samples in proptest::collection::vec(0u64..1_000_000_000, 1..500)) {
        let mut t = Tally::new();
        for &s in &samples {
            t.add(s);
        }
        let mean = t.mean();
        prop_assert!(mean >= t.min().unwrap() as f64 - 1e-9);
        prop_assert!(mean <= t.max().unwrap() as f64 + 1e-9);
        prop_assert_eq!(t.count(), samples.len() as u64);
    }

    /// Merging tallies is equivalent to tallying the concatenation.
    #[test]
    fn tally_merge_equivalent(xs in proptest::collection::vec(0u64..1_000_000, 0..100),
                              ys in proptest::collection::vec(0u64..1_000_000, 0..100)) {
        let mut a = Tally::new();
        for &x in &xs { a.add(x); }
        let mut b = Tally::new();
        for &y in &ys { b.add(y); }
        a.merge(&b);
        let mut c = Tally::new();
        for &v in xs.iter().chain(ys.iter()) { c.add(v); }
        prop_assert_eq!(a.count(), c.count());
        prop_assert_eq!(a.sum(), c.sum());
        prop_assert_eq!(a.min(), c.min());
        prop_assert_eq!(a.max(), c.max());
    }
}
