//! Structured event tracing: a bounded, allocation-stable recorder
//! for simulator-wide observability.
//!
//! The recorder is deliberately *dumb*: it stores fixed-size
//! [`TraceEvent`]s in a preallocated ring buffer and never interprets
//! them. Meaning (which subsystem a track group denotes, what the two
//! payload words carry per event name) is assigned by the consumer —
//! the NWCache machine maps groups to its five subsystems and exports
//! the buffer as a Chrome trace-event document (`nwcache::observe`).
//!
//! Design constraints, in priority order:
//!
//! 1. **behavior invariance** — recording must never influence the
//!    simulation. Events are plain-old-data copied in; the recorder
//!    owns no clocks, no RNG, and offers no feedback path.
//! 2. **bounded memory** — the buffer holds at most its configured
//!    capacity; older events are overwritten and counted in
//!    [`TraceBuffer::dropped`], so a week-long run traces its *tail*
//!    in O(capacity) space.
//! 3. **cheap when off** — the machine keeps the whole recorder
//!    behind an `Option`; the disabled cost at every hook is one
//!    branch on a `None`.

use crate::time::Time;

/// A track: one horizontal lane in the exported timeline.
///
/// `group` partitions tracks into subsystems (processes in the Chrome
/// trace model); `index` selects the lane within the group (a node, a
/// channel, a disk — whatever the group's unit is).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId {
    /// Track group (consumer-defined subsystem id).
    pub group: u8,
    /// Lane within the group (node / channel / disk index).
    pub index: u32,
}

impl TrackId {
    /// Shorthand constructor.
    pub fn new(group: u8, index: u32) -> Self {
        TrackId { group, index }
    }
}

/// One recorded event: an instant (`dur == 0`) or a span.
///
/// `name` is a `&'static str` so recording never allocates; the two
/// payload words carry event-specific detail (a page number, a byte
/// count, an outcome code) whose meaning is fixed per name by the
/// emitting subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time in pcycles.
    pub at: Time,
    /// Duration in pcycles; `0` marks an instant event.
    pub dur: Time,
    /// The lane this event belongs to.
    pub track: TrackId,
    /// Stable event name (e.g. `"mesh.page"`, `"ring.drain"`).
    pub name: &'static str,
    /// First payload word.
    pub arg0: u64,
    /// Second payload word.
    pub arg1: u64,
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// `record` is O(1) and allocation-free after construction; once the
/// buffer is full each new event overwrites the oldest one.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    /// Events overwritten because the buffer was full.
    dropped: u64,
    /// Total events ever offered to the buffer.
    recorded: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        TraceBuffer {
            events: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Append one event, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Instant-event shorthand.
    #[inline]
    pub fn instant(&mut self, at: Time, track: TrackId, name: &'static str, arg0: u64, arg1: u64) {
        self.record(TraceEvent {
            at,
            dur: 0,
            track,
            name,
            arg0,
            arg1,
        });
    }

    /// Span shorthand: `[start, end)` clamped to a non-negative length.
    #[inline]
    pub fn span(
        &mut self,
        start: Time,
        end: Time,
        track: TrackId,
        name: &'static str,
        arg0: u64,
        arg1: u64,
    ) {
        self.record(TraceEvent {
            at: start,
            dur: end.saturating_sub(start),
            track,
            name,
            arg0,
            arg1,
        });
    }

    /// Events currently held, in emission order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let (wrapped, recent) = self.events.split_at(self.head.min(self.events.len()));
        recent.iter().chain(wrapped.iter())
    }

    /// Drain the buffer into an owned, emission-ordered vector.
    pub fn into_events(self) -> Vec<TraceEvent> {
        let mut v = self.events;
        let mid = self.head.min(v.len());
        v.rotate_left(mid);
        v
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever offered (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Time, name: &'static str) -> TraceEvent {
        TraceEvent {
            at,
            dur: 0,
            track: TrackId::new(0, 0),
            name,
            arg0: 0,
            arg1: 0,
        }
    }

    #[test]
    fn records_in_order_under_capacity() {
        let mut b = TraceBuffer::new(8);
        for t in 0..5 {
            b.record(ev(t, "x"));
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.dropped(), 0);
        let times: Vec<Time> = b.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_and_keeps_the_tail() {
        let mut b = TraceBuffer::new(4);
        for t in 0..10 {
            b.record(ev(t, "x"));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6);
        assert_eq!(b.recorded(), 10);
        let times: Vec<Time> = b.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        assert_eq!(
            b.into_events().iter().map(|e| e.at).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn span_clamps_negative_durations() {
        let mut b = TraceBuffer::new(2);
        b.span(10, 7, TrackId::new(1, 2), "s", 0, 0);
        assert_eq!(b.iter().next().unwrap().dur, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        TraceBuffer::new(0);
    }
}
