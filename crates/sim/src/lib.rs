//! # nw-sim — discrete-event simulation engine
//!
//! The foundation of the NWCache reproduction: a deterministic
//! discrete-event simulation core providing
//!
//! * a simulated clock measured in **pcycles** (1 pcycle = 5 ns, the
//!   processor cycle of the paper's Table 1),
//! * a time-ordered [`EventQueue`] with stable FIFO tie-breaking,
//! * FIFO-served [`resource::Resource`]s used to model contention on
//!   buses, network links, disk arms and ring channels,
//! * a seedable, splittable PCG random-number stream ([`rng::Pcg32`]),
//! * lightweight statistics collectors ([`stats`]),
//! * a zero-dependency scoped thread pool ([`pool`]) for fanning
//!   independent simulations out across cores.
//!
//! Each simulation is single-threaded and fully deterministic: the
//! same sequence of `schedule` calls always produces the same sequence
//! of `pop`s, which the higher layers rely on for reproducible
//! experiments — and which makes sweeps embarrassingly parallel, since
//! a run's results cannot depend on what executes beside it.
//!
//! ```
//! use nw_sim::{EventQueue, Resource};
//!
//! // A bus serving two transfers, driven by an event loop.
//! let mut queue = EventQueue::new();
//! let mut bus = Resource::new("bus");
//! queue.schedule_at(0, "request-a");
//! queue.schedule_at(10, "request-b");
//! let mut done = Vec::new();
//! while let Some((t, ev)) = queue.pop() {
//!     let grant = bus.acquire(t, 100);
//!     done.push((ev, grant.end));
//! }
//! // The second request queued behind the first.
//! assert_eq!(done, vec![("request-a", 100), ("request-b", 200)]);
//! ```

pub mod atomic_write;
pub mod ckpt;
pub mod engine;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use atomic_write::write_atomic;
pub use ckpt::{CkptError, CkptReader, CkptWriter};
pub use engine::EventQueue;
pub use pool::JobPanic;
pub use resource::{Grant, Resource};
pub use rng::Pcg32;
pub use trace::{TraceBuffer, TraceEvent, TrackId};
pub use time::{Bandwidth, Time, CYCLES_PER_MSEC, CYCLES_PER_USEC, NS_PER_CYCLE};
