//! Deterministic random numbers for workloads and timing jitter.
//!
//! A small PCG-XSH-RR 32-bit generator, implemented directly so the
//! simulation carries no external RNG dependency and results are
//! reproducible bit-for-bit across toolchains.

/// PCG-XSH-RR 64/32 generator (O'Neill 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Different stream
    /// ids yield statistically independent sequences, which lets each
    /// simulated component own its own stream.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive an independent child stream, e.g. one per node.
    pub fn split(&mut self, stream: u64) -> Pcg32 {
        let seed = ((self.next_u32() as u64) << 32) | self.next_u32() as u64;
        Pcg32::new(seed, stream)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    pub fn gen_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        if span <= u32::MAX as u64 {
            lo + self.gen_below(span as u32) as u64
        } else {
            // Rejection sample over u64; span > 2^32 is rare here.
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let r = self.next_u64();
                if r <= zone {
                    return lo + r % span;
                }
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// The raw generator state `(state, inc)`, for checkpointing.
    pub fn state_parts(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuild a generator from [`Pcg32::state_parts`] output. The
    /// restored stream continues exactly where the saved one stopped.
    pub fn from_parts(state: u64, inc: u64) -> Self {
        Pcg32 { state, inc }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::new(42, 7);
        let mut b = Pcg32::new(42, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1, 0);
        let mut b = Pcg32::new(2, 0);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::new(1, 0);
        let mut b = Pcg32::new(1, 1);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_below_is_in_bounds() {
        let mut r = Pcg32::new(3, 3);
        for bound in [1u32, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_below_covers_small_range() {
        let mut r = Pcg32::new(5, 5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Pcg32::new(9, 0);
        for _ in 0..500 {
            let v = r.gen_range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = Pcg32::new(11, 2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::new(13, 1);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = Pcg32::new(7, 0);
        let mut parent2 = Pcg32::new(7, 0);
        let mut c1 = parent1.split(4);
        let mut c2 = parent2.split(4);
        for _ in 0..100 {
            assert_eq!(c1.next_u32(), c2.next_u32());
        }
        let mut d1 = parent1.split(5);
        assert_ne!(
            (0..8).map(|_| c1.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| d1.next_u32()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn state_parts_round_trip_continues_stream() {
        let mut a = Pcg32::new(17, 3);
        for _ in 0..123 {
            a.next_u32();
        }
        let (state, inc) = a.state_parts();
        let mut b = Pcg32::from_parts(state, inc);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn known_reference_values_stable() {
        // Pin the output so accidental algorithm changes are caught:
        // these values define this crate's stream forever.
        let mut r = Pcg32::new(0, 0);
        let got: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        let mut r2 = Pcg32::new(0, 0);
        let again: Vec<u32> = (0..4).map(|_| r2.next_u32()).collect();
        assert_eq!(got, again);
    }
}
