//! Atomic output-file writes shared by every artifact emitter.
//!
//! Every durable artifact the workspace produces — checkpoints, sweep
//! and bench JSON reports, Perfetto traces, recorded `nwtrace` files,
//! warm-state cache entries — is written through [`write_atomic`]: the
//! bytes land in a sibling temp file first and are renamed over the
//! target. `rename(2)` within one directory is atomic on every
//! platform we care about, so a concurrent reader (or a crash mid-
//! write) can only ever observe the previous complete file or the new
//! complete file, never a truncated hybrid. The `nwsim` and
//! `reproduce` binaries and the server's checkpoint cache all funnel
//! through this one helper instead of carrying private copies.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter distinguishing temp files when several threads
/// write the same target concurrently (two autosaving jobs, say): each
/// in-flight write gets its own temp name, so one thread's rename can
/// never ship another thread's half-written bytes.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: the data lands in a sibling
/// temp file first and is renamed over the target, so a crash mid-write
/// can never leave a truncated artifact at `path`, and concurrent
/// writers of the same path never interleave partial contents.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{seq}",
        std::process::id()
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("nw-atomic-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.bin");
        write_atomic(&target, b"first").unwrap();
        write_atomic(&target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let dir = std::env::temp_dir().join(format!("nw-atomic-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("contested.bin");
        let a: Vec<u8> = vec![0xAA; 64 * 1024];
        let b: Vec<u8> = vec![0xBB; 48 * 1024];
        std::thread::scope(|s| {
            let ta = s.spawn(|| {
                for _ in 0..50 {
                    write_atomic(&target, &a).unwrap();
                }
            });
            let tb = s.spawn(|| {
                for _ in 0..50 {
                    write_atomic(&target, &b).unwrap();
                }
            });
            // Reads racing the writers must always see one complete
            // payload, never a mix or a truncation.
            for _ in 0..200 {
                if let Ok(got) = std::fs::read(&target) {
                    assert!(got == a || got == b, "torn read: {} bytes", got.len());
                }
            }
            ta.join().unwrap();
            tb.join().unwrap();
        });
        let got = std::fs::read(&target).unwrap();
        assert!(got == a || got == b);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
