//! The event queue at the heart of the simulator.
//!
//! The queue is generic over the event payload type `E`; the machine
//! model in `nwcache-core` defines one large `enum Event` and drives a
//! `loop { queue.pop() -> dispatch }`. Determinism is guaranteed by a
//! monotonically increasing sequence number that breaks timestamp ties
//! in insertion order.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same timestamp are delivered in the order
/// they were scheduled (FIFO), which keeps multi-component protocols
/// deterministic without explicit priorities.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Time,
    scheduled: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation may never rewind.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedule `event` `delay` pcycles from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.delivered += 1;
        Some((entry.at, entry.event))
    }

    /// Peek at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events delivered via [`EventQueue::pop`].
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(10, 1u32);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule_in(5, 2);
        assert_eq!(q.pop(), Some((15, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.total_delivered(), 1);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    fn zero_delay_events_run_after_current() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "first");
        q.pop();
        q.schedule_in(0, "second");
        assert_eq!(q.pop(), Some((10, "second")));
    }
}
