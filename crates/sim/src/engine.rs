//! The event queue at the heart of the simulator.
//!
//! The queue is generic over the event payload type `E`; the machine
//! model in `nwcache-core` defines one large `enum Event` and drives a
//! `loop { queue.pop() -> dispatch }`. Determinism is guaranteed by a
//! monotonically increasing sequence number that breaks timestamp ties
//! in insertion order.
//!
//! ## Two-tier structure
//!
//! Most events in this simulator are *near-future*: cache and mesh
//! hops of a few to a few thousand pcycles. A comparison-based heap
//! pays `O(log n)` per operation for those even though the time axis
//! is almost sorted already. The queue therefore keeps two tiers:
//!
//! * a **calendar wheel** of [`WHEEL_SLOTS`] buckets, each
//!   [`BUCKET_WIDTH`] pcycles wide, covering the next
//!   `WHEEL_SLOTS * BUCKET_WIDTH` pcycles — insertion is `O(1)`
//!   (push onto the target bucket), and delivery walks the wheel
//!   forward, taking the `(time, seq)`-minimum of the small bucket
//!   at the cursor;
//! * a **far-future heap** for events beyond the wheel horizon (disk
//!   mechanics, watchdogs, staged fault injections). As the cursor
//!   advances, far events whose bucket has come inside the horizon
//!   migrate into the wheel before anything at the cursor is
//!   delivered, so an event can never be popped out of order across
//!   the tier boundary.
//!
//! Bucket `Vec`s are reused for the lifetime of the queue (they are
//! emptied, never dropped), so a steady-state simulation run performs
//! almost no queue allocation after warm-up.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of buckets in the calendar wheel (power of two).
const WHEEL_SLOTS: usize = 1024;
/// log2 of the bucket width in pcycles.
const BUCKET_SHIFT: u32 = 6;
/// Width of one wheel bucket in pcycles.
const BUCKET_WIDTH: Time = 1 << BUCKET_SHIFT;
/// Slot-index mask (`WHEEL_SLOTS` is a power of two).
const WHEEL_MASK: usize = WHEEL_SLOTS - 1;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Absolute bucket index on the (unbounded) time axis.
    fn bucket(&self) -> u64 {
        self.at >> BUCKET_SHIFT
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same timestamp are delivered in the order
/// they were scheduled (FIFO), which keeps multi-component protocols
/// deterministic without explicit priorities.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future tier: `wheel[b & WHEEL_MASK]` holds the events of
    /// absolute bucket `b` for every pending `b` in
    /// `[cursor, cursor + WHEEL_SLOTS)`. Pending buckets are all
    /// within one horizon of each other, so no slot ever mixes laps.
    wheel: Vec<Vec<Entry<E>>>,
    /// One bit per wheel slot (set = non-empty), so the delivery
    /// cursor finds the next occupied bucket with `trailing_zeros`
    /// instead of probing empty slots one by one.
    occupied: [u64; WHEEL_SLOTS / 64],
    /// Events currently stored in the wheel (across all buckets).
    wheel_events: usize,
    /// Absolute bucket index the delivery cursor is at. Equal to
    /// `now >> BUCKET_SHIFT` after every pop; may move further ahead
    /// while the wheel is empty and the far tier is being engaged.
    cursor: u64,
    /// Far-future tier: events beyond the wheel horizon at the time
    /// they were scheduled.
    far: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Time,
    scheduled: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-sized for roughly `pending` simultaneously
    /// outstanding events, so a simulation run does not grow the far
    /// tier incrementally.
    pub fn with_capacity(pending: usize) -> Self {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_SLOTS / 64],
            wheel_events: 0,
            cursor: 0,
            far: BinaryHeap::with_capacity(pending),
            seq: 0,
            now: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1 << (slot & 63);
    }

    fn unmark(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1 << (slot & 63));
    }

    /// First occupied slot at or (cyclically) after `start`. All
    /// pending buckets lie within one horizon of the cursor, so the
    /// cyclic-first set bit is the bucket with the smallest absolute
    /// index. `None` when the wheel is empty.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        const WORDS: usize = WHEEL_SLOTS / 64;
        let w0 = start >> 6;
        let first = self.occupied[w0] & (!0u64 << (start & 63));
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize);
        }
        for k in 1..=WORDS {
            let wi = (w0 + k) % WORDS;
            let word = self.occupied[wi];
            if word != 0 {
                return Some((wi << 6) + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the simulation may never rewind.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        let entry = Entry { at, seq, event };
        if entry.bucket() < self.cursor + WHEEL_SLOTS as u64 {
            let slot = entry.bucket() as usize & WHEEL_MASK;
            self.wheel[slot].push(entry);
            self.mark(slot);
            self.wheel_events += 1;
        } else {
            self.far.push(Reverse(entry));
        }
    }

    /// Schedule `event` `delay` pcycles from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.wheel_events == 0 {
            // Jump the cursor straight to the earliest far event (if
            // any) so the migration below brings it into the wheel.
            self.cursor = self.cursor.max(self.far.peek()?.0.bucket());
        }
        // Migrate far-tier events whose bucket the advancing cursor
        // has brought inside the horizon. Afterwards every far event
        // is strictly beyond every wheel event, so the next delivery
        // is guaranteed to be in the wheel.
        while let Some(Reverse(top)) = self.far.peek() {
            if top.bucket() >= self.cursor + WHEEL_SLOTS as u64 {
                break;
            }
            let Reverse(entry) = self.far.pop().expect("peeked");
            let slot = entry.bucket() as usize & WHEEL_MASK;
            self.wheel[slot].push(entry);
            self.mark(slot);
            self.wheel_events += 1;
        }
        // Jump to the first occupied bucket; one exists within the
        // horizon because wheel_events > 0 here.
        let cur_slot = self.cursor as usize & WHEEL_MASK;
        let slot = self.next_occupied(cur_slot).expect("wheel has events");
        self.cursor += ((slot + WHEEL_SLOTS - cur_slot) & WHEEL_MASK) as u64;
        let bucket = &mut self.wheel[slot];
        // The bucket spans BUCKET_WIDTH pcycles, so it can hold
        // several timestamps (and same-timestamp FIFO chains): take
        // the (time, seq) minimum.
        let mut best = 0;
        for i in 1..bucket.len() {
            if (bucket[i].at, bucket[i].seq) < (bucket[best].at, bucket[best].seq) {
                best = i;
            }
        }
        let entry = bucket.swap_remove(best);
        if self.wheel[slot].is_empty() {
            self.unmark(slot);
        }
        self.wheel_events -= 1;
        debug_assert!(entry.at >= self.now);
        debug_assert_eq!(entry.bucket(), self.cursor);
        self.now = entry.at;
        self.delivered += 1;
        Some((entry.at, entry.event))
    }

    /// Peek at the next event without popping it: the `(time, seq)`
    /// minimum across both tiers, i.e. exactly what [`EventQueue::pop`]
    /// would deliver next. Lets the parallel engine assemble
    /// same-timestamp rounds without committing to delivery.
    pub fn peek(&self) -> Option<(Time, &E)> {
        let far_best = self.far.peek().map(|Reverse(e)| e);
        let wheel_best = if self.wheel_events == 0 {
            None
        } else {
            let slot = self
                .next_occupied(self.cursor as usize & WHEEL_MASK)
                .expect("wheel has events");
            self.wheel[slot].iter().min_by_key(|e| (e.at, e.seq))
        };
        let best = match (far_best, wheel_best) {
            (Some(f), Some(w)) => {
                if (f.at, f.seq) < (w.at, w.seq) {
                    f
                } else {
                    w
                }
            }
            (Some(f), None) => f,
            (None, Some(w)) => w,
            (None, None) => return None,
        };
        Some((best.at, &best.event))
    }

    /// Peek at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        let far_min = self.far.peek().map(|Reverse(e)| e.at);
        if self.wheel_events == 0 {
            return far_min;
        }
        let slot = self
            .next_occupied(self.cursor as usize & WHEEL_MASK)
            .expect("wheel has events");
        let wheel_min = self.wheel[slot]
            .iter()
            .map(|e| e.at)
            .min()
            .expect("occupied slot");
        Some(match far_min {
            Some(f) if f < wheel_min => f,
            _ => wheel_min,
        })
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.wheel_events + self.far.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events delivered via [`EventQueue::pop`].
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// The wheel horizon in pcycles: events scheduled further than
    /// this past the cursor start out in the far tier. Exposed for
    /// tests that exercise the tier boundary.
    pub fn wheel_horizon() -> Time {
        WHEEL_SLOTS as Time * BUCKET_WIDTH
    }

    /// Every pending entry as `(at, seq, &event)` in delivery order,
    /// for checkpointing. The `(at, seq)` ordering is the queue's full
    /// delivery contract, so tier placement (wheel vs far) need not be
    /// recorded: [`EventQueue::ckpt_restore`] re-places each entry by
    /// the standard rule and delivery order is unchanged.
    pub fn ckpt_entries(&self) -> Vec<(Time, u64, &E)> {
        let mut v: Vec<(Time, u64, &E)> = self
            .wheel
            .iter()
            .flatten()
            .chain(self.far.iter().map(|Reverse(e)| e))
            .map(|e| (e.at, e.seq, &e.event))
            .collect();
        v.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        v
    }

    /// Queue bookkeeping for checkpointing:
    /// `(now, seq, cursor, scheduled, delivered)`.
    pub fn ckpt_counters(&self) -> (Time, u64, u64, u64, u64) {
        (self.now, self.seq, self.cursor, self.scheduled, self.delivered)
    }

    /// Reset the queue to a saved snapshot: restore the bookkeeping
    /// from [`EventQueue::ckpt_counters`] and re-insert `entries`
    /// (the decoded output of [`EventQueue::ckpt_entries`]) with their
    /// original timestamps and sequence numbers. Any current contents
    /// are discarded.
    pub fn ckpt_restore(
        &mut self,
        counters: (Time, u64, u64, u64, u64),
        entries: Vec<(Time, u64, E)>,
    ) {
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.occupied = [0; WHEEL_SLOTS / 64];
        self.wheel_events = 0;
        self.far.clear();
        let (now, seq, cursor, scheduled, delivered) = counters;
        self.now = now;
        self.seq = seq;
        self.cursor = cursor;
        self.scheduled = scheduled;
        self.delivered = delivered;
        for (at, eseq, event) in entries {
            let entry = Entry { at, seq: eseq, event };
            if entry.bucket() < self.cursor + WHEEL_SLOTS as u64 {
                let slot = entry.bucket() as usize & WHEEL_MASK;
                self.wheel[slot].push(entry);
                self.mark(slot);
                self.wheel_events += 1;
            } else {
                self.far.push(Reverse(entry));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(10, 1u32);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule_in(5, 2);
        assert_eq!(q.pop(), Some((15, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.schedule_at(1, ());
        q.schedule_at(2, ());
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.total_delivered(), 1);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    fn zero_delay_events_run_after_current() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "first");
        q.pop();
        q.schedule_in(0, "second");
        assert_eq!(q.pop(), Some((10, "second")));
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let h = EventQueue::<u32>::wheel_horizon();
        let mut q = EventQueue::new();
        // Both land in the far tier, out of order.
        q.schedule_at(3 * h, 2);
        q.schedule_at(2 * h + 7, 1);
        // This one is near.
        q.schedule_at(5, 0);
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), Some((2 * h + 7, 1)));
        assert_eq!(q.pop(), Some((3 * h, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cross_tier_ties_stay_fifo() {
        let h = EventQueue::<u32>::wheel_horizon();
        let t = 2 * h + 13;
        let mut q = EventQueue::new();
        // Scheduled while `t` is beyond the horizon: far tier.
        q.schedule_at(t, 0);
        q.schedule_at(h, 100);
        // Advance the clock so `t` comes inside the horizon...
        assert_eq!(q.pop(), Some((h, 100)));
        // ...then schedule more events at the *same* timestamp; these
        // go straight into the wheel. FIFO across tiers must hold.
        q.schedule_at(t, 1);
        q.schedule_at(t, 2);
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn wheel_wraps_many_laps() {
        // March the clock across many wheel laps with a stride that
        // hits every slot alignment.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut t = 0u64;
        for i in 0..5_000u32 {
            t += 37; // co-prime with the bucket width
            q.schedule_at(t, i);
            expect.push((t, i));
        }
        for e in expect {
            assert_eq!(q.pop(), Some(e));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_far_and_near_delivery() {
        let h = EventQueue::<u64>::wheel_horizon();
        let mut q = EventQueue::new();
        // A chain where each pop schedules the next event just past
        // the horizon — constantly exercising migration.
        q.schedule_at(1, 0);
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
            if id < 20 {
                q.schedule_at(t + h + 3, id + 1);
            }
        }
        assert_eq!(popped.len(), 21);
        for w in popped.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert_eq!(w[0].1 + 1, w[1].1);
        }
    }

    #[test]
    fn peek_prefers_earlier_far_event() {
        let h = EventQueue::<u32>::wheel_horizon();
        let mut q = EventQueue::new();
        // Far event at 1.5h (beyond horizon from t=0)...
        q.schedule_at(h + h / 2, 1);
        q.schedule_at(h / 2, 0);
        assert_eq!(q.pop(), Some((h / 2, 0)));
        // ...now schedule a *wheel* event later than the far one.
        q.schedule_at(h + h / 2 + BUCKET_WIDTH, 2);
        assert_eq!(q.peek_time(), Some(h + h / 2));
        assert_eq!(q.pop(), Some((h + h / 2, 1)));
        assert_eq!(q.pop(), Some((h + h / 2 + BUCKET_WIDTH, 2)));
    }

    #[test]
    fn peek_matches_pop_across_tiers() {
        let h = EventQueue::<u32>::wheel_horizon();
        let mut q = EventQueue::new();
        // Straddle tiers, with a cross-tier same-timestamp tie.
        q.schedule_at(2 * h + 13, 0); // far tier, lowest seq at its time
        q.schedule_at(5, 100);
        q.schedule_at(5, 101); // same-time FIFO in the wheel
        assert_eq!(q.pop(), Some((5, 100)));
        q.schedule_at(2 * h + 13, 1); // wheel tier now (clock advanced? no
                                      // — still far; either way peek must
                                      // prefer seq order at equal times)
        loop {
            let peeked = q.peek().map(|(t, &e)| (t, e));
            let popped = q.pop();
            assert_eq!(peeked, popped);
            if popped.is_none() {
                break;
            }
        }
    }

    #[test]
    fn ckpt_snapshot_resumes_identically() {
        let h = EventQueue::<u64>::wheel_horizon();
        // Build a queue with events straddling both tiers, pop some,
        // snapshot, and check a restored queue delivers the remainder
        // in exactly the original order.
        let mut q = EventQueue::new();
        for i in 0..200u64 {
            q.schedule_at(i * 37 % 500, i);
        }
        q.schedule_at(2 * h + 11, 1000);
        q.schedule_at(3 * h, 1001);
        for _ in 0..50 {
            q.pop();
        }
        q.schedule_in(5, 2000); // same-time FIFO across the snapshot
        q.schedule_in(5, 2001);

        let counters = q.ckpt_counters();
        let entries: Vec<(u64, u64, u64)> = q
            .ckpt_entries()
            .into_iter()
            .map(|(at, seq, &e)| (at, seq, e))
            .collect();
        let mut restored = EventQueue::new();
        restored.ckpt_restore(counters, entries);

        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        loop {
            let a = q.pop();
            let b = restored.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            // Scheduling after restore stays deterministic too.
            if q.now() % 7 == 0 {
                q.schedule_in(q.now() % 13 + 1, 9_999);
                restored.schedule_in(restored.now() % 13 + 1, 9_999);
            }
        }
        assert_eq!(restored.total_delivered(), q.total_delivered());
        assert_eq!(restored.total_scheduled(), q.total_scheduled());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = EventQueue::with_capacity(512);
        let mut b = EventQueue::new();
        for i in 0..100u64 {
            a.schedule_at(i * 97 % 1000, i);
            b.schedule_at(i * 97 % 1000, i);
        }
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop());
        }
        assert_eq!(b.pop(), None);
    }
}
