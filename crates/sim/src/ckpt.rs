//! Binary checkpoint primitives shared by every snapshottable layer.
//!
//! The `nwckpt-v1` container mirrors the `nwtrace-v1` codec: a magic /
//! version header, LEB128 varints for every scalar, and strict
//! rejection of malformed input (truncation, varint overflow, trailing
//! bytes). On top of that it adds what a checkpoint needs and a trace
//! does not:
//!
//! * **per-section length framing** — the file is a sequence of
//!   `(section id, byte length, payload)` records, so a reader can
//!   verify each subsystem consumed exactly its own bytes and a
//!   diff tool can align two files section by section;
//! * **a whole-file checksum** — FNV-1a 64 over everything before the
//!   trailing 8 checksum bytes, so a torn or bit-flipped file is
//!   rejected before any section is interpreted.
//!
//! The writer/reader pair here is deliberately dumb: it knows bytes,
//! varints and sections, nothing about machines. Each component
//! serializes itself with `ckpt_save(&self, &mut CkptWriter)` /
//! `ckpt_restore(&mut self, &mut CkptReader)` methods defined next to
//! its fields, and `nwcache-core` owns the section layout.

use crate::time::Time;

/// File magic for `nwckpt` checkpoints.
pub const MAGIC: [u8; 4] = *b"NWCK";
/// Frozen format version. Readers reject anything else.
pub const VERSION: u8 = 1;
/// Size of the trailing FNV-1a 64 checksum.
const CHECKSUM_BYTES: usize = 8;

/// Errors produced while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The file does not start with the `NWCK` magic.
    BadMagic,
    /// The version byte is not the supported [`VERSION`].
    BadVersion {
        /// Version byte found in the file.
        found: u8,
        /// Version this reader supports.
        expected: u8,
    },
    /// The whole-file checksum does not match the contents.
    BadChecksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read wanted.
        wanted: usize,
        /// Offset at which the read started.
        offset: usize,
    },
    /// A varint ran past 64 bits.
    VarintOverflow {
        /// Offset of the offending varint.
        offset: usize,
    },
    /// A section header named an unexpected section id.
    SectionMismatch {
        /// Section id the reader expected.
        expected: u32,
        /// Section id found in the file.
        found: u32,
        /// Offset of the section header.
        offset: usize,
    },
    /// A section's payload length overruns the file body, or a reader
    /// crossed the end of the section it was decoding.
    SectionOverrun {
        /// Id of the offending section.
        section: u32,
        /// Offset where the overrun was detected.
        offset: usize,
    },
    /// A section reader finished with payload bytes left over, or the
    /// file has bytes after the last section.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
    /// A decoded value is structurally impossible (bad enum tag,
    /// count mismatch, ...).
    Invalid {
        /// Offset just after the offending value.
        offset: usize,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not an nwckpt file (bad magic)"),
            CkptError::BadVersion { found, expected } => {
                write!(f, "unsupported nwckpt version {found} (expected {expected})")
            }
            CkptError::BadChecksum { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            CkptError::Truncated { wanted, offset } => {
                write!(f, "truncated checkpoint: wanted {wanted} bytes at offset {offset}")
            }
            CkptError::VarintOverflow { offset } => {
                write!(f, "varint overflow at offset {offset}")
            }
            CkptError::SectionMismatch {
                expected,
                found,
                offset,
            } => write!(
                f,
                "expected section {expected}, found section {found} at offset {offset}"
            ),
            CkptError::SectionOverrun { section, offset } => {
                write!(f, "section {section} overruns its frame at offset {offset}")
            }
            CkptError::TrailingBytes { offset } => {
                write!(f, "unconsumed bytes starting at offset {offset}")
            }
            CkptError::Invalid { offset, what } => {
                write!(f, "invalid checkpoint data at offset {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a 64 over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializer for an `nwckpt-v1` file.
///
/// All data lives inside sections: open one with
/// [`begin_section`](CkptWriter::begin_section), emit values, close it
/// with [`end_section`](CkptWriter::end_section), and call
/// [`finish`](CkptWriter::finish) to obtain the checksummed bytes.
#[derive(Debug)]
pub struct CkptWriter {
    buf: Vec<u8>,
    section: Option<u32>,
    payload: Vec<u8>,
}

impl Default for CkptWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl CkptWriter {
    /// A writer with the magic/version header already emitted.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        CkptWriter {
            buf,
            section: None,
            payload: Vec::new(),
        }
    }

    /// Open section `id`. Panics if a section is already open —
    /// sections never nest.
    pub fn begin_section(&mut self, id: u32) {
        assert!(self.section.is_none(), "section {id} opened inside another");
        self.section = Some(id);
        self.payload.clear();
    }

    /// Close the open section, framing its payload with id + length.
    pub fn end_section(&mut self) {
        let id = self.section.take().expect("no section open");
        put_varint(&mut self.buf, id as u64);
        put_varint(&mut self.buf, self.payload.len() as u64);
        self.buf.extend_from_slice(&self.payload);
    }

    fn out(&mut self) -> &mut Vec<u8> {
        assert!(self.section.is_some(), "checkpoint value outside a section");
        &mut self.payload
    }

    /// Emit a `u64` as a LEB128 varint.
    pub fn u64(&mut self, v: u64) {
        let out = self.out();
        put_varint(out, v);
    }

    /// Emit a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }

    /// Emit a `usize`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Emit a simulated time.
    pub fn time(&mut self, v: Time) {
        self.u64(v);
    }

    /// Emit a `bool` as one varint (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u64(v as u64);
    }

    /// Emit an `f64` via its IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Emit a `u128` as two `u64` halves (low, high).
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// Emit an `Option<u64>` as a presence flag plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.bool(false),
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
        }
    }

    /// Emit a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.out().extend_from_slice(v);
    }

    /// Emit a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Seal the file: append the FNV-1a 64 checksum and return the
    /// complete byte image.
    pub fn finish(self) -> Vec<u8> {
        assert!(self.section.is_none(), "unfinished section at finish()");
        let mut buf = self.buf;
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }
}

/// Deserializer for an `nwckpt-v1` file.
///
/// Construction verifies magic, version and checksum; sections are then
/// consumed in order with [`begin_section`](CkptReader::begin_section)
/// / [`end_section`](CkptReader::end_section), and
/// [`finish`](CkptReader::finish) asserts nothing is left over.
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// End of the file body (start of the trailing checksum).
    body_end: usize,
    /// End of the open section's payload; `body_end` outside sections.
    limit: usize,
    section: Option<u32>,
}

impl<'a> CkptReader<'a> {
    /// Validate the container (magic, version, checksum) and position
    /// the reader at the first section.
    pub fn new(buf: &'a [u8]) -> Result<Self, CkptError> {
        if buf.len() < MAGIC.len() + 1 + CHECKSUM_BYTES {
            return Err(CkptError::Truncated {
                wanted: MAGIC.len() + 1 + CHECKSUM_BYTES,
                offset: 0,
            });
        }
        if buf[..4] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = buf[4];
        if version != VERSION {
            return Err(CkptError::BadVersion {
                found: version,
                expected: VERSION,
            });
        }
        let body_end = buf.len() - CHECKSUM_BYTES;
        let stored = u64::from_le_bytes(buf[body_end..].try_into().expect("8 bytes"));
        let computed = fnv1a(&buf[..body_end]);
        if stored != computed {
            return Err(CkptError::BadChecksum { stored, computed });
        }
        Ok(CkptReader {
            buf,
            pos: MAGIC.len() + 1,
            body_end,
            limit: body_end,
            section: None,
        })
    }

    /// Current byte offset (for error context).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.limit {
            return Err(if self.limit == self.body_end {
                CkptError::Truncated {
                    wanted: n,
                    offset: self.pos,
                }
            } else {
                CkptError::SectionOverrun {
                    section: self.section.unwrap_or(0),
                    offset: self.pos,
                }
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(CkptError::VarintOverflow { offset: start });
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a `u32`, rejecting values that do not fit.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| CkptError::Invalid {
            offset: self.pos,
            what: format!("u32 out of range: {v}"),
        })
    }

    /// Read a `usize`.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CkptError::Invalid {
            offset: self.pos,
            what: format!("usize out of range: {v}"),
        })
    }

    /// Read a simulated time.
    pub fn time(&mut self) -> Result<Time, CkptError> {
        self.u64()
    }

    /// Read a `bool` (0/1).
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CkptError::Invalid {
                offset: self.pos,
                what: format!("bool tag {v}"),
            }),
        }
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u128` from two `u64` halves.
    pub fn u128(&mut self) -> Result<u128, CkptError> {
        let lo = self.u64()? as u128;
        let hi = self.u64()? as u128;
        Ok(lo | (hi << 64))
    }

    /// Read an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        let start = self.pos;
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CkptError::Invalid {
                offset: start,
                what: "string is not UTF-8".into(),
            })
    }

    /// Open the next section, requiring its id to be `expect`.
    pub fn begin_section(&mut self, expect: u32) -> Result<(), CkptError> {
        assert!(self.section.is_none(), "section {expect} opened inside another");
        let offset = self.pos;
        let id = self.u32()?;
        if id != expect {
            return Err(CkptError::SectionMismatch {
                expected: expect,
                found: id,
                offset,
            });
        }
        let len = self.usize()?;
        if self.pos + len > self.body_end {
            return Err(CkptError::SectionOverrun {
                section: id,
                offset: self.pos,
            });
        }
        self.section = Some(id);
        self.limit = self.pos + len;
        Ok(())
    }

    /// Close the open section, requiring its payload to be exactly
    /// consumed.
    pub fn end_section(&mut self) -> Result<(), CkptError> {
        self.section.take().expect("no section open");
        if self.pos != self.limit {
            return Err(CkptError::TrailingBytes { offset: self.pos });
        }
        self.limit = self.body_end;
        Ok(())
    }

    /// Bytes remaining in the open section's payload. Formats that
    /// append optional trailing fields to a section (newer writers
    /// only emit them when non-default) use this to decide whether to
    /// consume them — old checkpoints simply have none left.
    pub fn section_remaining(&self) -> usize {
        assert!(self.section.is_some(), "section_remaining outside a section");
        self.limit - self.pos
    }

    /// Read the next raw section header + payload without interpreting
    /// it (used by the structural validator and the diff tool).
    /// Returns `None` at the end of the body.
    pub fn next_raw_section(&mut self) -> Result<Option<(u32, &'a [u8])>, CkptError> {
        assert!(self.section.is_none(), "raw scan inside a section");
        if self.pos == self.body_end {
            return Ok(None);
        }
        let id = self.u32()?;
        let len = self.usize()?;
        if self.pos + len > self.body_end {
            return Err(CkptError::SectionOverrun {
                section: id,
                offset: self.pos,
            });
        }
        let payload = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(Some((id, payload)))
    }

    /// Assert the whole body was consumed.
    pub fn finish(self) -> Result<(), CkptError> {
        assert!(self.section.is_none(), "unfinished section at finish()");
        if self.pos != self.body_end {
            return Err(CkptError::TrailingBytes { offset: self.pos });
        }
        Ok(())
    }
}

/// LEB128-encode `v` into `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos`. Standalone helper for tools that walk raw section payloads
/// (the checkpoint diff) without a full [`CkptReader`].
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CkptError> {
    let start = *pos;
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if *pos >= buf.len() {
            return Err(CkptError::Truncated {
                wanted: 1,
                offset: *pos,
            });
        }
        let byte = buf[*pos];
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CkptError::VarintOverflow { offset: start });
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

pub use crate::atomic_write::write_atomic;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.begin_section(1);
        w.u64(0);
        w.u64(300);
        w.u128(u128::MAX - 5);
        w.opt_u64(Some(7));
        w.opt_u64(None);
        w.f64(0.25);
        w.str("hello");
        w.end_section();
        w.begin_section(2);
        w.bool(true);
        w.end_section();
        w.finish()
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let mut r = CkptReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        assert_eq!(r.u64().unwrap(), 0);
        assert_eq!(r.u64().unwrap(), 300);
        assert_eq!(r.u128().unwrap(), u128::MAX - 5);
        assert_eq!(r.opt_u64().unwrap(), Some(7));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.str().unwrap(), "hello");
        r.end_section().unwrap();
        r.begin_section(2).unwrap();
        assert!(r.bool().unwrap());
        r.end_section().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(CkptReader::new(&bytes).unwrap_err(), CkptError::BadMagic);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut w = CkptWriter::new();
        w.begin_section(1);
        w.u64(9);
        w.end_section();
        let mut bytes = w.finish();
        // Patch the version byte and re-seal the checksum so only the
        // version check can fire.
        bytes[4] = 99;
        let body_end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            CkptReader::new(&bytes).unwrap_err(),
            CkptError::BadVersion {
                found: 99,
                expected: VERSION
            }
        );
    }

    #[test]
    fn rejects_bit_flip_via_checksum() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            CkptReader::new(&bytes).unwrap_err(),
            CkptError::BadChecksum { .. }
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample();
        for cut in [0, 3, 5, bytes.len() - 9, bytes.len() - 1] {
            let err = CkptReader::new(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. } | CkptError::BadChecksum { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_section_mismatch_and_overrun() {
        let bytes = sample();
        let mut r = CkptReader::new(&bytes).unwrap();
        assert!(matches!(
            r.begin_section(7).unwrap_err(),
            CkptError::SectionMismatch {
                expected: 7,
                found: 1,
                ..
            }
        ));
        // Under-consuming a section is caught at end_section.
        let mut r = CkptReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        assert!(matches!(
            r.end_section().unwrap_err(),
            CkptError::TrailingBytes { .. }
        ));
        // Over-consuming is caught as a section overrun.
        let mut r = CkptReader::new(&bytes).unwrap();
        r.begin_section(2).unwrap_err(); // wrong id, section 1 is first
    }

    #[test]
    fn raw_section_scan_sees_all_sections() {
        let bytes = sample();
        let mut r = CkptReader::new(&bytes).unwrap();
        let (id1, p1) = r.next_raw_section().unwrap().unwrap();
        let (id2, p2) = r.next_raw_section().unwrap().unwrap();
        assert_eq!((id1, id2), (1, 2));
        assert!(!p1.is_empty() && !p2.is_empty());
        assert_eq!(r.next_raw_section().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut w = CkptWriter::new();
        w.begin_section(1);
        w.end_section();
        let mut bytes = w.finish();
        // Replace the (empty) section with a 10-byte varint of all
        // continuation bits — overflow. Rebuild: header + section id 1,
        // len 10, payload, checksum.
        bytes.truncate(5);
        put_varint(&mut bytes, 1);
        put_varint(&mut bytes, 10);
        bytes.extend_from_slice(&[0xff; 10]);
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let mut r = CkptReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        assert!(matches!(
            r.u64().unwrap_err(),
            CkptError::VarintOverflow { .. }
        ));
    }

    #[test]
    fn standalone_varint_helpers_agree() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

}
