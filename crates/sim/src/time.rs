//! Simulated time and bandwidth conversions.
//!
//! All simulated time is measured in **pcycles** — processor cycles of
//! the paper's 200 MHz machine (Table 1: 1 pcycle = 5 nsecs). Bandwidths
//! from the paper (MBytes/s) are converted into bytes-per-pcycle.

/// Simulated time in pcycles (1 pcycle = 5 ns).
pub type Time = u64;

/// Nanoseconds per pcycle (paper Table 1).
pub const NS_PER_CYCLE: u64 = 5;

/// Pcycles in one microsecond.
pub const CYCLES_PER_USEC: Time = 1_000 / NS_PER_CYCLE;

/// Pcycles in one millisecond.
pub const CYCLES_PER_MSEC: Time = 1_000 * CYCLES_PER_USEC;

/// A transfer-rate description used to turn byte counts into pcycles.
///
/// The paper quotes rates in MBytes/s; internally we keep bytes per
/// pcycle as a rational pair so transfer times are exact and
/// deterministic (no floating point in the simulated timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bandwidth {
    /// Bytes moved per `per_cycles` pcycles.
    bytes: u64,
    /// Number of pcycles in which `bytes` are moved.
    per_cycles: u64,
}

impl Bandwidth {
    /// Bandwidth from a rate in MBytes/second (decimal MB, as the paper
    /// uses: 1 MB = 10^6 bytes).
    ///
    /// With 1 pcycle = 5 ns there are 2 * 10^8 pcycles per second, so a
    /// rate of `r` MB/s moves `r * 10^6` bytes per `2 * 10^8` cycles,
    /// i.e. `r` bytes per 200 cycles.
    pub const fn from_mbytes_per_sec(mb_per_sec: u64) -> Self {
        Bandwidth {
            bytes: mb_per_sec,
            per_cycles: 200,
        }
    }

    /// Bandwidth from a rate in GBytes/second (decimal GB).
    pub const fn from_gbytes_per_sec_milli(gb_per_sec_x1000: u64) -> Self {
        // r GB/s = r * 10^9 B / 2*10^8 cyc = 5 r bytes/cycle.
        // Accept the rate scaled by 1000 so 1.25 GB/s is representable.
        Bandwidth {
            bytes: 5 * gb_per_sec_x1000,
            per_cycles: 1000,
        }
    }

    /// An explicit bytes-per-cycles ratio.
    pub const fn new(bytes: u64, per_cycles: u64) -> Self {
        assert!(bytes > 0 && per_cycles > 0);
        Bandwidth { bytes, per_cycles }
    }

    /// Pcycles required to transfer `nbytes` bytes, rounded up.
    pub const fn transfer_cycles(&self, nbytes: u64) -> Time {
        // ceil(nbytes * per_cycles / bytes)
        (nbytes * self.per_cycles).div_ceil(self.bytes)
    }

    /// Bytes per pcycle as a float, for reporting only.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes as f64 / self.per_cycles as f64
    }
}

/// Convert microseconds to pcycles.
pub const fn usecs(us: u64) -> Time {
    us * CYCLES_PER_USEC
}

/// Convert milliseconds to pcycles.
pub const fn msecs(ms: u64) -> Time {
    ms * CYCLES_PER_MSEC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_constants_match_paper() {
        // 1 pcycle = 5ns -> 200 cycles/us, 200_000 cycles/ms.
        assert_eq!(CYCLES_PER_USEC, 200);
        assert_eq!(CYCLES_PER_MSEC, 200_000);
        assert_eq!(usecs(52), 10_400); // ring round-trip from Table 1
        assert_eq!(msecs(4), 800_000); // rotational latency
    }

    #[test]
    fn memory_bus_rate() {
        // 800 MB/s = 4 bytes/pcycle -> a 4KB page takes 1024 cycles.
        let bw = Bandwidth::from_mbytes_per_sec(800);
        assert_eq!(bw.transfer_cycles(4096), 1024);
        assert!((bw.bytes_per_cycle() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn io_bus_rate() {
        // 300 MB/s = 1.5 bytes/pcycle -> 4KB page = 2731 cycles (ceil).
        let bw = Bandwidth::from_mbytes_per_sec(300);
        assert_eq!(bw.transfer_cycles(4096), 2731);
    }

    #[test]
    fn network_link_rate() {
        // 200 MB/s = 1 byte/pcycle.
        let bw = Bandwidth::from_mbytes_per_sec(200);
        assert_eq!(bw.transfer_cycles(4096), 4096);
        assert_eq!(bw.transfer_cycles(0), 0);
    }

    #[test]
    fn optical_ring_rate() {
        // 1.25 GB/s = 6.25 bytes/pcycle -> 4KB page ~ 656 cycles.
        let bw = Bandwidth::from_gbytes_per_sec_milli(1250);
        assert_eq!(bw.transfer_cycles(4096), 656);
    }

    #[test]
    fn disk_transfer_rate() {
        // 20 MB/s = 0.1 byte/pcycle -> 4KB page = 40960 cycles.
        let bw = Bandwidth::from_mbytes_per_sec(20);
        assert_eq!(bw.transfer_cycles(4096), 40_960);
    }

    #[test]
    fn transfer_rounds_up() {
        let bw = Bandwidth::new(3, 2); // 1.5 B/cycle
        assert_eq!(bw.transfer_cycles(1), 1);
        assert_eq!(bw.transfer_cycles(3), 2);
        assert_eq!(bw.transfer_cycles(4), 3);
    }
}
