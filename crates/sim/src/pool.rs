//! A zero-dependency scoped thread pool for embarrassingly parallel
//! simulation sweeps.
//!
//! Independent deterministic simulations have no shared state, so a
//! sweep over an experiment matrix can fan out across OS threads
//! while every per-run result stays bit-identical to a serial run.
//! The pool guarantees:
//!
//! * **deterministic ordering** — results come back indexed by task
//!   position, independent of which worker ran what and when;
//! * **bounded parallelism** — at most `jobs` tasks run at once (the
//!   previous harness spawned one thread per run, which thrashes on
//!   large grids);
//! * **panic isolation** — a panicking task becomes an `Err(`
//!   [`JobPanic`]`)` in its own slot; sibling tasks are unaffected
//!   and the sweep completes.
//!
//! Everything is built on `std::thread::scope`, an atomic work
//! cursor, and `catch_unwind` — no external crates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used when the caller passes `jobs == 0`: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A task that panicked instead of returning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the task in the submitted batch.
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads
    /// are preserved verbatim).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `tasks` on up to `jobs` worker threads (`0` = one per core)
/// and return their results in task order.
///
/// Task `i`'s result is always at index `i`, so callers can zip the
/// output against whatever described the batch. With `jobs <= 1` the
/// tasks run inline on the calling thread — same code path, same
/// ordering, no thread spawns — which is what the differential
/// determinism tests compare against.
pub fn run<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = tasks.len();
    let jobs = if jobs == 0 { default_jobs() } else { jobs }.min(n.max(1));
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let work = |_worker: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let task = tasks[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("task taken twice");
        let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(|p| JobPanic {
            index: i,
            message: panic_message(p),
        });
        *results[i].lock().expect("result slot poisoned") = Some(outcome);
    };

    if jobs <= 1 {
        work(0);
    } else {
        std::thread::scope(|s| {
            for w in 0..jobs {
                let work = &work;
                s.spawn(move || work(w));
            }
        });
    }

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [0, 1, 2, 7] {
            let tasks: Vec<_> = (0..25u64).map(|i| move || i * i).collect();
            let out = run(jobs, tasks);
            for (i, r) in out.iter().enumerate() {
                assert_eq!(*r, Ok((i * i) as u64), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn panicking_task_is_isolated() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom {}", 42)),
            Box::new(|| 3),
        ];
        let out = run(2, tasks);
        std::panic::set_hook(prev);
        assert_eq!(out[0], Ok(1));
        assert_eq!(
            out[1],
            Err(JobPanic {
                index: 1,
                message: "boom 42".into()
            })
        );
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..40u64).map(|i| move || i.wrapping_mul(0x9E37_79B9)).collect::<Vec<_>>();
        let serial = run(1, mk());
        let par = run(4, mk());
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_and_oversized() {
        let out: Vec<Result<u32, _>> = run(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
        // More workers than tasks is fine.
        let out = run(64, vec![|| 7u32]);
        assert_eq!(out, vec![Ok(7)]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
