//! A zero-dependency scoped thread pool for embarrassingly parallel
//! simulation sweeps.
//!
//! Independent deterministic simulations have no shared state, so a
//! sweep over an experiment matrix can fan out across OS threads
//! while every per-run result stays bit-identical to a serial run.
//! The pool guarantees:
//!
//! * **deterministic ordering** — results come back indexed by task
//!   position, independent of which worker ran what and when;
//! * **bounded parallelism** — at most `jobs` tasks run at once (the
//!   previous harness spawned one thread per run, which thrashes on
//!   large grids);
//! * **panic isolation** — a panicking task becomes an `Err(`
//!   [`JobPanic`]`)` in its own slot; sibling tasks are unaffected
//!   and the sweep completes.
//!
//! Everything is built on `std::thread::scope`, an atomic work
//! cursor, and `catch_unwind` — no external crates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used when the caller passes `jobs == 0`: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A task that panicked instead of returning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the task in the submitted batch.
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads
    /// are preserved verbatim).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `tasks` on up to `jobs` worker threads (`0` = one per core)
/// and return their results in task order.
///
/// Task `i`'s result is always at index `i`, so callers can zip the
/// output against whatever described the batch. With `jobs <= 1` the
/// tasks run inline on the calling thread — same code path, same
/// ordering, no thread spawns — which is what the differential
/// determinism tests compare against.
pub fn run<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = tasks.len();
    let jobs = if jobs == 0 { default_jobs() } else { jobs }.min(n.max(1));
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let work = |_worker: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let task = tasks[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("task taken twice");
        let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(|p| JobPanic {
            index: i,
            message: panic_message(p),
        });
        *results[i].lock().expect("result slot poisoned") = Some(outcome);
    };

    if jobs <= 1 {
        work(0);
    } else {
        std::thread::scope(|s| {
            for w in 0..jobs {
                let work = &work;
                s.spawn(move || work(w));
            }
        });
    }

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// A persistent crew of worker threads for *fine-grained* parallel
/// rounds.
///
/// [`run`](fn@run) spins up a fresh `thread::scope` per batch, which
/// is fine for sweeps (each task is a whole simulation) but far too
/// slow for the PDES engine, where a "batch" is one event round of a
/// few microseconds and there are millions of them per run. A
/// `RoundPool` keeps its workers parked on a condvar between rounds,
/// so dispatching a round costs one mutex round-trip instead of K
/// thread spawns.
///
/// The calling thread participates as a worker, so a pool built with
/// `RoundPool::new(k)` applies `k` threads to each round while only
/// `k - 1` OS threads exist. A panic inside any task is captured and
/// re-raised on the calling thread after the round completes (with
/// its original message, so debug assertions stay visible), and the
/// pool remains usable afterwards.
pub struct RoundPool {
    shared: std::sync::Arc<RpShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct RpShared {
    m: Mutex<RpState>,
    start: std::sync::Condvar,
    done: std::sync::Condvar,
}

struct RpState {
    /// The active round's task body, erased to a raw pointer. `None`
    /// between rounds; [`RoundPool::run`] blocks until every claimed
    /// index has finished before clearing it, which is what makes the
    /// lifetime erasure sound.
    job: Option<Job>,
    ntasks: usize,
    next: usize,
    pending: usize,
    shutdown: bool,
    panic: Option<String>,
}

#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));
// Safety: the pointee is `Sync` and `run` keeps it alive for as long
// as any worker can dereference it.
unsafe impl Send for Job {}

impl RoundPool {
    /// Build a pool that applies `threads` workers to each round
    /// (including the caller; `threads - 1` OS threads are spawned).
    pub fn new(threads: usize) -> RoundPool {
        let shared = std::sync::Arc::new(RpShared {
            m: Mutex::new(RpState {
                job: None,
                ntasks: 0,
                next: 0,
                pending: 0,
                shutdown: false,
                panic: None,
            }),
            start: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        });
        let workers = (1..threads.max(1))
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        RoundPool { shared, workers }
    }

    /// Number of threads applied to each round (workers + caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Run `f(0..ntasks)` across the pool and block until every task
    /// finished. Tasks are claimed dynamically; the caller runs tasks
    /// too. Panics (on the calling thread) if any task panicked.
    pub fn run(&self, ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        // Safety: erase the borrow's lifetime so workers can hold the
        // pointer. We do not return until `pending == 0`, i.e. until
        // no thread can still dereference it.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        {
            let mut st = self.shared.m.lock().expect("round pool poisoned");
            debug_assert!(st.job.is_none(), "RoundPool::run is not reentrant");
            st.job = Some(Job(f_static as *const _));
            st.ntasks = ntasks;
            st.next = 0;
            st.pending = ntasks;
        }
        self.shared.start.notify_all();
        loop {
            let mut st = self.shared.m.lock().expect("round pool poisoned");
            if st.next < st.ntasks {
                let i = st.next;
                st.next += 1;
                drop(st);
                Self::run_one(&self.shared, f, i);
                continue;
            }
            // Nothing left to claim: wait out stragglers, then close
            // the round.
            while st.pending > 0 {
                st = self.shared.done.wait(st).expect("round pool poisoned");
            }
            st.job = None;
            let p = st.panic.take();
            drop(st);
            if let Some(msg) = p {
                panic!("round task panicked: {msg}");
            }
            return;
        }
    }

    fn run_one(shared: &RpShared, f: &(dyn Fn(usize) + Sync), i: usize) {
        let r = catch_unwind(AssertUnwindSafe(|| f(i)));
        let mut st = shared.m.lock().expect("round pool poisoned");
        if let Err(p) = r {
            if st.panic.is_none() {
                st.panic = Some(panic_message(p));
            }
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_all();
        }
    }

    fn worker_loop(shared: &RpShared) {
        let mut st = shared.m.lock().expect("round pool poisoned");
        loop {
            if st.shutdown {
                return;
            }
            if let Some(job) = st.job {
                if st.next < st.ntasks {
                    let i = st.next;
                    st.next += 1;
                    drop(st);
                    // Safety: `run` keeps the pointee alive until the
                    // round's `pending` count we decrement below hits
                    // zero.
                    Self::run_one(shared, unsafe { &*job.0 }, i);
                    st = shared.m.lock().expect("round pool poisoned");
                    continue;
                }
            }
            st = shared.start.wait(st).expect("round pool poisoned");
        }
    }
}

/// A cooperative cancellation flag shared between a job and its
/// controller.
///
/// Long-running jobs (a streamed simulation on the server, say) check
/// the token between work chunks; the controlling side — a client
/// cancel frame, a deadline watchdog, a draining server — flips it
/// from any thread. Cloning shares the same flag.
#[derive(Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CancelToken({})", self.is_cancelled())
    }
}

/// Handle to one detached job running on its own OS thread.
///
/// Where [`run`](fn@run) fans a *batch* out and blocks for all of it,
/// `JobHandle` manages a single long-lived task that streams results
/// elsewhere: the server spawns one per accepted job, polls
/// [`is_finished`](JobHandle::is_finished) from its connection loop,
/// cancels via the shared [`CancelToken`], and finally
/// [`join`](JobHandle::join)s. A panic inside the job is caught and
/// surfaced as a [`JobPanic`] instead of poisoning the process.
pub struct JobHandle<T> {
    cancel: CancelToken,
    thread: std::thread::JoinHandle<Result<T, JobPanic>>,
}

/// Spawn `f` on a new thread with a fresh [`CancelToken`]. The token
/// is passed to the job (to poll) and kept on the handle (to trip).
pub fn spawn_job<T, F>(f: F) -> JobHandle<T>
where
    F: FnOnce(CancelToken) -> T + Send + 'static,
    T: Send + 'static,
{
    let cancel = CancelToken::new();
    let job_token = cancel.clone();
    let thread = std::thread::spawn(move || {
        catch_unwind(AssertUnwindSafe(move || f(job_token))).map_err(|p| JobPanic {
            index: 0,
            message: panic_message(p),
        })
    });
    JobHandle { cancel, thread }
}

impl<T> JobHandle<T> {
    /// The job's cancellation token (shared with the running closure).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Request cooperative cancellation of the job.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether the job's thread has finished (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Block until the job finishes and return its result. A panicked
    /// job comes back as `Err(JobPanic)` with the payload preserved.
    pub fn join(self) -> Result<T, JobPanic> {
        match self.thread.join() {
            Ok(r) => r,
            // The closure's own panic was already caught; reaching
            // this arm would need the thread to die outside
            // catch_unwind, which std does not do.
            Err(p) => Err(JobPanic {
                index: 0,
                message: panic_message(p),
            }),
        }
    }
}

impl Drop for RoundPool {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.m.lock() {
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [0, 1, 2, 7] {
            let tasks: Vec<_> = (0..25u64).map(|i| move || i * i).collect();
            let out = run(jobs, tasks);
            for (i, r) in out.iter().enumerate() {
                assert_eq!(*r, Ok((i * i) as u64), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn panicking_task_is_isolated() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom {}", 42)),
            Box::new(|| 3),
        ];
        let out = run(2, tasks);
        std::panic::set_hook(prev);
        assert_eq!(out[0], Ok(1));
        assert_eq!(
            out[1],
            Err(JobPanic {
                index: 1,
                message: "boom 42".into()
            })
        );
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mk = || (0..40u64).map(|i| move || i.wrapping_mul(0x9E37_79B9)).collect::<Vec<_>>();
        let serial = run(1, mk());
        let par = run(4, mk());
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_and_oversized() {
        let out: Vec<Result<u32, _>> = run(4, Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
        // More workers than tasks is fine.
        let out = run(64, vec![|| 7u32]);
        assert_eq!(out, vec![Ok(7)]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn round_pool_runs_every_task_across_rounds() {
        let pool = RoundPool::new(4);
        assert_eq!(pool.threads(), 4);
        for round in 0..200usize {
            let n = 1 + round % 9;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} task {i}");
            }
        }
    }

    #[test]
    fn round_pool_single_thread_and_empty_rounds() {
        let pool = RoundPool::new(1);
        assert_eq!(pool.threads(), 1);
        pool.run(0, &|_| panic!("never claimed"));
        let sum = AtomicUsize::new(0);
        pool.run(5, &|i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn job_handle_runs_cancels_and_joins() {
        // A cooperative job that counts until cancelled.
        let h = spawn_job(|tok: CancelToken| {
            let mut n = 0u64;
            while !tok.is_cancelled() {
                n += 1;
                std::thread::yield_now();
                if n > 50_000_000 {
                    break; // safety net; cancellation arrives long before
                }
            }
            n
        });
        assert!(!h.cancel_token().is_cancelled());
        h.cancel();
        let n = h.join().expect("job completed");
        assert!(n >= 1);

        // A finishing job needs no cancellation.
        let h = spawn_job(|_| 42u32);
        assert_eq!(h.join(), Ok(42));
    }

    #[test]
    fn job_handle_catches_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let h = spawn_job::<u32, _>(|_| panic!("job blew up"));
        let err = h.join().expect_err("panic surfaces as JobPanic");
        std::panic::set_hook(prev);
        assert!(err.message.contains("job blew up"), "{err}");
    }

    #[test]
    fn round_pool_propagates_panics_and_survives() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = RoundPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|i| {
                if i == 1 {
                    panic!("lane {i} diverged");
                }
            });
        }));
        std::panic::set_hook(prev);
        let msg = panic_message(caught.expect_err("panic must propagate"));
        assert!(msg.contains("lane 1 diverged"), "{msg}");
        // The pool is still usable after a panicked round.
        let sum = AtomicUsize::new(0);
        pool.run(4, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }
}
