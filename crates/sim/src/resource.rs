//! FIFO contention model for shared hardware resources.
//!
//! Buses, network links, disk arms and ring channels are all modelled
//! as [`Resource`]s: a request of duration `d` issued at time `t` is
//! granted the interval `[max(t, next_free), max(t, next_free) + d)`.
//! This is the classic "server with an implicit FIFO queue" abstraction
//! used by timing simulators — precise enough to capture queueing
//! delay and utilization without simulating individual queue entries.

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::time::Time;

/// The interval granted to a single request on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service starts (>= request time).
    pub start: Time,
    /// When service completes (start + duration).
    pub end: Time,
}

impl Grant {
    /// Queueing delay experienced before service started.
    pub fn wait(&self, requested_at: Time) -> Time {
        self.start - requested_at
    }
}

/// A FIFO-served shared resource with utilization accounting.
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    next_free: Time,
    busy_cycles: Time,
    wait_cycles: Time,
    acquisitions: u64,
}

impl Resource {
    /// A new, idle resource. `name` is used in statistics reports.
    pub fn new(name: &'static str) -> Self {
        Resource {
            name,
            next_free: 0,
            busy_cycles: 0,
            wait_cycles: 0,
            acquisitions: 0,
        }
    }

    /// Resource name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserve the resource for `duration` cycles, requested at `now`.
    ///
    /// Returns the granted service interval. The caller is responsible
    /// for scheduling its completion event at `grant.end`.
    pub fn acquire(&mut self, now: Time, duration: Time) -> Grant {
        let start = self.next_free.max(now);
        let end = start + duration;
        self.next_free = end;
        self.busy_cycles += duration;
        self.wait_cycles += start - now;
        self.acquisitions += 1;
        Grant { start, end }
    }

    /// Like [`Resource::acquire`] but the request only holds the
    /// resource if it can start immediately; otherwise returns `None`
    /// and the resource is untouched. Used for opportunistic work such
    /// as background prefetches that yield to demand traffic.
    pub fn try_acquire(&mut self, now: Time, duration: Time) -> Option<Grant> {
        if self.next_free > now {
            return None;
        }
        Some(self.acquire(now, duration))
    }

    /// The earliest time a new request issued at `now` would start.
    pub fn earliest_start(&self, now: Time) -> Time {
        self.next_free.max(now)
    }

    /// True if a request at `now` would be served without waiting.
    pub fn is_idle_at(&self, now: Time) -> bool {
        self.next_free <= now
    }

    /// Total cycles of granted service time.
    pub fn busy_cycles(&self) -> Time {
        self.busy_cycles
    }

    /// Total cycles requests spent queueing.
    pub fn wait_cycles(&self) -> Time {
        self.wait_cycles
    }

    /// Number of grants issued.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Utilization in `[0, 1]` over the first `horizon` cycles.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy_cycles.min(horizon) as f64 / horizon as f64
    }

    /// Mean queueing delay per acquisition.
    pub fn mean_wait(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.wait_cycles as f64 / self.acquisitions as f64
        }
    }

    /// Serialize the dynamic state (the name comes from construction).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.time(self.next_free);
        w.time(self.busy_cycles);
        w.time(self.wait_cycles);
        w.u64(self.acquisitions);
    }

    /// Overlay dynamic state saved by [`Resource::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.next_free = r.time()?;
        self.busy_cycles = r.time()?;
        self.wait_cycles = r.time()?;
        self.acquisitions = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new("bus");
        let g = r.acquire(100, 50);
        assert_eq!(g, Grant { start: 100, end: 150 });
        assert_eq!(g.wait(100), 0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = Resource::new("bus");
        let g1 = r.acquire(0, 100);
        let g2 = r.acquire(10, 100);
        assert_eq!(g1.end, 100);
        assert_eq!(g2.start, 100);
        assert_eq!(g2.end, 200);
        assert_eq!(g2.wait(10), 90);
        assert_eq!(r.wait_cycles(), 90);
        assert_eq!(r.busy_cycles(), 200);
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = Resource::new("bus");
        r.acquire(0, 10);
        let g = r.acquire(100, 10);
        assert_eq!(g.start, 100);
        assert!(r.is_idle_at(110));
        assert!(!r.is_idle_at(105));
    }

    #[test]
    fn try_acquire_respects_busy() {
        let mut r = Resource::new("disk");
        r.acquire(0, 100);
        assert_eq!(r.try_acquire(50, 10), None);
        let g = r.try_acquire(100, 10).unwrap();
        assert_eq!(g.start, 100);
    }

    #[test]
    fn utilization_and_mean_wait() {
        let mut r = Resource::new("bus");
        r.acquire(0, 100);
        r.acquire(0, 100);
        assert!((r.utilization(400) - 0.5).abs() < 1e-12);
        assert!((r.mean_wait() - 50.0).abs() < 1e-12);
        assert_eq!(r.acquisitions(), 2);
    }

    #[test]
    fn zero_duration_grant_is_instant() {
        let mut r = Resource::new("bus");
        let g = r.acquire(5, 0);
        assert_eq!(g.start, 5);
        assert_eq!(g.end, 5);
        assert!(r.is_idle_at(5));
    }

    #[test]
    fn earliest_start_previews_queue() {
        let mut r = Resource::new("bus");
        r.acquire(0, 1000);
        assert_eq!(r.earliest_start(10), 1000);
        assert_eq!(r.earliest_start(2000), 2000);
    }
}
