//! Statistics collectors used throughout the simulator.

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::time::Time;

/// A running tally: count, sum, min, max. The workhorse for "average
/// swap-out time"-style metrics (paper Tables 3 and 4).
///
/// `PartialEq`/`Eq` compare the full internal state (count, sums,
/// extrema), which is what the differential-determinism tests use to
/// assert that parallel and serial sweeps are bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tally {
    n: u64,
    sum: u128,
    sum_sq: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    ///
    /// The running sums saturate instead of overflowing: a handful of
    /// samples near `u64::MAX` would otherwise blow through even the
    /// `u128` accumulator for the sum of squares. Saturation keeps the
    /// count and extrema exact and is deterministic, so the
    /// bit-identity comparisons stay valid; only `mean`/`variance`
    /// become approximations in that astronomical regime.
    pub fn add(&mut self, v: u64) {
        self.n += 1;
        self.sum = self.sum.saturating_add(v as u128);
        self.sum_sq = self.sum_sq.saturating_add((v as u128) * (v as u128));
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0 if no samples.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Population variance, or 0 with fewer than two samples. Clamped
    /// to be non-negative: the `E[x²] − E[x]²` form can dip slightly
    /// below zero from floating-point rounding when all samples are
    /// equal and large.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq as f64 / self.n as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Serialize the full internal state.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.n);
        w.u128(self.sum);
        w.u128(self.sum_sq);
        w.opt_u64(self.min);
        w.opt_u64(self.max);
    }

    /// Overlay state saved by [`Tally::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.n = r.u64()?;
        self.sum = r.u128()?;
        self.sum_sq = r.u128()?;
        self.min = r.opt_u64()?;
        self.max = r.opt_u64()?;
        Ok(())
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Power-of-two bucketed latency histogram (bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, bucket 0 also holds zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    tally: Tally,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range (64 buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            tally: Tally::new(),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn add(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.tally.add(v);
    }

    /// Count in bucket `i` (samples in `[2^i, 2^{i+1})`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Underlying tally (count/mean/min/max).
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Approximate p-th percentile using bucket lower bounds; good
    /// enough for reporting latency distributions.
    ///
    /// Contract (pinned by unit tests):
    /// * empty histogram → 0 for every `p`;
    /// * `p` is clamped into `[0, 100]`; NaN is treated as 100;
    /// * the rank is clamped to at least one sample, so `p = 0`
    ///   returns the first non-empty bucket's lower bound (the bucket
    ///   holding the minimum), not an unconditional 0;
    /// * `p = 100` lands in the last non-empty bucket — including the
    ///   top bucket for samples ≥ 2^63.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.tally.count();
        if n == 0 {
            return 0;
        }
        let p = if p.is_nan() { 100.0 } else { p.clamp(0.0, 100.0) };
        let target = (((p / 100.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.tally.max().unwrap_or(0)
    }

    /// Serialize the buckets and underlying tally.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.buckets.len());
        for &b in &self.buckets {
            w.u64(b);
        }
        self.tally.ckpt_save(w);
    }

    /// Overlay state saved by [`Histogram::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.buckets.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("histogram has {n} buckets, expected {}", self.buckets.len()),
            });
        }
        for b in &mut self.buckets {
            *b = r.u64()?;
        }
        self.tally.ckpt_restore(r)
    }
}

/// A fixed-interval time series: call [`TimeSeries::record`] with a
/// monotonically advancing clock and a value; one sample is kept per
/// interval (the last value observed in it). Used to trace quantities
/// like ring occupancy over a run without unbounded memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval: Time,
    samples: Vec<(Time, u64)>,
}

impl TimeSeries {
    /// A series sampling once per `interval` pcycles.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: Time) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        TimeSeries {
            interval,
            samples: Vec::new(),
        }
    }

    /// Record `value` at time `t`. Values within the same interval
    /// overwrite each other (last writer wins); out-of-order times are
    /// clamped into the latest interval.
    pub fn record(&mut self, t: Time, value: u64) {
        let bucket = t / self.interval;
        match self.samples.last_mut() {
            Some((last, v)) if *last >= bucket => *v = value,
            _ => self.samples.push((bucket, value)),
        }
    }

    /// The recorded `(time, value)` samples, times in pcycles.
    pub fn samples(&self) -> impl Iterator<Item = (Time, u64)> + '_ {
        self.samples.iter().map(move |&(b, v)| (b * self.interval, v))
    }

    /// Number of samples kept.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<u64> {
        self.samples.iter().map(|&(_, v)| v).max()
    }
}

/// A bounded, self-downsampling time series.
///
/// Behaves like [`TimeSeries`] — one sample per interval, last writer
/// wins — but holds at most `cap` samples: when a run outlives the
/// current resolution, the interval **doubles** and adjacent samples
/// merge (last writer wins per coarser bucket), halving the series in
/// place. Memory is therefore O(cap) no matter how long the run or how
/// often the traced quantity changes, while early and late samples
/// keep a uniform (if coarsened) spacing.
///
/// Downsampling is a pure function of the recorded `(t, value)`
/// sequence, so two runs producing the same samples produce the same
/// series — the differential-determinism suite compares these for
/// equality (`PartialEq` is full-state, including the final interval).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedSeries {
    interval: Time,
    cap: usize,
    samples: Vec<(Time, u64)>,
}

impl BoundedSeries {
    /// A series starting at one sample per `interval` pcycles, holding
    /// at most `cap` samples.
    ///
    /// # Panics
    /// Panics if `interval` is zero or `cap < 2` (a cap of one cannot
    /// halve).
    pub fn new(interval: Time, cap: usize) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        assert!(cap >= 2, "sample cap must be at least 2");
        BoundedSeries {
            interval,
            cap,
            samples: Vec::new(),
        }
    }

    /// Record `value` at time `t`. Same-interval values overwrite each
    /// other; out-of-order times fold into the latest interval; hitting
    /// the cap doubles the interval and merges.
    pub fn record(&mut self, t: Time, value: u64) {
        let bucket = t / self.interval;
        match self.samples.last_mut() {
            Some((last, v)) if *last >= bucket => *v = value,
            _ => self.samples.push((bucket, value)),
        }
        // A single doubling may not merge anything (e.g. samples in
        // every other interval), so coarsen until back under the cap.
        while self.samples.len() > self.cap {
            self.coarsen();
        }
    }

    /// Double the interval and merge samples into the coarser buckets.
    fn coarsen(&mut self) {
        self.interval = self.interval.saturating_mul(2);
        let mut out = 0;
        for i in 0..self.samples.len() {
            let (b, v) = self.samples[i];
            let nb = b / 2;
            if out > 0 && self.samples[out - 1].0 == nb {
                self.samples[out - 1].1 = v;
            } else {
                self.samples[out] = (nb, v);
                out += 1;
            }
        }
        self.samples.truncate(out);
    }

    /// The recorded `(time, value)` samples at the current resolution.
    pub fn samples(&self) -> impl Iterator<Item = (Time, u64)> + '_ {
        self.samples.iter().map(move |&(b, v)| (b * self.interval, v))
    }

    /// Current sampling interval (≥ the constructed one; doubles under
    /// pressure).
    pub fn interval(&self) -> Time {
        self.interval
    }

    /// Maximum number of samples ever held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of samples kept.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<u64> {
        self.samples.iter().map(|&(_, v)| v).max()
    }

    /// Serialize the current interval (it doubles under pressure) and
    /// the raw bucket samples. The capacity is construction config.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.time(self.interval);
        w.usize(self.samples.len());
        for &(b, v) in &self.samples {
            w.time(b);
            w.u64(v);
        }
    }

    /// Overlay state saved by [`BoundedSeries::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let interval = r.time()?;
        if interval == 0 {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: "bounded series interval is zero".into(),
            });
        }
        let n = r.usize()?;
        if n > self.cap {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("bounded series holds {n} samples, cap is {}", self.cap),
            });
        }
        self.interval = interval;
        self.samples.clear();
        for _ in 0..n {
            let b = r.time()?;
            let v = r.u64()?;
            self.samples.push((b, v));
        }
        Ok(())
    }
}

/// A set of named counters for event/traffic accounting.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero if new.
    pub fn bump(&mut self, name: &'static str, delta: u64) {
        for e in &mut self.entries {
            if e.0 == name {
                e.1 += delta;
                return;
            }
        }
        self.entries.push((name, delta));
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.0 == name)
            .map_or(0, |e| e.1)
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }
}

/// Per-category cycle accounting for one processor.
///
/// Mirrors the paper's Figure 3/4 decomposition: `NoFree`, `Transit`,
/// `Fault`, `TLB` and `Other` (busy + cache miss + synchronization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Stall waiting for a free page frame (swap-outs outstanding).
    pub no_free: Time,
    /// Waiting for a page another node is already bringing in.
    pub transit: Time,
    /// Page fault service time (disk or ring read on the critical path).
    pub fault: Time,
    /// TLB miss handling and TLB shootdown interrupts.
    pub tlb: Time,
    /// Everything else: compute, cache misses, synchronization.
    pub other: Time,
}

impl CycleBreakdown {
    /// Sum of all categories — the processor's total execution time.
    pub fn total(&self) -> Time {
        self.no_free + self.transit + self.fault + self.tlb + self.other
    }

    /// Element-wise accumulate.
    pub fn accumulate(&mut self, other: &CycleBreakdown) {
        self.no_free += other.no_free;
        self.transit += other.transit;
        self.fault += other.fault;
        self.tlb += other.tlb;
        self.other += other.other;
    }

    /// Serialize all five categories.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.time(self.no_free);
        w.time(self.transit);
        w.time(self.fault);
        w.time(self.tlb);
        w.time(self.other);
    }

    /// Overlay state saved by [`CycleBreakdown::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        self.no_free = r.time()?;
        self.transit = r.time()?;
        self.fault = r.time()?;
        self.tlb = r.time()?;
        self.other = r.time()?;
        Ok(())
    }

    /// Each category as a fraction of `denom` cycles (for the
    /// normalized stacked bars of Figures 3 and 4).
    pub fn normalized(&self, denom: Time) -> [f64; 5] {
        let d = denom.max(1) as f64;
        [
            self.no_free as f64 / d,
            self.transit as f64 / d,
            self.fault as f64 / d,
            self.tlb as f64 / d,
            self.other as f64 / d,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basics() {
        let mut t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        t.add(10);
        t.add(20);
        t.add(30);
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum(), 60);
        assert!((t.mean() - 20.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(10));
        assert_eq!(t.max(), Some(30));
    }

    #[test]
    fn tally_variance_and_stddev() {
        let mut t = Tally::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            t.add(v);
        }
        // Classic example: population variance 4, stddev 2.
        assert!((t.variance() - 4.0).abs() < 1e-9);
        assert!((t.stddev() - 2.0).abs() < 1e-9);
        let mut single = Tally::new();
        single.add(10);
        assert_eq!(single.variance(), 0.0);
    }

    #[test]
    fn tally_merge() {
        let mut a = Tally::new();
        a.add(1);
        a.add(5);
        let mut b = Tally::new();
        b.add(10);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(10));
        assert_eq!(a.min(), Some(1));
        let mut empty = Tally::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(1024);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(10), 1); // 1024
        assert_eq!(h.tally().count(), 5);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.add(v);
        }
        assert!(h.percentile(50.0) <= h.percentile(90.0));
        assert!(h.percentile(90.0) <= h.percentile(100.0));
        assert_eq!(Histogram::new().percentile(99.0), 0);
    }

    #[test]
    fn histogram_percentile_edge_contract() {
        // Empty histogram: 0 for every p, including the weird ones.
        let empty = Histogram::new();
        for p in [0.0, 50.0, 100.0, -3.0, 250.0, f64::NAN] {
            assert_eq!(empty.percentile(p), 0);
        }

        // p = 0 must land in the minimum's bucket, not return 0
        // unconditionally: all samples here are >= 1024.
        let mut h = Histogram::new();
        for v in [1024u64, 2048, 4096] {
            h.add(v);
        }
        assert_eq!(h.percentile(0.0), 1 << 10);
        // p = 100 lands in the last non-empty bucket's lower bound.
        assert_eq!(h.percentile(100.0), 1 << 12);
        // Out-of-range / NaN p clamps rather than panics or underflows.
        assert_eq!(h.percentile(-10.0), h.percentile(0.0));
        assert_eq!(h.percentile(500.0), h.percentile(100.0));
        assert_eq!(h.percentile(f64::NAN), h.percentile(100.0));
    }

    #[test]
    fn histogram_percentile_single_bucket_saturation() {
        // Every sample in one bucket: all percentiles agree.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.add(100); // bucket 6: [64, 128)
        }
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 1 << 6);
        }
    }

    #[test]
    fn histogram_percentile_overflow_bucket() {
        // Samples at the top of the u64 range live in bucket 63.
        let mut h = Histogram::new();
        h.add(u64::MAX);
        h.add(u64::MAX - 1);
        h.add(1);
        assert_eq!(h.percentile(0.0), 0); // min's bucket: [1, 2) => lower bound... bucket 0
        assert_eq!(h.percentile(100.0), 1u64 << 63);
        assert_eq!(h.percentile(99.0), 1u64 << 63);
    }

    #[test]
    fn tally_variance_never_negative() {
        // Large equal samples: the E[x²]−E[x]² form loses precision and
        // can go fractionally negative without the clamp.
        let mut t = Tally::new();
        for _ in 0..7 {
            t.add((1u64 << 53) + 1);
        }
        assert!(t.variance() >= 0.0);
        assert!(t.stddev() >= 0.0);
        assert!(!t.stddev().is_nan());
    }

    #[test]
    fn bounded_series_matches_time_series_under_cap() {
        let mut ts = TimeSeries::new(100);
        let mut bs = BoundedSeries::new(100, 64);
        for (t, v) in [(0, 1), (50, 2), (150, 3), (320, 9)] {
            ts.record(t, v);
            bs.record(t, v);
        }
        let a: Vec<(u64, u64)> = ts.samples().collect();
        let b: Vec<(u64, u64)> = bs.samples().collect();
        assert_eq!(a, b);
        assert_eq!(bs.interval(), 100);
    }

    #[test]
    fn bounded_series_coarsens_under_pressure() {
        let mut bs = BoundedSeries::new(10, 8);
        for i in 0..1000u64 {
            bs.record(i * 10, i);
        }
        assert!(bs.len() <= 8, "len {} exceeds cap", bs.len());
        assert!(bs.interval() > 10, "interval never doubled");
        // Last value survives downsampling (last writer wins).
        let last = bs.samples().last().unwrap();
        assert_eq!(last.1, 999);
        assert_eq!(bs.max_value(), Some(999));
    }

    #[test]
    fn bounded_series_sparse_samples_still_bounded() {
        // Samples in every other interval: one doubling merges nothing,
        // so the cap enforcement must iterate.
        let mut bs = BoundedSeries::new(1, 4);
        for i in 0..64u64 {
            bs.record(i * 2, i);
        }
        assert!(bs.len() <= 4);
        assert_eq!(bs.samples().last().unwrap().1, 63);
    }

    #[test]
    fn bounded_series_deterministic() {
        let run = || {
            let mut bs = BoundedSeries::new(7, 16);
            for i in 0..500u64 {
                bs.record(i * 13, i.wrapping_mul(2654435761) % 97);
            }
            bs
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bounded_series_zero_interval_rejected() {
        BoundedSeries::new(0, 8);
    }

    #[test]
    fn time_series_buckets() {
        let mut ts = TimeSeries::new(100);
        ts.record(0, 1);
        ts.record(50, 2); // same bucket: overwrite
        ts.record(150, 3);
        ts.record(320, 9);
        let v: Vec<(u64, u64)> = ts.samples().collect();
        assert_eq!(v, vec![(0, 2), (100, 3), (300, 9)]);
        assert_eq!(ts.max_value(), Some(9));
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }

    #[test]
    fn time_series_out_of_order_clamps() {
        let mut ts = TimeSeries::new(10);
        ts.record(100, 5);
        ts.record(90, 7); // earlier time: folded into latest bucket
        let v: Vec<(u64, u64)> = ts.samples().collect();
        assert_eq!(v, vec![(100, 7)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn time_series_zero_interval_rejected() {
        TimeSeries::new(0);
    }

    #[test]
    fn counters_bump_and_get() {
        let mut c = Counters::new();
        c.bump("faults", 1);
        c.bump("faults", 2);
        c.bump("swaps", 5);
        assert_eq!(c.get("faults"), 3);
        assert_eq!(c.get("swaps"), 5);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn breakdown_total_and_normalize() {
        let b = CycleBreakdown {
            no_free: 10,
            transit: 20,
            fault: 30,
            tlb: 15,
            other: 25,
        };
        assert_eq!(b.total(), 100);
        let n = b.normalized(200);
        assert!((n.iter().sum::<f64>() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_accumulate() {
        let mut a = CycleBreakdown::default();
        let b = CycleBreakdown {
            no_free: 1,
            transit: 2,
            fault: 3,
            tlb: 4,
            other: 5,
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.total(), 30);
        assert_eq!(a.fault, 6);
    }
}
