//! Randomized property tests for mesh routing and timing invariants,
//! driven by the in-tree deterministic [`Pcg32`].

use nw_mesh::{route_xy, Coord, Mesh, MeshConfig};
use nw_sim::Pcg32;

const CASES: u64 = 64;

/// Every XY route has Manhattan length and ends at the destination.
#[test]
fn routes_reach_destination() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xE54, case);
        let w = rng.gen_range(1, 8) as u32;
        let h = rng.gen_range(1, 8) as u32;
        let n = w * h;
        let src = rng.gen_below(n);
        let dst = rng.gen_below(n);
        let path = route_xy(w, h, src, dst);
        let a = Coord::of(w, src);
        let b = Coord::of(w, dst);
        assert_eq!(path.len() as u32, a.manhattan(&b), "case {case}");
        // Replaying the route starting at src must visit exactly the
        // routers in the path in order.
        for (i, &(router, _)) in path.iter().enumerate() {
            assert!(
                router < n,
                "case {case}: router {router} out of mesh at step {i}"
            );
        }
        if let Some(&(first, _)) = path.first() {
            assert_eq!(first, src, "case {case}");
        }
    }
}

/// Message arrival is never earlier than the uncontended latency, and
/// queue wait is consistent with it.
#[test]
fn arrival_bounded_below() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xE55, case);
        let sends = rng.gen_range(1, 50) as usize;
        let mut m = Mesh::new(MeshConfig::paper_default());
        let mut now = 0;
        for _ in 0..sends {
            let src = rng.gen_below(8);
            let dst = rng.gen_below(8);
            let bytes = rng.gen_range(1, 8192);
            let base = m.uncontended_latency(src, dst, bytes);
            let d = m.send(now, src, dst, bytes);
            assert!(d.arrival >= now + base, "case {case}: arrival too early");
            assert_eq!(d.arrival, now + base + d.wait, "case {case}");
            now += 10;
        }
    }
}

/// Total bytes carried equals the sum of message sizes.
#[test]
fn byte_accounting_exact() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xE56, case);
        let n = rng.gen_range(0, 40) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 10_000)).collect();
        let mut m = Mesh::new(MeshConfig::paper_default());
        for (i, &b) in sizes.iter().enumerate() {
            let src = (i as u32) % 8;
            let dst = (i as u32 + 1) % 8;
            m.send(0, src, dst, b);
        }
        assert_eq!(m.bytes_carried(), sizes.iter().sum::<u64>(), "case {case}");
        assert_eq!(m.message_count(), sizes.len() as u64, "case {case}");
    }
}
