//! Property tests for mesh routing and timing invariants.

use nw_mesh::{route_xy, Coord, Mesh, MeshConfig};
use proptest::prelude::*;

proptest! {
    /// Every XY route has Manhattan length and ends at the destination.
    #[test]
    fn routes_reach_destination(w in 1u32..8, h in 1u32..8, s in 0u32..64, d in 0u32..64) {
        let n = w * h;
        let src = s % n;
        let dst = d % n;
        let path = route_xy(w, h, src, dst);
        let a = Coord::of(w, src);
        let b = Coord::of(w, dst);
        prop_assert_eq!(path.len() as u32, a.manhattan(&b));
        // Replaying the route starting at src must visit exactly the
        // routers in the path in order.
        for (i, &(router, _)) in path.iter().enumerate() {
            prop_assert!(router < n, "router {} out of mesh at step {}", router, i);
        }
        if let Some(&(first, _)) = path.first() {
            prop_assert_eq!(first, src);
        }
    }

    /// Message arrival is never earlier than the uncontended latency,
    /// and queue wait is consistent with it.
    #[test]
    fn arrival_bounded_below(sends in proptest::collection::vec((0u32..8, 0u32..8, 1u64..8192), 1..50)) {
        let mut m = Mesh::new(MeshConfig::paper_default());
        let mut now = 0;
        for &(src, dst, bytes) in &sends {
            let base = m.uncontended_latency(src, dst, bytes);
            let d = m.send(now, src, dst, bytes);
            prop_assert!(d.arrival >= now + base);
            prop_assert_eq!(d.arrival, now + base + d.wait);
            now += 10;
        }
    }

    /// Total bytes carried equals the sum of message sizes.
    #[test]
    fn byte_accounting_exact(sizes in proptest::collection::vec(0u64..10_000, 0..40)) {
        let mut m = Mesh::new(MeshConfig::paper_default());
        for (i, &b) in sizes.iter().enumerate() {
            let src = (i as u32) % 8;
            let dst = (i as u32 + 1) % 8;
            m.send(0, src, dst, b);
        }
        prop_assert_eq!(m.bytes_carried(), sizes.iter().sum::<u64>());
        prop_assert_eq!(m.message_count(), sizes.len() as u64);
    }
}
