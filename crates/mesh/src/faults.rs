//! Deterministic mesh message-fault injection.
//!
//! A [`MeshFaults`] injector decides, per protected control message,
//! whether the message is dropped in flight or arrives corrupted
//! (detected by the link CRC and discarded — behaviourally a drop,
//! counted separately). The machine model consults it only for
//! messages whose loss its recovery protocols can tolerate (swap
//! ACK/OK and ring cancel notifications); page payloads and the
//! remaining control plane are modelled as a reliable link layer.
//!
//! An injector with both rates at zero never draws from its RNG, so
//! inactive plans leave results bit-identical.

use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::Pcg32;

/// Fate of one control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    /// Delivered intact.
    Delivered,
    /// Lost in flight.
    Dropped,
    /// Arrived corrupted; the CRC check discards it.
    Corrupted,
}

/// Deterministic message-fault source for the mesh.
#[derive(Debug, Clone)]
pub struct MeshFaults {
    rng: Pcg32,
    drop_rate: f64,
    corrupt_rate: f64,
    dropped: u64,
    corrupted: u64,
}

impl MeshFaults {
    /// Build an injector from a seed and the two rates.
    pub fn new(seed: u64, drop_rate: f64, corrupt_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_rate), "drop_rate out of range");
        assert!(
            (0.0..=1.0).contains(&corrupt_rate),
            "corrupt_rate out of range"
        );
        MeshFaults {
            rng: Pcg32::new(seed, 0x4E57),
            drop_rate,
            corrupt_rate,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Whether any rate is nonzero.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0
    }

    /// Roll the fate of one message. Draws exactly one random number
    /// when active, none when inactive.
    pub fn roll(&mut self) -> MsgFault {
        if !self.is_active() {
            return MsgFault::Delivered;
        }
        let x = self.rng.gen_f64();
        if x < self.drop_rate {
            self.dropped += 1;
            MsgFault::Dropped
        } else if x < self.drop_rate + self.corrupt_rate {
            self.corrupted += 1;
            MsgFault::Corrupted
        } else {
            MsgFault::Delivered
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Serialize the RNG position and counters (rates are config).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        let (state, inc) = self.rng.state_parts();
        w.u64(state);
        w.u64(inc);
        w.u64(self.dropped);
        w.u64(self.corrupted);
    }

    /// Overlay state saved by [`MeshFaults::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let state = r.u64()?;
        let inc = r.u64()?;
        self.rng = Pcg32::from_parts(state, inc);
        self.dropped = r.u64()?;
        self.corrupted = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_never_drops() {
        let mut f = MeshFaults::new(1, 0.0, 0.0);
        assert!(!f.is_active());
        for _ in 0..1000 {
            assert_eq!(f.roll(), MsgFault::Delivered);
        }
    }

    #[test]
    fn deterministic_and_counted() {
        let mut a = MeshFaults::new(9, 0.05, 0.02);
        let mut b = MeshFaults::new(9, 0.05, 0.02);
        for _ in 0..10_000 {
            assert_eq!(a.roll(), b.roll());
        }
        assert_eq!(a.dropped(), b.dropped());
        assert_eq!(a.corrupted(), b.corrupted());
        assert!(a.dropped() > 0 && a.corrupted() > 0);
        // Rough rate check: 5% / 2% of 10k draws.
        assert!((300..700).contains(&a.dropped()), "dropped {}", a.dropped());
        assert!(
            (100..320).contains(&a.corrupted()),
            "corrupted {}",
            a.corrupted()
        );
    }
}
