//! Mesh topology and XY routing.

use crate::Dir;

/// A node identifier: `id = y * width + x`.
pub type NodeId = u32;

/// A mesh coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl Coord {
    /// Coordinate of `node` in a `width`-column mesh.
    pub fn of(width: u32, node: NodeId) -> Coord {
        Coord {
            x: node % width,
            y: node / width,
        }
    }

    /// Node id of this coordinate in a `width`-column mesh.
    pub fn id(&self, width: u32) -> NodeId {
        self.y * width + self.x
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(&self, other: &Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// Deterministic XY (dimension-order) route from `src` to `dst`:
/// travel along X first, then along Y. Returns the list of
/// `(router, output direction)` pairs traversed; empty when
/// `src == dst`.
///
/// # Panics
/// Panics if either node id is out of range for the mesh.
pub fn route_xy(width: u32, height: u32, src: NodeId, dst: NodeId) -> Vec<(NodeId, Dir)> {
    assert!(src < width * height, "src {src} out of range");
    assert!(dst < width * height, "dst {dst} out of range");
    let mut cur = Coord::of(width, src);
    let goal = Coord::of(width, dst);
    let mut path = Vec::with_capacity(cur.manhattan(&goal) as usize);
    while cur.x != goal.x {
        let dir = if goal.x > cur.x { Dir::East } else { Dir::West };
        path.push((cur.id(width), dir));
        cur.x = if goal.x > cur.x { cur.x + 1 } else { cur.x - 1 };
    }
    while cur.y != goal.y {
        let dir = if goal.y > cur.y { Dir::South } else { Dir::North };
        path.push((cur.id(width), dir));
        cur.y = if goal.y > cur.y { cur.y + 1 } else { cur.y - 1 };
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        for node in 0..8 {
            assert_eq!(Coord::of(4, node).id(4), node);
        }
    }

    #[test]
    fn route_length_is_manhattan() {
        for src in 0..8u32 {
            for dst in 0..8u32 {
                let a = Coord::of(4, src);
                let b = Coord::of(4, dst);
                assert_eq!(
                    route_xy(4, 2, src, dst).len() as u32,
                    a.manhattan(&b),
                    "src {src} dst {dst}"
                );
            }
        }
    }

    #[test]
    fn route_goes_x_first() {
        // 4x2 mesh: 0=(0,0) -> 5=(1,1): east then south.
        let p = route_xy(4, 2, 0, 5);
        assert_eq!(p, vec![(0, Dir::East), (1, Dir::South)]);
    }

    #[test]
    fn route_handles_west_and_north() {
        // 7=(3,1) -> 0=(0,0): west x3 then north.
        let p = route_xy(4, 2, 7, 0);
        assert_eq!(
            p,
            vec![
                (7, Dir::West),
                (6, Dir::West),
                (5, Dir::West),
                (4, Dir::North)
            ]
        );
    }

    #[test]
    fn empty_route_for_self() {
        assert!(route_xy(4, 2, 3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node() {
        route_xy(4, 2, 0, 8);
    }

    /// Check the routing invariants for every (src, dst) pair of a
    /// `width x height` mesh: the path length equals the Manhattan
    /// distance, every hop moves to an adjacent router, X is exhausted
    /// before Y turns (dimension order), and the walk ends at `dst`.
    fn check_mesh(width: u32, height: u32) {
        for src in 0..width * height {
            for dst in 0..width * height {
                let path = route_xy(width, height, src, dst);
                let a = Coord::of(width, src);
                let b = Coord::of(width, dst);
                assert_eq!(path.len() as u32, a.manhattan(&b), "{width}x{height} {src}->{dst}");
                let mut cur = a;
                let mut seen_y = false;
                for &(router, dir) in &path {
                    assert_eq!(router, cur.id(width), "{width}x{height} {src}->{dst}");
                    match dir {
                        Dir::East => cur.x += 1,
                        Dir::West => cur.x -= 1,
                        Dir::South => cur.y += 1,
                        Dir::North => cur.y -= 1,
                    }
                    let is_y = matches!(dir, Dir::South | Dir::North);
                    assert!(is_y || !seen_y, "{width}x{height} {src}->{dst}: Y before X done");
                    seen_y |= is_y;
                    assert!(cur.x < width && cur.y < height, "{width}x{height} {src}->{dst}");
                }
                assert_eq!(cur, b, "{width}x{height} {src}->{dst}");
            }
        }
    }

    #[test]
    fn route_invariants_hold_on_non_square_meshes() {
        // Degenerate (1-wide / 1-tall), skinny, and odd shapes.
        for (w, h) in [(1, 1), (1, 8), (8, 1), (3, 5), (16, 2), (2, 16), (5, 7)] {
            check_mesh(w, h);
        }
    }

    #[test]
    fn route_invariants_hold_through_1024_nodes() {
        // All pairs on the generated-topology shapes: 64, 256, and the
        // 1024-node cap (32x32 is ~1M pairs; the invariant check is
        // cheap enough to run them all).
        for (w, h) in [(8, 8), (16, 16), (32, 32), (64, 16), (4, 256)] {
            check_mesh(w, h);
        }
    }

    #[test]
    fn corner_routes_span_the_1024_node_mesh() {
        // 0=(0,0) -> 1023=(31,31): 31 east hops then 31 south hops.
        let p = route_xy(32, 32, 0, 1023);
        assert_eq!(p.len(), 62);
        assert!(p[..31].iter().all(|&(_, d)| d == Dir::East));
        assert!(p[31..].iter().all(|&(_, d)| d == Dir::South));
    }
}
