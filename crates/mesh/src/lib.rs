//! # nw-mesh — wormhole-routed 2-D mesh interconnect
//!
//! Models the "traditional scalable cache-coherent multiprocessor"
//! interconnect of the paper (§3.1): processors connected by a
//! wormhole-routed mesh. In the standard machine this network carries
//! *everything* — coherence traffic, page reads and page swap-outs;
//! with the NWCache, swap-outs (and ring read hits) leave this network,
//! which is where the contention reduction of Table 8 comes from.
//!
//! ## Timing model
//!
//! A message of `b` bytes from `src` to `dst` routed over `h` hops:
//!
//! * is XY-routed (X first, then Y — deadlock-free, deterministic),
//! * waits until every directed link on its path is free (wormhole
//!   routing holds the whole path while the worm advances),
//! * then occupies each link for `b / link_bandwidth` cycles,
//! * and arrives after an additional `h * switch_delay` pipeline
//!   latency plus a fixed network-interface overhead at each end.
//!
//! ```
//! use nw_mesh::{Mesh, MeshConfig};
//!
//! let mut mesh = Mesh::new(MeshConfig::paper_default());
//! // A 4 KB page from node 0 to node 7 (4 hops on the 4x2 mesh).
//! let d = mesh.send(0, 0, 7, 4096);
//! assert_eq!(d.arrival, mesh.uncontended_latency(0, 7, 4096));
//! // A second page on the same path queues behind the first.
//! let d2 = mesh.send(0, 0, 7, 4096);
//! assert!(d2.wait > 0);
//! ```

pub mod faults;
pub mod topology;

use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::stats::Tally;
use nw_sim::{Bandwidth, Resource, Time};
pub use faults::{MeshFaults, MsgFault};
pub use topology::{route_xy, Coord, NodeId};

/// Configuration of the mesh network.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: u32,
    /// Mesh height (rows).
    pub height: u32,
    /// Per-link bandwidth (paper Table 1: 200 MB/s).
    pub link_bandwidth: Bandwidth,
    /// Per-hop switch/router delay in pcycles.
    pub switch_delay: Time,
    /// Fixed network-interface overhead per message end in pcycles.
    pub ni_overhead: Time,
}

impl MeshConfig {
    /// The paper's 8-node configuration: a 4x2 mesh with 200 MB/s links.
    pub fn paper_default() -> Self {
        MeshConfig {
            width: 4,
            height: 2,
            link_bandwidth: Bandwidth::from_mbytes_per_sec(200),
            switch_delay: 4,
            ni_overhead: 20,
        }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }
}

/// Directions of the four directed output links of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// Outcome of submitting a message to the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the first flit left the source NI (after queueing).
    pub start: Time,
    /// When the last flit arrived at the destination NI.
    pub arrival: Time,
    /// Queueing delay before the path was free.
    pub wait: Time,
}

/// The mesh network state: one [`Resource`] per directed link.
#[derive(Debug)]
pub struct Mesh {
    cfg: MeshConfig,
    links: Vec<Resource>,
    messages: u64,
    bytes: u64,
    latency: Tally,
    wait: Tally,
}

impl Mesh {
    /// Build an idle mesh for `cfg`.
    pub fn new(cfg: MeshConfig) -> Self {
        let n = cfg.nodes() as usize;
        Mesh {
            cfg,
            links: (0..n * 4).map(|_| Resource::new("mesh-link")).collect(),
            messages: 0,
            bytes: 0,
            latency: Tally::new(),
            wait: Tally::new(),
        }
    }

    /// The configuration this mesh was built with.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    fn link_index(&self, node: NodeId, dir: Dir) -> usize {
        node as usize * 4 + dir.index()
    }

    /// The sequence of directed links used by a message `src -> dst`.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<(NodeId, Dir)> {
        route_xy(self.cfg.width, self.cfg.height, src, dst)
    }

    /// Submit a message and return its delivery timing.
    ///
    /// `src == dst` models a node-local message: only NI overhead, no
    /// link traversal or contention.
    pub fn send(&mut self, now: Time, src: NodeId, dst: NodeId, bytes: u64) -> Delivery {
        self.messages += 1;
        self.bytes += bytes;
        if src == dst {
            let arrival = now + 2 * self.cfg.ni_overhead;
            self.latency.add(arrival - now);
            self.wait.add(0);
            return Delivery {
                start: now,
                arrival,
                wait: 0,
            };
        }
        let path = self.path(src, dst);
        debug_assert!(!path.is_empty());
        let serv = self.cfg.link_bandwidth.transfer_cycles(bytes.max(1));
        let inject = now + self.cfg.ni_overhead;
        // Wormhole: the worm cannot advance until every link on the
        // path is free, then it holds each of them for the full
        // serialization time.
        let mut start = inject;
        for &(node, dir) in &path {
            let idx = self.link_index(node, dir);
            start = start.max(self.links[idx].earliest_start(inject));
        }
        for &(node, dir) in &path {
            let idx = self.link_index(node, dir);
            let g = self.links[idx].acquire(start, serv);
            debug_assert_eq!(g.start, start);
        }
        let hops = path.len() as u64;
        let arrival = start + hops * self.cfg.switch_delay + serv + self.cfg.ni_overhead;
        let wait = start - inject;
        self.latency.add(arrival - now);
        self.wait.add(wait);
        Delivery {
            start,
            arrival,
            wait,
        }
    }

    /// Zero-contention latency of a `bytes`-byte message `src -> dst` —
    /// useful for analytic checks and tests.
    pub fn uncontended_latency(&self, src: NodeId, dst: NodeId, bytes: u64) -> Time {
        if src == dst {
            return 2 * self.cfg.ni_overhead;
        }
        let hops = self.path(src, dst).len() as u64;
        let serv = self.cfg.link_bandwidth.transfer_cycles(bytes.max(1));
        2 * self.cfg.ni_overhead + hops * self.cfg.switch_delay + serv
    }

    /// Total messages sent.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    /// End-to-end latency tally.
    pub fn latency(&self) -> &Tally {
        &self.latency
    }

    /// Path-wait (queueing) tally.
    pub fn queue_wait(&self) -> &Tally {
        &self.wait
    }

    /// Number of directed links (4 per node).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Aggregate busy cycles across all links (traffic proxy).
    pub fn total_link_busy(&self) -> Time {
        self.links.iter().map(|l| l.busy_cycles()).sum()
    }

    /// Serialize every directed link's state and the traffic tallies.
    /// In-flight messages need no separate bookkeeping: wormhole
    /// delivery is computed at send time, so the link `next_free`
    /// horizons and the already-scheduled arrival events are the whole
    /// in-flight state.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.links.len());
        for link in &self.links {
            link.ckpt_save(w);
        }
        w.u64(self.messages);
        w.u64(self.bytes);
        self.latency.ckpt_save(w);
        self.wait.ckpt_save(w);
    }

    /// Overlay state saved by [`Mesh::ckpt_save`] onto a mesh of the
    /// same topology.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.links.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("mesh has {n} links, expected {}", self.links.len()),
            });
        }
        for link in &mut self.links {
            link.ckpt_restore(r)?;
        }
        self.messages = r.u64()?;
        self.bytes = r.u64()?;
        self.latency.ckpt_restore(r)?;
        self.wait.ckpt_restore(r)?;
        Ok(())
    }

    /// Mean link utilization over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: Time) -> f64 {
        if self.links.is_empty() || horizon == 0 {
            return 0.0;
        }
        self.links
            .iter()
            .map(|l| l.utilization(horizon))
            .sum::<f64>()
            / self.links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::paper_default())
    }

    #[test]
    fn local_message_skips_links() {
        let mut m = mesh();
        let d = m.send(0, 3, 3, 4096);
        assert_eq!(d.arrival, 40); // 2 * ni_overhead
        assert_eq!(m.total_link_busy(), 0);
    }

    #[test]
    fn neighbor_latency_matches_model() {
        let mut m = mesh();
        // Node 0 -> node 1 is one hop east.
        let d = m.send(0, 0, 1, 4096);
        // ni(20) + 1 hop * 4 + 4096 cycles serialization + ni(20)
        assert_eq!(d.arrival, 20 + 4 + 4096 + 20);
        assert_eq!(d.wait, 0);
        assert_eq!(m.uncontended_latency(0, 1, 4096), d.arrival);
    }

    #[test]
    fn xy_route_hop_count_is_manhattan() {
        let m = mesh();
        // 4x2 mesh: node id = y*4+x. Node 0=(0,0), node 7=(3,1).
        assert_eq!(m.path(0, 7).len(), 4);
        assert_eq!(m.path(0, 3).len(), 3);
        assert_eq!(m.path(4, 0).len(), 1);
        assert_eq!(m.path(2, 2).len(), 0);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut m = mesh();
        let d1 = m.send(0, 0, 1, 4096);
        let d2 = m.send(0, 0, 1, 4096);
        // Second message waits for the first to release the link.
        assert!(d2.start >= d1.start + 4096);
        assert!(d2.wait >= 4096);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut m = mesh();
        let d1 = m.send(0, 0, 1, 4096); // east link of node 0
        let d2 = m.send(0, 2, 3, 4096); // east link of node 2
        assert_eq!(d1.wait, 0);
        assert_eq!(d2.wait, 0);
    }

    #[test]
    fn overlapping_path_contends_partially() {
        let mut m = mesh();
        // 0 -> 2 uses east links of nodes 0 and 1; 1 -> 2 uses east
        // link of node 1 only, so it must wait for message one.
        let d1 = m.send(0, 0, 2, 4096);
        let d2 = m.send(0, 1, 2, 64);
        assert!(d2.wait > 0, "wait = {}", d2.wait);
        assert!(d1.wait == 0);
    }

    #[test]
    fn traffic_accounting() {
        let mut m = mesh();
        m.send(0, 0, 1, 100);
        m.send(0, 1, 0, 200);
        assert_eq!(m.message_count(), 2);
        assert_eq!(m.bytes_carried(), 300);
        assert_eq!(m.latency().count(), 2);
        assert!(m.mean_utilization(10_000) > 0.0);
    }

    #[test]
    fn small_message_minimum_one_cycle() {
        let mut m = mesh();
        let d = m.send(0, 0, 1, 0);
        // Zero-byte control messages still occupy the link for >= 1 cycle.
        assert!(d.arrival > 0);
    }
}
