//! Simulator-wide observability: structured event recording, periodic
//! time-series sampling, and export as a Chrome trace-event (Perfetto)
//! document or a greppable text timeline.
//!
//! Built on the generic [`nw_sim::trace`] ring buffer; this module
//! assigns the meaning: track groups for the five subsystems (mesh,
//! ring, disk, directory, VM) plus a machine-wide lane for sampler
//! counters, the export formats, and an in-tree validator for the
//! emitted JSON (the workspace takes no external dependencies, so the
//! CI trace-smoke job validates with this parser).
//!
//! ## Invariants
//!
//! * **Behavior invariance.** Enabling an observer never changes what
//!   the simulation computes: hooks only *copy* state out, the sampler
//!   reads component state without touching it, and nothing here feeds
//!   back into event scheduling. `RunMetrics` is bit-identical with
//!   observation on or off — the `observability` integration suite
//!   pins this differentially across clean and faulted cells, serial
//!   and parallel.
//! * **Bounded memory.** The event buffer is a fixed-capacity ring
//!   (oldest events overwritten, drop count kept); every sampled
//!   series is a [`BoundedSeries`] that doubles its interval rather
//!   than grow without bound.
//! * **Near-free when off.** The machine stores the observer as an
//!   `Option<Box<Observer>>`; every hook is a single `None` check.

use crate::metrics::{json_escape, json_f64};
use nw_sim::stats::BoundedSeries;
use nw_sim::trace::{TraceBuffer, TraceEvent};
use nw_sim::Time;
use std::sync::Mutex;

/// Track groups: one per instrumented subsystem. Exported as Chrome
/// trace "processes" (`pid = group + 1`).
pub mod groups {
    /// Mesh interconnect; lanes are source nodes.
    pub const MESH: u8 = 0;
    /// Optical ring; lanes are cache channels.
    pub const RING: u8 = 1;
    /// Disk controllers; lanes are disks.
    pub const DISK: u8 = 2;
    /// Coherence directory; single lane (home-node logic).
    pub const DIR: u8 = 3;
    /// Virtual memory (faults, evictions, swaps); lanes are nodes.
    pub const VM: u8 = 4;
    /// Machine-wide counters (event-queue depth).
    pub const SIM: u8 = 5;
}

/// Human name of a track group.
pub fn group_name(group: u8) -> &'static str {
    match group {
        groups::MESH => "mesh",
        groups::RING => "ring",
        groups::DISK => "disk",
        groups::DIR => "directory",
        groups::VM => "vm",
        groups::SIM => "sim",
        _ => "unknown",
    }
}

/// Human name of a lane within a group.
pub fn lane_name(group: u8, index: u32) -> String {
    match group {
        groups::MESH | groups::VM => format!("node {index}"),
        groups::RING => format!("channel {index}"),
        groups::DISK => format!("disk {index}"),
        groups::DIR => "home".to_string(),
        groups::SIM => "machine".to_string(),
        _ => format!("lane {index}"),
    }
}

/// Simulated pcycles to trace microseconds (1 pcycle = 5 ns).
fn ts_us(t: Time) -> f64 {
    t as f64 * 0.005
}

/// Observer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Maximum structured events retained (ring buffer; oldest events
    /// are overwritten past this).
    pub trace_capacity: usize,
    /// Sampling period for the time-series counters, in pcycles.
    pub sample_interval: Time,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            trace_capacity: 65_536,
            // One sample per ~250 us of simulated time.
            sample_interval: 50_000,
        }
    }
}

/// Per-counter sample cap; a series that outgrows this doubles its
/// interval instead of allocating (see [`BoundedSeries`]).
const COUNTER_SAMPLE_CAP: usize = 4_096;

/// One sampled time series (queue depth, channel occupancy, …).
#[derive(Debug, Clone)]
pub struct Counter {
    /// Stable counter name (e.g. `"ring.ch0.occupancy"`).
    pub name: String,
    /// Track group the counter renders under.
    pub group: u8,
    /// Lane within the group.
    pub index: u32,
    /// The bounded, downsampled samples.
    pub series: BoundedSeries,
}

/// The live recorder attached to a running machine.
#[derive(Debug)]
pub struct Observer {
    pub(crate) buf: TraceBuffer,
    pub(crate) sample_interval: Time,
    /// Next simulated time at or after which the machine samples its
    /// counters (checked in the event loop's pop path).
    pub(crate) next_sample_due: Time,
    pub(crate) counters: Vec<Counter>,
}

impl Observer {
    /// A fresh observer for `cfg`.
    pub fn new(cfg: &ObserveConfig) -> Self {
        assert!(cfg.sample_interval > 0, "sample interval must be positive");
        Observer {
            buf: TraceBuffer::new(cfg.trace_capacity.max(1)),
            sample_interval: cfg.sample_interval,
            next_sample_due: 0,
            counters: Vec::new(),
        }
    }

    /// Register a counter; the machine records values in registration
    /// order on every sampling tick.
    pub(crate) fn add_counter(&mut self, name: String, group: u8, index: u32) {
        self.counters.push(Counter {
            name,
            group,
            index,
            series: BoundedSeries::new(self.sample_interval, COUNTER_SAMPLE_CAP),
        });
    }

    /// Finalize into an export-ready [`TraceData`].
    pub(crate) fn into_data(self, app: String, machine: String) -> TraceData {
        let dropped = self.buf.dropped();
        let recorded = self.buf.recorded();
        TraceData {
            app,
            machine,
            dropped,
            recorded,
            events: self.buf.into_events(),
            counters: self.counters,
        }
    }
}

/// Everything one observed run produced, detached from the machine.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Application name.
    pub app: String,
    /// Machine kind ("standard" / "nwcache" / "dcd").
    pub machine: String,
    /// Structured events in emission order (the buffer's tail if the
    /// run produced more than the capacity).
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring buffer was full.
    pub dropped: u64,
    /// Total events offered to the buffer.
    pub recorded: u64,
    /// Sampled time series.
    pub counters: Vec<Counter>,
}

impl TraceData {
    /// Serialize as a Chrome trace-event JSON document loadable by
    /// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
    /// subsystems become processes, lanes become threads, spans are
    /// `"X"` (complete) events, instants `"i"`, and the sampled series
    /// `"C"` counter events. Times are microseconds of simulated time.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 4_096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, s: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&s);
        };

        // Metadata: name every process (track group) and thread (lane)
        // that actually carries events or counters.
        let mut tracks: Vec<(u8, u32)> = self
            .events
            .iter()
            .map(|e| (e.track.group, e.track.index))
            .chain(self.counters.iter().map(|c| (c.group, c.index)))
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut named_groups: Vec<u8> = Vec::new();
        for &(g, i) in &tracks {
            if !named_groups.contains(&g) {
                named_groups.push(g);
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        g as u32 + 1,
                        json_escape(group_name(g)),
                    ),
                );
            }
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    g as u32 + 1,
                    i + 1,
                    json_escape(&lane_name(g, i)),
                ),
            );
        }

        for e in &self.events {
            let pid = e.track.group as u32 + 1;
            let tid = e.track.index + 1;
            let s = if e.dur > 0 {
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"args\":{{\"a0\":{},\"a1\":{}}}}}",
                    json_f64(ts_us(e.at)),
                    json_f64(ts_us(e.dur)),
                    json_escape(e.name),
                    e.arg0,
                    e.arg1,
                )
            } else {
                format!(
                    "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                     \"name\":\"{}\",\"args\":{{\"a0\":{},\"a1\":{}}}}}",
                    json_f64(ts_us(e.at)),
                    json_escape(e.name),
                    e.arg0,
                    e.arg1,
                )
            };
            push(&mut out, &mut first, s);
        }

        for c in &self.counters {
            let pid = c.group as u32 + 1;
            let tid = c.index + 1;
            for (t, v) in c.series.samples() {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                         \"name\":\"{}\",\"args\":{{\"value\":{v}}}}}",
                        json_f64(ts_us(t)),
                        json_escape(&c.name),
                    ),
                );
            }
        }

        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        out.push_str(&format!(
            "\"app\":\"{}\",\"machine\":\"{}\",\"events\":{},\"dropped\":{}",
            json_escape(&self.app),
            json_escape(&self.machine),
            self.events.len(),
            self.dropped,
        ));
        out.push_str("}}");
        out
    }

    /// A compact, greppable text timeline: one line per event in time
    /// order, followed by a per-counter summary.
    pub fn to_text_timeline(&self) -> String {
        let mut idx: Vec<usize> = (0..self.events.len()).collect();
        // Stable sort by start time: equal-time events keep emission
        // order, which is the causal order within one pcycle.
        idx.sort_by_key(|&i| self.events[i].at);
        let mut out = String::new();
        out.push_str(&format!(
            "# trace: app={} machine={} events={} dropped={}\n",
            self.app,
            self.machine,
            self.events.len(),
            self.dropped
        ));
        for i in idx {
            let e = &self.events[i];
            let track = format!("{}/{}", group_name(e.track.group), lane_name(e.track.group, e.track.index));
            if e.dur > 0 {
                out.push_str(&format!(
                    "{:>14.3}us {:<18} {:<20} dur={:.3}us a0={} a1={}\n",
                    ts_us(e.at),
                    track,
                    e.name,
                    ts_us(e.dur),
                    e.arg0,
                    e.arg1
                ));
            } else {
                out.push_str(&format!(
                    "{:>14.3}us {:<18} {:<20} a0={} a1={}\n",
                    ts_us(e.at),
                    track,
                    e.name,
                    e.arg0,
                    e.arg1
                ));
            }
        }
        for c in &self.counters {
            out.push_str(&format!(
                "# counter {}: {} samples, interval {} pcycles, max {}\n",
                c.name,
                c.series.len(),
                c.series.interval(),
                c.series.max_value().unwrap_or(0)
            ));
        }
        out
    }

    /// Distinct track groups present in the recorded events.
    pub fn groups_present(&self) -> Vec<u8> {
        let mut g: Vec<u8> = self.events.iter().map(|e| e.track.group).collect();
        g.sort_unstable();
        g.dedup();
        g
    }
}

// ---------------------------------------------------------------------------
// Global default: lets the sweep harness (and anything else that builds
// machines internally) observe runs without threading a config through
// every call. `Machine::try_from_build` consults this once per build.

static GLOBAL_OBSERVE: Mutex<Option<ObserveConfig>> = Mutex::new(None);

/// Set (or clear, with `None`) the process-wide default observer
/// configuration. Machines built while a config is set start with an
/// observer attached; retrieve results with
/// [`crate::Machine::take_observation`]. Affects only machines built
/// *after* the call.
pub fn set_global(cfg: Option<ObserveConfig>) {
    *GLOBAL_OBSERVE.lock().unwrap_or_else(|e| e.into_inner()) = cfg;
}

/// The current process-wide default observer configuration, if any.
pub fn global() -> Option<ObserveConfig> {
    GLOBAL_OBSERVE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

// ---------------------------------------------------------------------------
// Process-wide run totals: cheap monotonic counters the long-running
// service's metrics endpoint exports. One atomic add per *completed*
// run (never per event), so the hot path pays nothing.

static TOTAL_RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TOTAL_EVENTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TOTAL_SIM_PCYCLES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Aggregate simulation work performed by this process since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessTotals {
    /// Simulations run to completion.
    pub runs: u64,
    /// Events dispatched across all completed runs.
    pub events: u64,
    /// Simulated pcycles across all completed runs (sum of exec times).
    pub sim_pcycles: u64,
}

/// Record one completed run. Called by the machine when it collects
/// final metrics; saturating so a pathological soak can't wrap.
pub(crate) fn record_completed_run(events: u64, exec_pcycles: u64) {
    use std::sync::atomic::Ordering::Relaxed;
    TOTAL_RUNS.fetch_add(1, Relaxed);
    TOTAL_EVENTS.fetch_add(events, Relaxed);
    TOTAL_SIM_PCYCLES.fetch_add(exec_pcycles, Relaxed);
}

/// Snapshot the process-wide totals (metrics-endpoint feed).
pub fn process_totals() -> ProcessTotals {
    use std::sync::atomic::Ordering::Relaxed;
    ProcessTotals {
        runs: TOTAL_RUNS.load(Relaxed),
        events: TOTAL_EVENTS.load(Relaxed),
        sim_pcycles: TOTAL_SIM_PCYCLES.load(Relaxed),
    }
}

// ---------------------------------------------------------------------------
// In-tree Chrome-trace validator: a minimal JSON parser plus the
// structural checks the trace-smoke CI job and tests rely on. No
// external dependencies.

/// What [`validate_chrome_trace`] found in a well-formed document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Instant (`"i"`) events.
    pub instants: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
    /// Metadata (`"M"`) records.
    pub metadata: usize,
    /// Distinct `pid`s seen (track groups + 1), ascending.
    pub pids: Vec<u32>,
}

/// Parse `doc` as JSON and verify it is a loadable Chrome trace-event
/// document: a top-level object with a `traceEvents` array whose
/// entries each carry `name`, `ph`, `pid` and `tid`, with a numeric
/// `ts` on every non-metadata event and a `dur` on every span.
pub fn validate_chrome_trace(doc: &str) -> Result<TraceStats, String> {
    let v = json::parse(doc)?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing \"traceEvents\" key")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut stats = TraceStats::default();
    for (i, e) in events.iter().enumerate() {
        let ev = e
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let get = |k: &str| ev.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let ph = get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] missing string \"ph\""))?;
        for key in ["name", "pid", "tid"] {
            if get(key).is_none() {
                return Err(format!("traceEvents[{i}] (ph={ph}) missing \"{key}\""));
            }
        }
        if get("pid").and_then(|v| v.as_f64()).is_none() {
            return Err(format!("traceEvents[{i}] \"pid\" is not a number"));
        }
        match ph {
            "M" => stats.metadata += 1,
            "X" => {
                for key in ["ts", "dur"] {
                    if get(key).and_then(|v| v.as_f64()).is_none() {
                        return Err(format!("traceEvents[{i}] span missing numeric \"{key}\""));
                    }
                }
                stats.spans += 1;
            }
            "i" | "C" => {
                if get("ts").and_then(|v| v.as_f64()).is_none() {
                    return Err(format!("traceEvents[{i}] missing numeric \"ts\""));
                }
                if ph == "i" {
                    stats.instants += 1;
                } else {
                    stats.counters += 1;
                }
            }
            other => return Err(format!("traceEvents[{i}] unknown ph {other:?}")),
        }
        if let Some(pid) = get("pid").and_then(|v| v.as_f64()) {
            let pid = pid as u32;
            if !stats.pids.contains(&pid) {
                stats.pids.push(pid);
            }
        }
        stats.events += 1;
    }
    stats.pids.sort_unstable();
    Ok(stats)
}

/// Minimal recursive-descent JSON parser — just enough to validate the
/// exporter's output without external crates.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object's members, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }

        /// The array's elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    /// Parse one complete JSON document.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.b
                .get(self.i)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? != c {
                return Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    c as char, self.i, self.b[self.i] as char
                ));
            }
            self.i += 1;
            Ok(())
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                b'-' | b'0'..=b'9' => self.number(),
                c => Err(format!("unexpected {:?} at byte {}", c as char, self.i)),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            if self.b[self.i] == b'-' {
                self.i += 1;
            }
            while self.i < self.b.len()
                && matches!(self.b[self.i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self
                            .b
                            .get(self.i)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                                self.i += 4;
                                // Surrogate pairs are not emitted by our
                                // exporter; map lone surrogates to the
                                // replacement character.
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                        }
                    }
                    _ => {
                        // Re-decode multi-byte UTF-8 sequences.
                        let start = self.i - 1;
                        let len = match c {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        self.i = start + len;
                        let s = self
                            .b
                            .get(start..start + len)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| format!("bad utf-8 at byte {start}"))?;
                        out.push_str(s);
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            if self.peek()? == b']' {
                self.i += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b']' => {
                        self.i += 1;
                        return Ok(Value::Arr(out));
                    }
                    c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut out = Vec::new();
            if self.peek()? == b'}' {
                self.i += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                self.skip_ws();
                let k = self.string()?;
                self.expect(b':')?;
                let v = self.value()?;
                out.push((k, v));
                match self.peek()? {
                    b',' => self.i += 1,
                    b'}' => {
                        self.i += 1;
                        return Ok(Value::Obj(out));
                    }
                    c => return Err(format!("expected ',' or '}}', found {:?}", c as char)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_sim::trace::TrackId;

    fn sample_data() -> TraceData {
        let cfg = ObserveConfig {
            trace_capacity: 16,
            sample_interval: 100,
        };
        let mut o = Observer::new(&cfg);
        o.add_counter("ring.ch0.occupancy".into(), groups::RING, 0);
        o.buf
            .span(100, 300, TrackId::new(groups::MESH, 2), "mesh.page", 5, 4096);
        o.buf
            .instant(150, TrackId::new(groups::DISK, 0), "disk.nack", 7, 0);
        o.counters[0].series.record(100, 3);
        o.counters[0].series.record(250, 5);
        o.into_data("gauss".into(), "nwcache".into())
    }

    #[test]
    fn chrome_export_validates() {
        let d = sample_data();
        let j = d.to_chrome_json();
        let stats = validate_chrome_trace(&j).expect("exporter output must validate");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 2);
        assert!(stats.metadata >= 3); // 2+ process names, 2+ thread names
        // pid = group + 1 for each group present.
        for g in [groups::MESH, groups::RING, groups::DISK] {
            assert!(stats.pids.contains(&(g as u32 + 1)), "missing pid for {}", group_name(g));
        }
    }

    #[test]
    fn text_timeline_is_time_sorted() {
        let d = sample_data();
        let txt = d.to_text_timeline();
        let nack = txt.find("disk.nack").unwrap();
        let page = txt.find("mesh.page").unwrap();
        // mesh.page starts at t=100 (0.5us), disk.nack at t=150.
        assert!(page < nack, "events out of time order:\n{txt}");
        assert!(txt.contains("# counter ring.ch0.occupancy: 2 samples"));
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // Missing "tid".
        let bad = "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":1,\"ts\":0,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Unknown phase.
        let bad = "{\"traceEvents\":[{\"ph\":\"Q\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Span without dur.
        let bad =
            "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn validator_accepts_minimal_document() {
        let ok = "{\"traceEvents\":[\
            {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"p\"}},\
            {\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.5,\"dur\":1.5,\"name\":\"s\"},\
            {\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"c\",\"args\":{\"value\":9}}\
        ]}";
        let stats = validate_chrome_trace(ok).unwrap();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.metadata, 1);
        assert_eq!(stats.pids, vec![1]);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json::parse(
            "{\"a\":[1,-2.5,3e2,true,false,null],\"b\":\"q\\\"\\n\\u0041\",\"c\":{\"d\":[]}}",
        )
        .unwrap();
        let obj = v.as_object().unwrap();
        let a = obj[0].1.as_array().unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(obj[1].1.as_str(), Some("q\"\nA"));
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,2").is_err());
        assert!(json::parse("[1,2] extra").is_err());
    }

    #[test]
    fn global_switch_round_trips() {
        // Serialized with other global-switch users via the state
        // itself being process-wide: set, read back, clear.
        let cfg = ObserveConfig {
            trace_capacity: 8,
            sample_interval: 10,
        };
        set_global(Some(cfg.clone()));
        assert_eq!(global(), Some(cfg));
        set_global(None);
        assert_eq!(global(), None);
    }
}
