//! Plain-text rendering of experiment results, in the layout of the
//! paper's tables and figures.

use crate::experiments::{BreakdownBar, PairedRow};

/// Render a standard-vs-NWCache table (Tables 3/4/5/6/8). `unit`
/// divides the values (e.g. `1e6` prints Mpcycles).
pub fn render_paired(title: &str, header: &str, rows: &[PairedRow], unit: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<10} {:>14} {:>14}\n", "app", "standard", "nwcache"));
    let _ = header;
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>14.2} {:>14.2}\n",
            r.app,
            r.standard / unit,
            r.nwcache / unit
        ));
    }
    out
}

/// Render Table 7 (hit rates under both prefetching modes).
pub fn render_hit_rates(rows: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str("Table 7. NWCache hit rates (%) under naive / optimal prefetching\n");
    out.push_str(&format!("{:<10} {:>10} {:>10}\n", "app", "naive", "optimal"));
    for (app, naive, optimal) in rows {
        out.push_str(&format!("{app:<10} {naive:>10.1} {optimal:>10.1}\n"));
    }
    out
}

/// Render a Figure 3/4-style normalized breakdown listing.
pub fn render_breakdown(title: &str, bars: &[BreakdownBar]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} {:<9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "app", "machine", "NoFree", "Transit", "Fault", "TLB", "Other", "Total"
    ));
    for b in bars {
        let total: f64 = b.parts.iter().sum();
        out.push_str(&format!(
            "{:<10} {:<9} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}\n",
            b.app, b.machine, b.parts[0], b.parts[1], b.parts[2], b.parts[3], b.parts[4], total
        ));
    }
    out
}

/// Render Figure 3/4 breakdowns as ASCII stacked bars, normalized so
/// the widest (standard) bar spans `width` characters. Category
/// glyphs: `N` NoFree, `T` Transit, `F` Fault, `L` TLB, `.` Other.
pub fn render_breakdown_bars(title: &str, bars: &[BreakdownBar], width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}
(N = NoFree, T = Transit, F = Fault, L = TLB, . = Other)
"
    ));
    for b in bars {
        let glyphs = ['N', 'T', 'F', 'L', '.'];
        let mut bar = String::new();
        for (part, glyph) in b.parts.iter().zip(glyphs) {
            let chars = (part * width as f64).round() as usize;
            bar.extend(std::iter::repeat_n(glyph, chars));
        }
        out.push_str(&format!(
            "{:<8} {:<9} |{bar}
",
            b.app, b.machine
        ));
    }
    out
}

/// Render a parameter sweep as two columns.
pub fn render_sweep<T: std::fmt::Display>(title: &str, xlabel: &str, rows: &[(T, u64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<12} {:>16}\n", xlabel, "exec (pcycles)"));
    for (x, t) in rows {
        out.push_str(&format!("{x:<12} {t:>16}\n"));
    }
    out
}

/// Render the fault-injection grid: execution time on both machines
/// per fault mix, plus the NWCache recovery counters. A run that
/// ended in an error (retries exhausted, protocol violation) prints
/// the error text in place of a time.
pub fn render_fault_table(title: &str, rows: &[crate::experiments::FaultRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>10} {:>8} {:>14} {:>14} {:>8} {:>9} {:>8}\n",
        "err-rate", "dead-ch", "standard", "nwcache", "lost", "degraded", "retries"
    ));
    let cell = |r: &Result<u64, String>| match r {
        Ok(t) => format!("{:.2}", *t as f64 / 1e6),
        Err(e) => format!("FAIL({e})"),
    };
    for r in rows {
        out.push_str(&format!(
            "{:>10.0e} {:>8} {:>14} {:>14} {:>8} {:>9} {:>8}\n",
            r.disk_error_rate,
            r.failed_channels,
            cell(&r.standard),
            cell(&r.nwcache),
            r.ring_pages_lost,
            r.degraded_ring_swaps,
            r.retries,
        ));
    }
    out.push_str("(times in Mpcycles; lost/degraded/retries are NWCache recovery counters)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_table_renders_all_rows() {
        let rows = vec![
            PairedRow {
                app: "sor".into(),
                standard: 2_000_000.0,
                nwcache: 100_000.0,
            },
            PairedRow {
                app: "fft".into(),
                standard: 3_000_000.0,
                nwcache: 200_000.0,
            },
        ];
        let s = render_paired("Table 3", "", &rows, 1e6);
        assert!(s.contains("sor"));
        assert!(s.contains("fft"));
        assert!(s.contains("2.00"));
        assert!(s.contains("0.10"));
    }

    #[test]
    fn hit_rate_table_renders() {
        let rows = vec![("gauss".to_string(), 49.9, 58.3)];
        let s = render_hit_rates(&rows);
        assert!(s.contains("gauss"));
        assert!(s.contains("49.9"));
        assert!(s.contains("58.3"));
    }

    #[test]
    fn breakdown_totals_visible() {
        let bars = vec![BreakdownBar {
            app: "mg".into(),
            machine: "standard".into(),
            parts: [0.2, 0.1, 0.3, 0.1, 0.3],
        }];
        let s = render_breakdown("Fig 3", &bars);
        assert!(s.contains("mg"));
        assert!(s.contains("1.000")); // total column
    }

    #[test]
    fn ascii_bars_scale_with_parts() {
        let bars = vec![
            BreakdownBar {
                app: "sor".into(),
                machine: "standard".into(),
                parts: [0.5, 0.0, 0.25, 0.0, 0.25],
            },
            BreakdownBar {
                app: "sor".into(),
                machine: "nwcache".into(),
                parts: [0.0, 0.0, 0.1, 0.0, 0.15],
            },
        ];
        let s = render_breakdown_bars("Fig", &bars, 40);
        let lines: Vec<&str> = s.lines().collect();
        // Standard bar: 20 Ns + 10 Fs + 10 dots.
        assert!(lines[2].contains(&"N".repeat(20)));
        assert!(lines[2].contains(&"F".repeat(10)));
        // NWCache bar is much shorter.
        let std_len = lines[2].split('|').nth(1).unwrap().len();
        let nwc_len = lines[3].split('|').nth(1).unwrap().len();
        assert!(nwc_len * 2 < std_len);
    }

    #[test]
    fn sweep_renders() {
        let s = render_sweep("minfree", "frames", &[(2u32, 100), (4, 90)]);
        assert!(s.contains("frames"));
        assert!(s.contains("90"));
    }
}
