//! Machine configuration (paper Table 1 plus modelling constants).

use crate::error::SimError;
use nw_sim::time::usecs;
use nw_sim::Time;

/// Whether the machine carries swap-outs over the mesh (standard) or
/// over the optical ring (NWCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// The baseline multiprocessor: swap-outs cross the interconnect
    /// to the disk controller caches (ACK/NACK/OK flow control).
    Standard,
    /// The NWCache-equipped multiprocessor: swap-outs go to the node's
    /// ring cache channel; I/O-node interfaces drain them to the disk
    /// caches; faults can be served from the ring (victim caching).
    NwCache,
    /// The Disk Caching Disk baseline (related work \[7\]): the standard
    /// machine with a log disk between each RAM disk cache and data
    /// disk — flushes become cheap sequential appends, but re-reading
    /// staged data pays full disk mechanics.
    Dcd,
}

/// The two prefetching extremes evaluated in the paper (§3.1), plus
/// the realistic middle ground the paper anticipates ("we expect
/// results for realistic and sophisticated prefetching techniques to
/// lie between these two extremes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchMode {
    /// Idealized: every page read hits the disk controller cache.
    Optimal,
    /// On a controller-cache read miss, sequentially following pages
    /// are prefetched into the controller cache.
    Naive,
    /// Realistic windowed prefetching: sequential streams are kept
    /// ahead of the reader by a fixed window, extended on hits.
    Window,
    /// Online pattern-detecting prefetching: each node's demand-miss
    /// stream is classified over a sliding window
    /// (sequential / strided / temporal / random) and bounded,
    /// cancellable speculative reads are issued through the disk
    /// controllers' side caches (see `crate::prefetch`).
    Adaptive,
}

/// Page-replacement policy used by the VM system (the paper uses
/// LRU; the alternatives are OS-realism ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently used resident page (the paper's §3.1).
    Lru,
    /// Evict the oldest resident page regardless of use.
    Fifo,
    /// Second-chance clock: skip (and clear) referenced pages once,
    /// evicting the first unreferenced page in arrival order.
    Clock,
}

/// Where the I/O-enabled nodes (each hosting one disk + controller)
/// sit on the mesh. The paper's 8-node machine spreads them evenly
/// (nodes 0, 2, 4, 6); generated topologies can also pin them to the
/// mesh corners or pack them along the bottom row to study how
/// placement skews mesh contention at scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoPlacement {
    /// Evenly spread: disk `d` lives on node `d * (nodes/io_nodes)`
    /// (the paper's layout; the legacy `disk_home` rule).
    #[default]
    Spread,
    /// The four mesh corners (requires exactly 4 I/O nodes and a mesh
    /// at least 2×2): worst-case average mesh distance.
    Corners,
    /// Packed along the bottom row: disk `d` on node
    /// `d * (width/io_nodes)` — models an edge I/O bay.
    Row,
}

impl IoPlacement {
    /// Grammar label (`io=spread|corners|row`).
    pub fn label(self) -> &'static str {
        match self {
            IoPlacement::Spread => "spread",
            IoPlacement::Corners => "corners",
            IoPlacement::Row => "row",
        }
    }
}

/// How pages are sharded across the rings of a multi-ring optical
/// fabric (`ring_count > 1`). Irrelevant for the paper's single ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingShard {
    /// Ring = `vpn % rings`: adjacent pages alternate rings, spreading
    /// any hot region across every ring.
    #[default]
    Page,
    /// Ring = `(vpn / 32) % rings`: 32-page regions (matching the disk
    /// striping unit) stay on one ring, so a sequential burst keeps
    /// one transmitter busy while other regions use the other rings.
    Region,
}

impl RingShard {
    /// Grammar label (`shard=page|region`).
    pub fn label(self) -> &'static str {
        match self {
            RingShard::Page => "page",
            RingShard::Region => "region",
        }
    }
}

/// Deterministic fault-injection schedule. The default plan is
/// *inactive*: no fault machinery draws random numbers or schedules
/// events, so clean runs stay bit-identical to a build without the
/// subsystem. Activate it by setting any rate above zero or listing a
/// ring channel failure.
///
/// The retry/timeout parameters always carry sane defaults so a
/// partially filled plan validates; they only take effect once the
/// plan is active.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG streams (independent of the workload
    /// seed so the same fault schedule can be replayed over different
    /// inputs).
    pub seed: u64,
    /// Probability that a disk media read fails and must be retried
    /// (per physical page access).
    pub disk_error_rate: f64,
    /// Probability that a disk request gets stuck and is only
    /// recovered by the request timeout (per access).
    pub disk_stuck_rate: f64,
    /// Ring channel failures: `(time, channel)` pairs. At `time` the
    /// channel dies permanently, destroying every page circulating on
    /// it; the machine re-issues those swap-outs over the mesh and
    /// routes future swap-outs of that node through the standard
    /// ACK/NACK path.
    pub ring_channel_failures: Vec<(Time, u32)>,
    /// Probability that a mesh control message (swap ACK/OK, ring
    /// cancel) is dropped in flight.
    pub mesh_drop_rate: f64,
    /// Probability that a mesh control message arrives corrupted; the
    /// CRC check discards it, so the effect equals a drop but is
    /// counted separately.
    pub mesh_corrupt_rate: f64,
    /// Maximum retries for a failed disk access or timed-out swap
    /// before the run aborts with `SimError::RetriesExhausted`.
    pub max_retries: u32,
    /// Base backoff before a disk retry; doubles per attempt.
    pub retry_backoff: Time,
    /// Pcycles a swap-out or stuck disk request may remain
    /// unacknowledged before the timeout path re-issues it.
    pub request_timeout: Time,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            disk_error_rate: 0.0,
            disk_stuck_rate: 0.0,
            ring_channel_failures: Vec::new(),
            mesh_drop_rate: 0.0,
            mesh_corrupt_rate: 0.0,
            max_retries: 5,
            retry_backoff: 50_000,
            request_timeout: 2_000_000,
        }
    }
}

impl FaultPlan {
    /// Whether any fault is scheduled. Inactive plans must leave the
    /// simulation bit-identical to a run without fault machinery.
    pub fn is_active(&self) -> bool {
        self.disk_error_rate > 0.0
            || self.disk_stuck_rate > 0.0
            || !self.ring_channel_failures.is_empty()
            || self.mesh_drop_rate > 0.0
            || self.mesh_corrupt_rate > 0.0
    }

    /// Whether any mesh-level fault is scheduled (gates the swap
    /// timeout machinery).
    pub fn mesh_faults_active(&self) -> bool {
        self.mesh_drop_rate > 0.0 || self.mesh_corrupt_rate > 0.0
    }

    /// Validate rates and retry bounds.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("disk_error_rate", self.disk_error_rate),
            ("disk_stuck_rate", self.disk_stuck_rate),
            ("mesh_drop_rate", self.mesh_drop_rate),
            ("mesh_corrupt_rate", self.mesh_corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("fault {name} must be in [0, 1], got {rate}"));
            }
        }
        if self.max_retries == 0 {
            return Err("fault max_retries must be > 0".into());
        }
        if self.retry_backoff == 0 {
            return Err("fault retry_backoff must be > 0".into());
        }
        if self.request_timeout == 0 {
            return Err("fault request_timeout must be > 0".into());
        }
        Ok(())
    }
}

/// Full machine configuration. Defaults mirror the paper's Table 1;
/// fields not in the table are modelling constants "comparable to
/// modern systems" (1999), as the paper puts it.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Standard or NWCache machine.
    pub kind: MachineKind,
    /// Prefetching policy for the disk controllers.
    pub prefetch: PrefetchMode,

    /// Number of nodes (Table 1: 8).
    pub nodes: u32,
    /// Number of I/O-enabled nodes (Table 1: 4).
    pub io_nodes: u32,
    /// Page size in bytes (Table 1: 4 KB).
    pub page_bytes: u64,
    /// TLB miss latency in pcycles (Table 1: 100).
    pub tlb_miss_latency: Time,
    /// TLB shootdown latency paid by the initiator (Table 1: 500).
    pub tlb_shootdown_latency: Time,
    /// Interrupt latency paid by every other processor (Table 1: 400).
    pub interrupt_latency: Time,
    /// Memory per node in bytes (Table 1: 256 KB).
    pub memory_per_node: u64,
    /// Minimum free page frames per node (paper §5: best values are 2
    /// with the NWCache; 12/4 for the standard machine under
    /// optimal/naive prefetching).
    pub min_free_frames: u32,
    /// Page-replacement policy (paper: LRU).
    pub replacement: ReplacementPolicy,

    /// Mesh width in nodes. `0` (with `mesh_height == 0`) means the
    /// legacy derived shape `(nodes/2).max(1) × 2.min(nodes)` — the
    /// paper's 4×2. Generated topologies set both explicitly
    /// (`mesh_width * mesh_height == nodes`).
    pub mesh_width: u32,
    /// Mesh height in nodes (see [`MachineConfig::mesh_width`]).
    pub mesh_height: u32,
    /// Where the I/O nodes sit on the mesh (paper: evenly spread).
    pub io_placement: IoPlacement,

    /// WDM cache channels (Table 1: 8; one per node). With
    /// `ring_count > 1` this is the per-ring channel count; every node
    /// owns one channel on every ring.
    pub ring_channels: usize,
    /// Page slots per cache channel (Table 1: 64 KB per channel = 16).
    pub ring_slots_per_channel: usize,
    /// Ring round-trip latency (Table 1: 52 usecs).
    pub ring_round_trip: Time,
    /// Independent optical rings in the fabric (paper: 1). Each ring
    /// carries the full per-node channel set; pages are sharded across
    /// rings by [`MachineConfig::ring_shard`], and each node's single
    /// tunable transmitter arbitrates between rings.
    pub ring_count: usize,
    /// Page-to-ring sharding policy (only meaningful when
    /// `ring_count > 1`).
    pub ring_shard: RingShard,

    /// Directory shards per node (paper-equivalent: 1). Lines are
    /// sharded by page so a page purge touches exactly one shard;
    /// at 1024 nodes this keeps the LineTable from being one hot
    /// open-addressing structure.
    pub dir_shards: usize,

    /// Disk controller cache capacity in pages (Table 1: 16 KB = 4).
    pub disk_cache_pages: usize,
    /// Accumulation window before the controller flushes a swap-out.
    pub disk_flush_delay: Time,
    /// Sliding-window length of the adaptive prefetcher's per-node
    /// pattern detector (also sizes the speculative side caches and,
    /// halved, the per-node in-flight speculation cap). Ignored by the
    /// other prefetch modes.
    pub prefetch_window: usize,

    /// TLB entries per processor.
    pub tlb_entries: usize,
    /// L1 hit latency.
    pub l1_latency: Time,
    /// L2 hit latency (on top of L1).
    pub l2_latency: Time,
    /// DRAM access latency at the home node (on top of bus transfer).
    pub mem_latency: Time,
    /// Directory lookup overhead at the home node.
    pub dir_latency: Time,
    /// Write-buffer entries per processor.
    pub wb_entries: usize,
    /// Control-message payload size on the mesh (bytes).
    pub ctl_msg_bytes: u64,
    /// Max pcycles a processor may run ahead inline before yielding to
    /// the event queue (bounds timing skew between processors).
    pub quantum: Time,

    /// Application input scale (1.0 = paper's Table 2 inputs).
    pub app_scale: f64,
    /// Workload seed (graph topology, radix keys, ...).
    pub seed: u64,

    /// Fault-injection schedule (default: inactive).
    pub faults: FaultPlan,
}

impl MachineConfig {
    /// The paper's Table 1 configuration. `min_free_frames` is set to
    /// the paper's §5 best value for the chosen kind and prefetch
    /// mode: 2 for the NWCache machine, 12 (optimal) or 4 (naive) for
    /// the standard machine.
    pub fn paper_default(kind: MachineKind, prefetch: PrefetchMode) -> Self {
        let min_free_frames = match (kind, prefetch) {
            (MachineKind::NwCache, _) => 2,
            (MachineKind::Standard | MachineKind::Dcd, PrefetchMode::Optimal) => 12,
            (MachineKind::Standard | MachineKind::Dcd, PrefetchMode::Naive) => 4,
            // Between the two extremes, like the modes themselves.
            (
                MachineKind::Standard | MachineKind::Dcd,
                PrefetchMode::Window | PrefetchMode::Adaptive,
            ) => 8,
        };
        MachineConfig {
            kind,
            prefetch,
            nodes: 8,
            io_nodes: 4,
            page_bytes: 4096,
            tlb_miss_latency: 100,
            tlb_shootdown_latency: 500,
            interrupt_latency: 400,
            memory_per_node: 256 * 1024,
            min_free_frames,
            replacement: ReplacementPolicy::Lru,
            mesh_width: 0,
            mesh_height: 0,
            io_placement: IoPlacement::Spread,
            ring_channels: 8,
            ring_slots_per_channel: 16,
            ring_round_trip: usecs(52),
            ring_count: 1,
            ring_shard: RingShard::Page,
            dir_shards: 1,
            disk_cache_pages: 4,
            disk_flush_delay: 50_000,
            prefetch_window: 16,
            tlb_entries: 64,
            l1_latency: 1,
            l2_latency: 10,
            mem_latency: 30,
            dir_latency: 10,
            wb_entries: 8,
            ctl_msg_bytes: 16,
            quantum: 2_000,
            app_scale: 1.0,
            seed: 0x1999,
            faults: FaultPlan::default(),
        }
    }

    /// A paper configuration shrunk to `scale`: the application inputs
    /// *and* the machine's memory/ring capacities shrink together so
    /// the data-to-memory ratio (and therefore the out-of-core
    /// behaviour) is preserved. `scale = 1.0` is exactly
    /// [`MachineConfig::paper_default`].
    pub fn scaled_paper(kind: MachineKind, prefetch: PrefetchMode, scale: f64) -> Self {
        let mut cfg = Self::paper_default(kind, prefetch);
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        cfg.app_scale = scale;
        if scale < 1.0 {
            let frames = ((cfg.frames_per_node() as f64 * scale) as u64).max(8);
            cfg.memory_per_node = frames * cfg.page_bytes;
            // Round to nearest: truncation made e.g. scale 0.3 drop
            // 16 * 0.3 = 4.8 slots to 4, an 8% capacity cut the scale
            // never asked for.
            cfg.ring_slots_per_channel =
                ((cfg.ring_slots_per_channel as f64 * scale).round() as usize).max(2);
            cfg.min_free_frames = cfg.min_free_frames.min(frames as u32 / 2).max(2);
        }
        cfg
    }

    /// Page frames per node implied by the memory size.
    pub fn frames_per_node(&self) -> u32 {
        (self.memory_per_node / self.page_bytes) as u32
    }

    /// Mesh dimensions `(width, height)`: the explicit
    /// `mesh_width × mesh_height` when set, otherwise the legacy
    /// derived shape `(nodes/2).max(1) × 2.min(nodes)` (the paper's
    /// 8 nodes become 4×2).
    pub fn mesh_dims(&self) -> (u32, u32) {
        if self.mesh_width == 0 && self.mesh_height == 0 {
            ((self.nodes / 2).max(1), 2.min(self.nodes))
        } else {
            (self.mesh_width, self.mesh_height)
        }
    }

    /// The node hosting disk `d` under the configured
    /// [`IoPlacement`]. An out-of-range disk index is a structured
    /// error, not a silently bogus home node: the old `debug_assert!`
    /// guard vanished in release builds and let
    /// `d * (nodes/io_nodes)` land on a non-I/O node.
    pub fn try_io_node_of_disk(&self, d: u32) -> Result<u32, SimError> {
        if d >= self.io_nodes {
            return Err(SimError::BadConfig(format!(
                "disk {d} out of range: machine has {} I/O nodes",
                self.io_nodes
            )));
        }
        let (w, h) = self.mesh_dims();
        Ok(match self.io_placement {
            IoPlacement::Spread => d * (self.nodes / self.io_nodes),
            IoPlacement::Corners => [0, w - 1, (h - 1) * w, h * w - 1][d as usize],
            IoPlacement::Row => d * (w / self.io_nodes),
        })
    }

    /// Infallible [`MachineConfig::try_io_node_of_disk`] for hot paths
    /// that only ever see validated disk indices. Panics (in every
    /// build profile) on an out-of-range index instead of computing a
    /// bogus home.
    pub fn io_node_of_disk(&self, d: u32) -> u32 {
        self.try_io_node_of_disk(d)
            .expect("disk index validated at config time")
    }

    /// Whether the NWCache hardware is present.
    pub fn has_ring(&self) -> bool {
        self.kind == MachineKind::NwCache
    }

    /// Conservative PDES lookahead: a lower bound (in pcycles) on how
    /// long any cross-node interaction takes to become visible at
    /// another node. An event executed at time `t` on one node can
    /// only affect another node at `t + lookahead` or later, so
    /// same-timestamp events on different nodes are causally
    /// independent and a parallel engine may execute them in any
    /// order (see `machine::pdes` and DESIGN.md §16).
    ///
    /// The floors per cross-domain channel:
    /// * **mesh** — the cheapest message is a control payload over a
    ///   single hop: two network-interface crossings, one switch
    ///   delay, and the payload's serialization cycles;
    /// * **ring** — a page is only visible to another node after at
    ///   least a full ring round-trip;
    /// * **disk** — the cheapest disk interaction is a perfectly
    ///   sequential page transfer (no seek, no rotation) at the
    ///   paper's 20 MB/s media rate.
    pub fn pdes_lookahead(&self) -> Time {
        let mesh = nw_mesh::MeshConfig::paper_default();
        let mesh_floor = 2 * mesh.ni_overhead + mesh.switch_delay + self.ctl_msg_bytes;
        let disk_floor = self.page_bytes * usecs(1) / 20;
        mesh_floor.min(self.ring_round_trip).min(disk_floor)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.io_nodes == 0 {
            return Err("need nodes and I/O nodes".into());
        }
        if self.io_nodes > self.nodes {
            return Err("more I/O nodes than nodes".into());
        }
        if !self.nodes.is_multiple_of(self.io_nodes) {
            return Err("nodes must be a multiple of io_nodes".into());
        }
        if self.nodes > 1024 {
            return Err(format!("at most 1024 nodes supported, got {}", self.nodes));
        }
        if (self.mesh_width == 0) != (self.mesh_height == 0) {
            return Err("mesh_width and mesh_height must be set together".into());
        }
        let (w, h) = self.mesh_dims();
        if w as u64 * h as u64 != self.nodes as u64 {
            return Err(format!(
                "mesh {w}x{h} holds {} nodes, config says {}",
                w as u64 * h as u64,
                self.nodes
            ));
        }
        match self.io_placement {
            IoPlacement::Spread => {}
            IoPlacement::Corners => {
                if self.io_nodes != 4 {
                    return Err(format!(
                        "io=corners needs exactly 4 I/O nodes, got {}",
                        self.io_nodes
                    ));
                }
                if w < 2 || h < 2 {
                    return Err(format!("io=corners needs a mesh of at least 2x2, got {w}x{h}"));
                }
            }
            IoPlacement::Row => {
                if self.io_nodes > w || !w.is_multiple_of(self.io_nodes) {
                    return Err(format!(
                        "io=row needs the mesh width ({w}) to be a multiple of the \
                         I/O node count ({})",
                        self.io_nodes
                    ));
                }
            }
        }
        if self.has_ring() && self.ring_channels < self.nodes as usize {
            return Err("each node needs its own cache channel".into());
        }
        if self.ring_count == 0 {
            return Err("ring_count must be at least 1".into());
        }
        if self.dir_shards == 0 {
            return Err("dir_shards must be at least 1".into());
        }
        if self.frames_per_node() <= self.min_free_frames {
            return Err("min_free_frames must be below frames/node".into());
        }
        if !(self.app_scale > 0.0 && self.app_scale <= 1.0) {
            return Err("app_scale must be in (0, 1]".into());
        }
        if self.prefetch == PrefetchMode::Adaptive && self.prefetch_window < 2 {
            return Err("prefetch_window must be at least 2".into());
        }
        self.faults.validate()?;
        for &(_, ch) in &self.faults.ring_channel_failures {
            if !self.has_ring() {
                return Err("ring_channel_failures require a NWCache machine".into());
            }
            // Channel ids are global across the fabric:
            // `ring * ring_channels + node`.
            if ch as usize >= self.ring_channels * self.ring_count {
                return Err(format!(
                    "ring channel failure targets channel {ch}, fabric has {}",
                    self.ring_channels * self.ring_count
                ));
            }
        }
        Ok(())
    }
}

/// The portable subset of a run request: everything `nwsim run`'s
/// common flags can say about a configuration, as data.
///
/// This is the single config-construction path shared by the batch CLI
/// and the `nwserve-v1` server, which is what makes a served run's
/// summary byte-identical to `nwsim run --json` for the same request:
/// both sides lower the same `RunParams` through
/// [`RunParams::to_config`], so there is no second flag-interpretation
/// code path to drift.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Machine kind (`nwsim run --machine`).
    pub machine: MachineKind,
    /// Prefetch policy (`--prefetch`).
    pub prefetch: PrefetchMode,
    /// Adaptive-detector window override (`--prefetch adaptive:N`).
    pub prefetch_window: Option<usize>,
    /// Application/machine scale factor (`--scale`).
    pub scale: f64,
    /// Workload seed override (`--seed`).
    pub seed: Option<u64>,
    /// Generated-topology spec (`--topo`), DESIGN.md §17 grammar.
    pub topo: Option<String>,
}

impl Default for RunParams {
    /// The CLI's defaults: the NWCache machine with naive prefetching
    /// at scale 0.25 on the paper topology.
    fn default() -> Self {
        RunParams {
            machine: MachineKind::NwCache,
            prefetch: PrefetchMode::Naive,
            prefetch_window: None,
            scale: 0.25,
            seed: None,
            topo: None,
        }
    }
}

impl RunParams {
    /// Lower the request to a validated [`MachineConfig`]. Topology
    /// errors surface first (they name the offending spec field), then
    /// whole-config validation.
    pub fn to_config(&self) -> Result<MachineConfig, crate::error::SimError> {
        use crate::error::SimError;
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(SimError::BadConfig(format!(
                "scale {} out of range (0, 1]",
                self.scale
            )));
        }
        let mut cfg = match &self.topo {
            Some(spec) => {
                let topo = crate::topo::TopoSpec::parse(spec)
                    .map_err(|e| SimError::BadConfig(format!("bad topo: {e}")))?;
                topo.validate()
                    .map_err(|e| SimError::BadConfig(format!("bad topo: {e}")))?;
                topo.to_config(self.machine, self.prefetch, self.scale)
            }
            None => MachineConfig::scaled_paper(self.machine, self.prefetch, self.scale),
        };
        if let Some(w) = self.prefetch_window {
            cfg.prefetch_window = w;
        }
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        cfg.validate().map_err(SimError::BadConfig)?;
        Ok(cfg)
    }
}

impl MachineKind {
    /// Parse a CLI machine label (`standard|std|nwcache|nwc|dcd`).
    /// Shared by `nwsim` and the serve protocol so both reject exactly
    /// the same strings.
    pub fn parse(s: &str) -> Option<MachineKind> {
        match s {
            "standard" | "std" => Some(MachineKind::Standard),
            "nwcache" | "nwc" => Some(MachineKind::NwCache),
            "dcd" => Some(MachineKind::Dcd),
            _ => None,
        }
    }
}

impl PrefetchMode {
    /// Parse a CLI prefetch spec: `optimal|naive|window|adaptive[:N]`,
    /// where the optional `:N` suffix sets the adaptive detector's
    /// sliding window.
    pub fn parse_spec(s: &str) -> Result<(PrefetchMode, Option<usize>), String> {
        if let Some(w) = s.strip_prefix("adaptive:") {
            let window = w
                .parse()
                .map_err(|_| format!("bad adaptive window '{w}'"))?;
            return Ok((PrefetchMode::Adaptive, Some(window)));
        }
        match s {
            "optimal" | "opt" => Ok((PrefetchMode::Optimal, None)),
            "naive" => Ok((PrefetchMode::Naive, None)),
            "window" | "win" => Ok((PrefetchMode::Window, None)),
            "adaptive" => Ok((PrefetchMode::Adaptive, None)),
            other => Err(format!(
                "unknown prefetch '{other}' (optimal|naive|window|adaptive[:window])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Optimal);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.io_nodes, 4);
        assert_eq!(c.page_bytes, 4096);
        assert_eq!(c.tlb_miss_latency, 100);
        assert_eq!(c.tlb_shootdown_latency, 500);
        assert_eq!(c.interrupt_latency, 400);
        assert_eq!(c.memory_per_node, 262_144);
        assert_eq!(c.frames_per_node(), 64);
        assert_eq!(c.ring_channels, 8);
        assert_eq!(c.ring_slots_per_channel, 16);
        assert_eq!(c.ring_round_trip, 10_400);
        assert_eq!(c.disk_cache_pages, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn min_free_defaults_follow_section5() {
        use MachineKind::*;
        use PrefetchMode::*;
        assert_eq!(MachineConfig::paper_default(NwCache, Optimal).min_free_frames, 2);
        assert_eq!(MachineConfig::paper_default(NwCache, Naive).min_free_frames, 2);
        assert_eq!(MachineConfig::paper_default(Standard, Optimal).min_free_frames, 12);
        assert_eq!(MachineConfig::paper_default(Standard, Naive).min_free_frames, 4);
    }

    #[test]
    fn io_nodes_are_spread() {
        let c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        assert_eq!(c.io_node_of_disk(0), 0);
        assert_eq!(c.io_node_of_disk(1), 2);
        assert_eq!(c.io_node_of_disk(2), 4);
        assert_eq!(c.io_node_of_disk(3), 6);
    }

    #[test]
    fn out_of_range_disk_is_a_structured_error() {
        // The old guard was `debug_assert!(d < io_nodes)`: release
        // builds silently computed `4 * (8/4) = 8`, a node that does
        // not exist.
        let c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        let err = c.try_io_node_of_disk(4).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)), "{err}");
        assert!(err.to_string().contains("disk 4"), "{err}");
    }

    #[test]
    fn scaled_ring_slots_round_to_nearest() {
        // 16 * 0.3 = 4.8: truncation gave 4 (an 8% capacity cut),
        // rounding gives 5. Values just below the boundary still
        // round down, and the floor of 2 still applies.
        let c = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.3);
        assert_eq!(c.ring_slots_per_channel, 5);
        let c = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.27);
        assert_eq!(c.ring_slots_per_channel, 4); // 4.32 rounds down
        let c = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05);
        assert_eq!(c.ring_slots_per_channel, 2); // 0.8 clamps to the floor
        let c = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.25);
        assert_eq!(c.ring_slots_per_channel, 4); // exact, unchanged by the fix
    }

    #[test]
    fn corner_and_row_placements_map_to_the_mesh() {
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.mesh_width = 4;
        c.mesh_height = 2;
        c.io_placement = IoPlacement::Corners;
        assert!(c.validate().is_ok());
        assert_eq!(
            (0..4).map(|d| c.io_node_of_disk(d)).collect::<Vec<_>>(),
            vec![0, 3, 4, 7]
        );
        c.io_placement = IoPlacement::Row;
        assert!(c.validate().is_ok());
        assert_eq!(
            (0..4).map(|d| c.io_node_of_disk(d)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn topology_validation_rejects_bad_shapes() {
        // Mesh area must equal the node count.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.mesh_width = 3;
        c.mesh_height = 3;
        assert!(c.validate().is_err());
        // Width and height must be set together.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.mesh_width = 8;
        assert!(c.validate().is_err());
        // Corners placement needs exactly 4 I/O nodes...
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.io_nodes = 2;
        c.io_placement = IoPlacement::Corners;
        assert!(c.validate().is_err());
        // ...and a 2D mesh (1xN has coincident corners).
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.mesh_width = 8;
        c.mesh_height = 1;
        c.io_placement = IoPlacement::Corners;
        assert!(c.validate().is_err());
        // Row placement needs width % io_nodes == 0.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.mesh_width = 2;
        c.mesh_height = 4;
        c.io_placement = IoPlacement::Row;
        assert!(c.validate().is_err());
        // Zero rings / zero shards are invalid.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.ring_count = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.dir_shards = 0;
        assert!(c.validate().is_err());
        // Node cap.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.nodes = 2048;
        c.io_nodes = 1024;
        c.ring_channels = 2048;
        assert!(c.validate().is_err());
        // A fault targeting a second-ring channel validates only when
        // the fabric has that ring.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.ring_channel_failures = vec![(1000, 11)];
        assert!(c.validate().is_err());
        c.ring_count = 2;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.ring_channels = 4;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.io_nodes = 3;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.min_free_frames = 64;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.app_scale = 0.0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Adaptive);
        c.prefetch_window = 1;
        assert!(c.validate().is_err());
        // Other modes ignore the window.
        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.prefetch_window = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_paper_preserves_out_of_core_ratio() {
        let full = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        let half = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.5);
        // Memory and ring shrink roughly with the scale.
        assert!(half.memory_per_node < full.memory_per_node);
        assert!(half.ring_slots_per_channel < full.ring_slots_per_channel);
        assert!(half.validate().is_ok());
        // Scale 1.0 is exactly the paper config.
        let same = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 1.0);
        assert_eq!(same.memory_per_node, full.memory_per_node);
        assert_eq!(same.ring_slots_per_channel, full.ring_slots_per_channel);
    }

    #[test]
    fn scaled_paper_keeps_min_free_sane() {
        for scale in [0.02, 0.05, 0.1, 0.3, 0.7] {
            for kind in [MachineKind::Standard, MachineKind::NwCache, MachineKind::Dcd] {
                for pf in [
                    PrefetchMode::Optimal,
                    PrefetchMode::Naive,
                    PrefetchMode::Window,
                    PrefetchMode::Adaptive,
                ] {
                    let cfg = MachineConfig::scaled_paper(kind, pf, scale);
                    assert!(cfg.validate().is_ok(), "{kind:?} {pf:?} {scale}");
                    assert!(cfg.min_free_frames >= 2);
                    assert!(cfg.min_free_frames < cfg.frames_per_node());
                }
            }
        }
    }

    #[test]
    fn window_and_dcd_defaults() {
        let w = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Window);
        assert_eq!(w.min_free_frames, 8);
        let a = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Adaptive);
        assert_eq!(a.min_free_frames, 8);
        assert_eq!(a.prefetch_window, 16);
        let d = MachineConfig::paper_default(MachineKind::Dcd, PrefetchMode::Naive);
        assert_eq!(d.min_free_frames, 4);
        assert!(!d.has_ring());
        assert_eq!(d.replacement, ReplacementPolicy::Lru);
    }

    #[test]
    fn default_fault_plan_is_inactive_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        let c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        assert!(!c.faults.is_active());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_plan_validation_rejects_bad_params() {
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.disk_error_rate = 1.5;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.mesh_drop_rate = -0.1;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.max_retries = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.request_timeout = 0;
        assert!(c.validate().is_err());

        // Channel index out of range.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.ring_channel_failures = vec![(1000, 99)];
        assert!(c.validate().is_err());

        // Ring failures need a ring.
        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.faults.ring_channel_failures = vec![(1000, 0)];
        assert!(c.validate().is_err());

        // A well-formed active plan passes.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.disk_error_rate = 1e-3;
        c.faults.ring_channel_failures = vec![(1000, 3)];
        assert!(c.faults.is_active());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn lookahead_is_positive_and_bounded_by_the_ring() {
        for kind in [MachineKind::Standard, MachineKind::NwCache, MachineKind::Dcd] {
            let c = MachineConfig::paper_default(kind, PrefetchMode::Naive);
            let w = c.pdes_lookahead();
            assert!(w > 0, "{kind:?}: lookahead must be positive");
            assert!(w <= c.ring_round_trip, "{kind:?}: {w}");
        }
        // Paper config: the binding floor is the one-hop control
        // message (2*20 NI + 4 switch + 16 serialization).
        let c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        assert_eq!(c.pdes_lookahead(), 60);
    }

    #[test]
    fn standard_machine_has_no_ring() {
        assert!(!MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive).has_ring());
        assert!(MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive).has_ring());
    }
}
