//! Machine configuration (paper Table 1 plus modelling constants).

use nw_sim::time::usecs;
use nw_sim::Time;

/// Whether the machine carries swap-outs over the mesh (standard) or
/// over the optical ring (NWCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// The baseline multiprocessor: swap-outs cross the interconnect
    /// to the disk controller caches (ACK/NACK/OK flow control).
    Standard,
    /// The NWCache-equipped multiprocessor: swap-outs go to the node's
    /// ring cache channel; I/O-node interfaces drain them to the disk
    /// caches; faults can be served from the ring (victim caching).
    NwCache,
    /// The Disk Caching Disk baseline (related work \[7\]): the standard
    /// machine with a log disk between each RAM disk cache and data
    /// disk — flushes become cheap sequential appends, but re-reading
    /// staged data pays full disk mechanics.
    Dcd,
}

/// The two prefetching extremes evaluated in the paper (§3.1), plus
/// the realistic middle ground the paper anticipates ("we expect
/// results for realistic and sophisticated prefetching techniques to
/// lie between these two extremes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchMode {
    /// Idealized: every page read hits the disk controller cache.
    Optimal,
    /// On a controller-cache read miss, sequentially following pages
    /// are prefetched into the controller cache.
    Naive,
    /// Realistic windowed prefetching: sequential streams are kept
    /// ahead of the reader by a fixed window, extended on hits.
    Window,
    /// Online pattern-detecting prefetching: each node's demand-miss
    /// stream is classified over a sliding window
    /// (sequential / strided / temporal / random) and bounded,
    /// cancellable speculative reads are issued through the disk
    /// controllers' side caches (see `crate::prefetch`).
    Adaptive,
}

/// Page-replacement policy used by the VM system (the paper uses
/// LRU; the alternatives are OS-realism ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently used resident page (the paper's §3.1).
    Lru,
    /// Evict the oldest resident page regardless of use.
    Fifo,
    /// Second-chance clock: skip (and clear) referenced pages once,
    /// evicting the first unreferenced page in arrival order.
    Clock,
}

/// Deterministic fault-injection schedule. The default plan is
/// *inactive*: no fault machinery draws random numbers or schedules
/// events, so clean runs stay bit-identical to a build without the
/// subsystem. Activate it by setting any rate above zero or listing a
/// ring channel failure.
///
/// The retry/timeout parameters always carry sane defaults so a
/// partially filled plan validates; they only take effect once the
/// plan is active.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG streams (independent of the workload
    /// seed so the same fault schedule can be replayed over different
    /// inputs).
    pub seed: u64,
    /// Probability that a disk media read fails and must be retried
    /// (per physical page access).
    pub disk_error_rate: f64,
    /// Probability that a disk request gets stuck and is only
    /// recovered by the request timeout (per access).
    pub disk_stuck_rate: f64,
    /// Ring channel failures: `(time, channel)` pairs. At `time` the
    /// channel dies permanently, destroying every page circulating on
    /// it; the machine re-issues those swap-outs over the mesh and
    /// routes future swap-outs of that node through the standard
    /// ACK/NACK path.
    pub ring_channel_failures: Vec<(Time, u32)>,
    /// Probability that a mesh control message (swap ACK/OK, ring
    /// cancel) is dropped in flight.
    pub mesh_drop_rate: f64,
    /// Probability that a mesh control message arrives corrupted; the
    /// CRC check discards it, so the effect equals a drop but is
    /// counted separately.
    pub mesh_corrupt_rate: f64,
    /// Maximum retries for a failed disk access or timed-out swap
    /// before the run aborts with `SimError::RetriesExhausted`.
    pub max_retries: u32,
    /// Base backoff before a disk retry; doubles per attempt.
    pub retry_backoff: Time,
    /// Pcycles a swap-out or stuck disk request may remain
    /// unacknowledged before the timeout path re-issues it.
    pub request_timeout: Time,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            disk_error_rate: 0.0,
            disk_stuck_rate: 0.0,
            ring_channel_failures: Vec::new(),
            mesh_drop_rate: 0.0,
            mesh_corrupt_rate: 0.0,
            max_retries: 5,
            retry_backoff: 50_000,
            request_timeout: 2_000_000,
        }
    }
}

impl FaultPlan {
    /// Whether any fault is scheduled. Inactive plans must leave the
    /// simulation bit-identical to a run without fault machinery.
    pub fn is_active(&self) -> bool {
        self.disk_error_rate > 0.0
            || self.disk_stuck_rate > 0.0
            || !self.ring_channel_failures.is_empty()
            || self.mesh_drop_rate > 0.0
            || self.mesh_corrupt_rate > 0.0
    }

    /// Whether any mesh-level fault is scheduled (gates the swap
    /// timeout machinery).
    pub fn mesh_faults_active(&self) -> bool {
        self.mesh_drop_rate > 0.0 || self.mesh_corrupt_rate > 0.0
    }

    /// Validate rates and retry bounds.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("disk_error_rate", self.disk_error_rate),
            ("disk_stuck_rate", self.disk_stuck_rate),
            ("mesh_drop_rate", self.mesh_drop_rate),
            ("mesh_corrupt_rate", self.mesh_corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("fault {name} must be in [0, 1], got {rate}"));
            }
        }
        if self.max_retries == 0 {
            return Err("fault max_retries must be > 0".into());
        }
        if self.retry_backoff == 0 {
            return Err("fault retry_backoff must be > 0".into());
        }
        if self.request_timeout == 0 {
            return Err("fault request_timeout must be > 0".into());
        }
        Ok(())
    }
}

/// Full machine configuration. Defaults mirror the paper's Table 1;
/// fields not in the table are modelling constants "comparable to
/// modern systems" (1999), as the paper puts it.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Standard or NWCache machine.
    pub kind: MachineKind,
    /// Prefetching policy for the disk controllers.
    pub prefetch: PrefetchMode,

    /// Number of nodes (Table 1: 8).
    pub nodes: u32,
    /// Number of I/O-enabled nodes (Table 1: 4).
    pub io_nodes: u32,
    /// Page size in bytes (Table 1: 4 KB).
    pub page_bytes: u64,
    /// TLB miss latency in pcycles (Table 1: 100).
    pub tlb_miss_latency: Time,
    /// TLB shootdown latency paid by the initiator (Table 1: 500).
    pub tlb_shootdown_latency: Time,
    /// Interrupt latency paid by every other processor (Table 1: 400).
    pub interrupt_latency: Time,
    /// Memory per node in bytes (Table 1: 256 KB).
    pub memory_per_node: u64,
    /// Minimum free page frames per node (paper §5: best values are 2
    /// with the NWCache; 12/4 for the standard machine under
    /// optimal/naive prefetching).
    pub min_free_frames: u32,
    /// Page-replacement policy (paper: LRU).
    pub replacement: ReplacementPolicy,

    /// WDM cache channels (Table 1: 8; one per node).
    pub ring_channels: usize,
    /// Page slots per cache channel (Table 1: 64 KB per channel = 16).
    pub ring_slots_per_channel: usize,
    /// Ring round-trip latency (Table 1: 52 usecs).
    pub ring_round_trip: Time,

    /// Disk controller cache capacity in pages (Table 1: 16 KB = 4).
    pub disk_cache_pages: usize,
    /// Accumulation window before the controller flushes a swap-out.
    pub disk_flush_delay: Time,
    /// Sliding-window length of the adaptive prefetcher's per-node
    /// pattern detector (also sizes the speculative side caches and,
    /// halved, the per-node in-flight speculation cap). Ignored by the
    /// other prefetch modes.
    pub prefetch_window: usize,

    /// TLB entries per processor.
    pub tlb_entries: usize,
    /// L1 hit latency.
    pub l1_latency: Time,
    /// L2 hit latency (on top of L1).
    pub l2_latency: Time,
    /// DRAM access latency at the home node (on top of bus transfer).
    pub mem_latency: Time,
    /// Directory lookup overhead at the home node.
    pub dir_latency: Time,
    /// Write-buffer entries per processor.
    pub wb_entries: usize,
    /// Control-message payload size on the mesh (bytes).
    pub ctl_msg_bytes: u64,
    /// Max pcycles a processor may run ahead inline before yielding to
    /// the event queue (bounds timing skew between processors).
    pub quantum: Time,

    /// Application input scale (1.0 = paper's Table 2 inputs).
    pub app_scale: f64,
    /// Workload seed (graph topology, radix keys, ...).
    pub seed: u64,

    /// Fault-injection schedule (default: inactive).
    pub faults: FaultPlan,
}

impl MachineConfig {
    /// The paper's Table 1 configuration. `min_free_frames` is set to
    /// the paper's §5 best value for the chosen kind and prefetch
    /// mode: 2 for the NWCache machine, 12 (optimal) or 4 (naive) for
    /// the standard machine.
    pub fn paper_default(kind: MachineKind, prefetch: PrefetchMode) -> Self {
        let min_free_frames = match (kind, prefetch) {
            (MachineKind::NwCache, _) => 2,
            (MachineKind::Standard | MachineKind::Dcd, PrefetchMode::Optimal) => 12,
            (MachineKind::Standard | MachineKind::Dcd, PrefetchMode::Naive) => 4,
            // Between the two extremes, like the modes themselves.
            (
                MachineKind::Standard | MachineKind::Dcd,
                PrefetchMode::Window | PrefetchMode::Adaptive,
            ) => 8,
        };
        MachineConfig {
            kind,
            prefetch,
            nodes: 8,
            io_nodes: 4,
            page_bytes: 4096,
            tlb_miss_latency: 100,
            tlb_shootdown_latency: 500,
            interrupt_latency: 400,
            memory_per_node: 256 * 1024,
            min_free_frames,
            replacement: ReplacementPolicy::Lru,
            ring_channels: 8,
            ring_slots_per_channel: 16,
            ring_round_trip: usecs(52),
            disk_cache_pages: 4,
            disk_flush_delay: 50_000,
            prefetch_window: 16,
            tlb_entries: 64,
            l1_latency: 1,
            l2_latency: 10,
            mem_latency: 30,
            dir_latency: 10,
            wb_entries: 8,
            ctl_msg_bytes: 16,
            quantum: 2_000,
            app_scale: 1.0,
            seed: 0x1999,
            faults: FaultPlan::default(),
        }
    }

    /// A paper configuration shrunk to `scale`: the application inputs
    /// *and* the machine's memory/ring capacities shrink together so
    /// the data-to-memory ratio (and therefore the out-of-core
    /// behaviour) is preserved. `scale = 1.0` is exactly
    /// [`MachineConfig::paper_default`].
    pub fn scaled_paper(kind: MachineKind, prefetch: PrefetchMode, scale: f64) -> Self {
        let mut cfg = Self::paper_default(kind, prefetch);
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        cfg.app_scale = scale;
        if scale < 1.0 {
            let frames = ((cfg.frames_per_node() as f64 * scale) as u64).max(8);
            cfg.memory_per_node = frames * cfg.page_bytes;
            cfg.ring_slots_per_channel =
                ((cfg.ring_slots_per_channel as f64 * scale) as usize).max(2);
            cfg.min_free_frames = cfg.min_free_frames.min(frames as u32 / 2).max(2);
        }
        cfg
    }

    /// Page frames per node implied by the memory size.
    pub fn frames_per_node(&self) -> u32 {
        (self.memory_per_node / self.page_bytes) as u32
    }

    /// The node hosting disk `d` (disks are spread over even nodes:
    /// 0, 2, 4, ... for an 8-node/4-disk machine).
    pub fn io_node_of_disk(&self, d: u32) -> u32 {
        debug_assert!(d < self.io_nodes);
        d * (self.nodes / self.io_nodes)
    }

    /// Whether the NWCache hardware is present.
    pub fn has_ring(&self) -> bool {
        self.kind == MachineKind::NwCache
    }

    /// Conservative PDES lookahead: a lower bound (in pcycles) on how
    /// long any cross-node interaction takes to become visible at
    /// another node. An event executed at time `t` on one node can
    /// only affect another node at `t + lookahead` or later, so
    /// same-timestamp events on different nodes are causally
    /// independent and a parallel engine may execute them in any
    /// order (see `machine::pdes` and DESIGN.md §16).
    ///
    /// The floors per cross-domain channel:
    /// * **mesh** — the cheapest message is a control payload over a
    ///   single hop: two network-interface crossings, one switch
    ///   delay, and the payload's serialization cycles;
    /// * **ring** — a page is only visible to another node after at
    ///   least a full ring round-trip;
    /// * **disk** — the cheapest disk interaction is a perfectly
    ///   sequential page transfer (no seek, no rotation) at the
    ///   paper's 20 MB/s media rate.
    pub fn pdes_lookahead(&self) -> Time {
        let mesh = nw_mesh::MeshConfig::paper_default();
        let mesh_floor = 2 * mesh.ni_overhead + mesh.switch_delay + self.ctl_msg_bytes;
        let disk_floor = self.page_bytes * usecs(1) / 20;
        mesh_floor.min(self.ring_round_trip).min(disk_floor)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.io_nodes == 0 {
            return Err("need nodes and I/O nodes".into());
        }
        if self.io_nodes > self.nodes {
            return Err("more I/O nodes than nodes".into());
        }
        if !self.nodes.is_multiple_of(self.io_nodes) {
            return Err("nodes must be a multiple of io_nodes".into());
        }
        if self.has_ring() && self.ring_channels < self.nodes as usize {
            return Err("each node needs its own cache channel".into());
        }
        if self.frames_per_node() <= self.min_free_frames {
            return Err("min_free_frames must be below frames/node".into());
        }
        if !(self.app_scale > 0.0 && self.app_scale <= 1.0) {
            return Err("app_scale must be in (0, 1]".into());
        }
        if self.prefetch == PrefetchMode::Adaptive && self.prefetch_window < 2 {
            return Err("prefetch_window must be at least 2".into());
        }
        self.faults.validate()?;
        for &(_, ch) in &self.faults.ring_channel_failures {
            if !self.has_ring() {
                return Err("ring_channel_failures require a NWCache machine".into());
            }
            if ch as usize >= self.ring_channels {
                return Err(format!(
                    "ring channel failure targets channel {ch}, machine has {}",
                    self.ring_channels
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Optimal);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.io_nodes, 4);
        assert_eq!(c.page_bytes, 4096);
        assert_eq!(c.tlb_miss_latency, 100);
        assert_eq!(c.tlb_shootdown_latency, 500);
        assert_eq!(c.interrupt_latency, 400);
        assert_eq!(c.memory_per_node, 262_144);
        assert_eq!(c.frames_per_node(), 64);
        assert_eq!(c.ring_channels, 8);
        assert_eq!(c.ring_slots_per_channel, 16);
        assert_eq!(c.ring_round_trip, 10_400);
        assert_eq!(c.disk_cache_pages, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn min_free_defaults_follow_section5() {
        use MachineKind::*;
        use PrefetchMode::*;
        assert_eq!(MachineConfig::paper_default(NwCache, Optimal).min_free_frames, 2);
        assert_eq!(MachineConfig::paper_default(NwCache, Naive).min_free_frames, 2);
        assert_eq!(MachineConfig::paper_default(Standard, Optimal).min_free_frames, 12);
        assert_eq!(MachineConfig::paper_default(Standard, Naive).min_free_frames, 4);
    }

    #[test]
    fn io_nodes_are_spread() {
        let c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        assert_eq!(c.io_node_of_disk(0), 0);
        assert_eq!(c.io_node_of_disk(1), 2);
        assert_eq!(c.io_node_of_disk(2), 4);
        assert_eq!(c.io_node_of_disk(3), 6);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.ring_channels = 4;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.io_nodes = 3;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.min_free_frames = 64;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.app_scale = 0.0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Adaptive);
        c.prefetch_window = 1;
        assert!(c.validate().is_err());
        // Other modes ignore the window.
        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.prefetch_window = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_paper_preserves_out_of_core_ratio() {
        let full = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        let half = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.5);
        // Memory and ring shrink roughly with the scale.
        assert!(half.memory_per_node < full.memory_per_node);
        assert!(half.ring_slots_per_channel < full.ring_slots_per_channel);
        assert!(half.validate().is_ok());
        // Scale 1.0 is exactly the paper config.
        let same = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 1.0);
        assert_eq!(same.memory_per_node, full.memory_per_node);
        assert_eq!(same.ring_slots_per_channel, full.ring_slots_per_channel);
    }

    #[test]
    fn scaled_paper_keeps_min_free_sane() {
        for scale in [0.02, 0.05, 0.1, 0.3, 0.7] {
            for kind in [MachineKind::Standard, MachineKind::NwCache, MachineKind::Dcd] {
                for pf in [
                    PrefetchMode::Optimal,
                    PrefetchMode::Naive,
                    PrefetchMode::Window,
                    PrefetchMode::Adaptive,
                ] {
                    let cfg = MachineConfig::scaled_paper(kind, pf, scale);
                    assert!(cfg.validate().is_ok(), "{kind:?} {pf:?} {scale}");
                    assert!(cfg.min_free_frames >= 2);
                    assert!(cfg.min_free_frames < cfg.frames_per_node());
                }
            }
        }
    }

    #[test]
    fn window_and_dcd_defaults() {
        let w = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Window);
        assert_eq!(w.min_free_frames, 8);
        let a = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Adaptive);
        assert_eq!(a.min_free_frames, 8);
        assert_eq!(a.prefetch_window, 16);
        let d = MachineConfig::paper_default(MachineKind::Dcd, PrefetchMode::Naive);
        assert_eq!(d.min_free_frames, 4);
        assert!(!d.has_ring());
        assert_eq!(d.replacement, ReplacementPolicy::Lru);
    }

    #[test]
    fn default_fault_plan_is_inactive_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        let c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        assert!(!c.faults.is_active());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_plan_validation_rejects_bad_params() {
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.disk_error_rate = 1.5;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.mesh_drop_rate = -0.1;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.max_retries = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.request_timeout = 0;
        assert!(c.validate().is_err());

        // Channel index out of range.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.ring_channel_failures = vec![(1000, 99)];
        assert!(c.validate().is_err());

        // Ring failures need a ring.
        let mut c = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
        c.faults.ring_channel_failures = vec![(1000, 0)];
        assert!(c.validate().is_err());

        // A well-formed active plan passes.
        let mut c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        c.faults.disk_error_rate = 1e-3;
        c.faults.ring_channel_failures = vec![(1000, 3)];
        assert!(c.faults.is_active());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn lookahead_is_positive_and_bounded_by_the_ring() {
        for kind in [MachineKind::Standard, MachineKind::NwCache, MachineKind::Dcd] {
            let c = MachineConfig::paper_default(kind, PrefetchMode::Naive);
            let w = c.pdes_lookahead();
            assert!(w > 0, "{kind:?}: lookahead must be positive");
            assert!(w <= c.ring_round_trip, "{kind:?}: {w}");
        }
        // Paper config: the binding floor is the one-hop control
        // message (2*20 NI + 4 switch + 16 serialization).
        let c = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
        assert_eq!(c.pdes_lookahead(), 60);
    }

    #[test]
    fn standard_machine_has_no_ring() {
        assert!(!MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive).has_ring());
        assert!(MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive).has_ring());
    }
}
