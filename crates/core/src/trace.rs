//! Page-lifecycle tracing.
//!
//! Register pages of interest with [`crate::Machine::trace_page`]
//! before running; the machine records a timestamped event for every
//! protocol transition those pages go through. Useful for debugging
//! protocol changes and for teaching — `examples/page_lifecycle.rs`
//! prints one page's journey through memory, the ring and the disk.

use crate::vm::Vpn;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::Time;

/// One step in a traced page's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A processor faulted on the page; the request goes to the disk.
    FaultToDisk {
        /// Faulting processor.
        proc: u32,
    },
    /// A processor faulted on the page and found the Ring bit set.
    FaultToRing {
        /// Faulting processor.
        proc: u32,
        /// Cache channel snooped.
        channel: u32,
    },
    /// The page's data arrived in a node's memory.
    Arrived {
        /// Destination node.
        node: u32,
    },
    /// The page was chosen for replacement (access-rights downgrade).
    Evicted {
        /// Node evicting it.
        node: u32,
        /// Whether a swap-out was required.
        dirty: bool,
    },
    /// The page finished serializing onto its ring cache channel.
    OnRing {
        /// Channel (= swapping node).
        channel: u32,
    },
    /// The page was copied from the ring into a disk controller cache.
    Drained {
        /// Target disk.
        disk: u32,
    },
    /// The origin received the interface's ACK; ring slot freed.
    RingAcked,
    /// The page reached a disk controller cache over the mesh
    /// (standard machine) and was ACKed.
    SwapAcked,
    /// The controller NACKed the swap-out (cache full).
    SwapNacked,
    /// The page's blocks were written to the disk platters.
    Flushed,
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event (pcycles).
    pub at: Time,
    /// The page.
    pub vpn: Vpn,
    /// What happened.
    pub kind: TraceKind,
}

/// Collects lifecycle records for a registered set of pages.
#[derive(Debug, Default)]
pub struct PageTracer {
    watched: Vec<Vpn>,
    records: Vec<TraceRecord>,
}

impl PageTracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Watch `vpn`; idempotent.
    pub fn watch(&mut self, vpn: Vpn) {
        if !self.watched.contains(&vpn) {
            self.watched.push(vpn);
        }
    }

    /// Whether `vpn` is being traced.
    pub fn watching(&self, vpn: Vpn) -> bool {
        self.watched.contains(&vpn)
    }

    /// Record an event if `vpn` is watched.
    pub fn emit(&mut self, at: Time, vpn: Vpn, kind: TraceKind) {
        if self.watching(vpn) {
            self.records.push(TraceRecord { at, vpn, kind });
        }
    }

    /// All records collected so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records for one page only.
    pub fn records_for(&self, vpn: Vpn) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.records.iter().filter(move |r| r.vpn == vpn)
    }

    /// Serialize the watch list and every collected record.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.watched.len());
        for &vpn in &self.watched {
            w.u64(vpn);
        }
        w.usize(self.records.len());
        for rec in &self.records {
            w.time(rec.at);
            w.u64(rec.vpn);
            save_kind(w, rec.kind);
        }
    }

    /// Overlay state saved by [`PageTracer::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        self.watched.clear();
        for _ in 0..n {
            self.watched.push(r.u64()?);
        }
        let n = r.usize()?;
        self.records.clear();
        for _ in 0..n {
            let at = r.time()?;
            let vpn = r.u64()?;
            let kind = load_kind(r)?;
            self.records.push(TraceRecord { at, vpn, kind });
        }
        Ok(())
    }
}

fn save_kind(w: &mut CkptWriter, kind: TraceKind) {
    match kind {
        TraceKind::FaultToDisk { proc } => {
            w.u32(0);
            w.u32(proc);
        }
        TraceKind::FaultToRing { proc, channel } => {
            w.u32(1);
            w.u32(proc);
            w.u32(channel);
        }
        TraceKind::Arrived { node } => {
            w.u32(2);
            w.u32(node);
        }
        TraceKind::Evicted { node, dirty } => {
            w.u32(3);
            w.u32(node);
            w.bool(dirty);
        }
        TraceKind::OnRing { channel } => {
            w.u32(4);
            w.u32(channel);
        }
        TraceKind::Drained { disk } => {
            w.u32(5);
            w.u32(disk);
        }
        TraceKind::RingAcked => w.u32(6),
        TraceKind::SwapAcked => w.u32(7),
        TraceKind::SwapNacked => w.u32(8),
        TraceKind::Flushed => w.u32(9),
    }
}

fn load_kind(r: &mut CkptReader<'_>) -> Result<TraceKind, CkptError> {
    Ok(match r.u32()? {
        0 => TraceKind::FaultToDisk { proc: r.u32()? },
        1 => TraceKind::FaultToRing {
            proc: r.u32()?,
            channel: r.u32()?,
        },
        2 => TraceKind::Arrived { node: r.u32()? },
        3 => TraceKind::Evicted {
            node: r.u32()?,
            dirty: r.bool()?,
        },
        4 => TraceKind::OnRing { channel: r.u32()? },
        5 => TraceKind::Drained { disk: r.u32()? },
        6 => TraceKind::RingAcked,
        7 => TraceKind::SwapAcked,
        8 => TraceKind::SwapNacked,
        9 => TraceKind::Flushed,
        tag => {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("unknown trace-kind tag {tag}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_watched_pages_are_recorded() {
        let mut t = PageTracer::new();
        t.watch(5);
        t.emit(10, 5, TraceKind::FaultToDisk { proc: 0 });
        t.emit(20, 6, TraceKind::FaultToDisk { proc: 1 });
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].vpn, 5);
        assert!(t.watching(5));
        assert!(!t.watching(6));
    }

    #[test]
    fn watch_is_idempotent() {
        let mut t = PageTracer::new();
        t.watch(1);
        t.watch(1);
        t.emit(0, 1, TraceKind::RingAcked);
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn records_for_filters() {
        let mut t = PageTracer::new();
        t.watch(1);
        t.watch(2);
        t.emit(0, 1, TraceKind::SwapAcked);
        t.emit(5, 2, TraceKind::SwapNacked);
        t.emit(9, 1, TraceKind::Flushed);
        assert_eq!(t.records_for(1).count(), 2);
        assert_eq!(t.records_for(2).count(), 1);
    }
}
