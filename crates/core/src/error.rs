//! Structured simulation errors.
//!
//! Every off-nominal condition the machine model can hit — a bad
//! configuration, a protocol inconsistency, a deadlock, a stuck event
//! loop, or an injected fault that exhausted its retries — is
//! reported as a [`SimError`] through [`crate::Machine::try_run`]
//! instead of aborting the process. The panicking entry points
//! ([`crate::Machine::new`] / [`crate::Machine::run`]) remain as thin
//! wrappers for tests and callers that prefer to crash.

use nw_sim::Time;

/// A structured error from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed validation.
    BadConfig(String),
    /// The workload supplied the wrong number of action streams.
    WorkloadMismatch {
        /// Streams in the workload.
        streams: usize,
        /// Nodes in the machine.
        nodes: u32,
    },
    /// A protocol handler observed a state that the clean protocol
    /// can never produce (e.g. a disk reply for a page that is not in
    /// transit). With faults active most stale messages are tolerated;
    /// this is reserved for genuinely impossible states.
    ProtocolViolation {
        /// Simulation time of the observation.
        at: Time,
        /// What was inconsistent.
        what: String,
    },
    /// The event queue drained with unfinished processors.
    Deadlock {
        /// Simulation time when the queue emptied.
        at: Time,
        /// `(processor, why-blocked)` for each unfinished processor.
        blocked: Vec<(u32, String)>,
    },
    /// The watchdog saw too many events without simulated time
    /// advancing — the machine is livelocked.
    Stalled {
        /// The time the simulation is stuck at.
        at: Time,
        /// Events dispatched at that time before giving up.
        events: u64,
    },
    /// An injected fault was retried past `FaultPlan::max_retries`.
    RetriesExhausted {
        /// Which protocol gave up ("disk read", "swap-out", ...).
        kind: &'static str,
        /// The affected page.
        vpn: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// The page-conservation checker found a frame-accounting leak.
    PageLost {
        /// The node whose accounting broke, if attributable.
        node: u32,
        /// Description of the imbalance.
        detail: String,
    },
    /// A workload spec named an application that does not exist. The
    /// error carries the full registry so the CLI message can list
    /// every valid choice alongside the `workload:` spec syntax.
    UnknownApp {
        /// The name that failed to resolve.
        given: String,
        /// All valid application names, in table order.
        valid: Vec<&'static str>,
    },
    /// The worker thread running this simulation panicked. The panic
    /// was caught at the sweep boundary, so sibling runs in the same
    /// sweep are unaffected; the payload is preserved here.
    Panicked(String),
    /// A file operation failed (reading or writing a checkpoint, a
    /// report, a trace, ...).
    Io {
        /// Path of the file.
        path: String,
        /// The underlying I/O error.
        detail: String,
    },
    /// A checkpoint file failed validation: bad magic, checksum
    /// mismatch, truncation, or structurally impossible contents.
    CheckpointCorrupt {
        /// Path of the checkpoint (`<memory>` for in-memory bytes).
        path: String,
        /// What was wrong.
        detail: String,
    },
    /// A checkpoint was written by an unsupported format version.
    CheckpointVersion {
        /// Path of the checkpoint.
        path: String,
        /// Version byte found in the file.
        found: u8,
        /// Version this build supports.
        expected: u8,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::WorkloadMismatch { streams, nodes } => {
                write!(f, "workload has {streams} streams for {nodes} nodes")
            }
            SimError::ProtocolViolation { at, what } => {
                write!(f, "protocol violation at t={at}: {what}")
            }
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at t={at}: {} processors blocked (", blocked.len())?;
                for (i, (p, why)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "proc {p}: {why}")?;
                }
                write!(f, ")")
            }
            SimError::Stalled { at, events } => {
                write!(f, "stalled at t={at}: {events} events without time advancing")
            }
            SimError::RetriesExhausted { kind, vpn, attempts } => {
                write!(f, "{kind} for page {vpn} failed after {attempts} attempts")
            }
            SimError::PageLost { node, detail } => {
                write!(f, "page conservation broken on node {node}: {detail}")
            }
            SimError::UnknownApp { given, valid } => {
                write!(
                    f,
                    "unknown app '{given}': valid names are {}; \
                     or replay a trace with 'workload:<trace-file>', \
                     or generate one with 'workload:gen:<spec>'",
                    valid.join(", ")
                )
            }
            SimError::Panicked(msg) => {
                write!(f, "simulation worker panicked: {msg}")
            }
            SimError::Io { path, detail } => {
                write!(f, "I/O error on '{path}': {detail}")
            }
            SimError::CheckpointCorrupt { path, detail } => {
                write!(f, "corrupt checkpoint '{path}': {detail}")
            }
            SimError::CheckpointVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint '{path}' has unsupported version {found} (this build reads {expected})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The one documented process exit-code contract shared by every
/// `nwsim` subcommand — and, numerically unchanged, the `nwserve-v1`
/// protocol's job error codes (the server maps a failed job's
/// [`SimError`] through [`SimError::exit_code`] and ships the same
/// number to the client, which exits with it).
///
/// | code | meaning |
/// |------|---------|
/// | 0 | success |
/// | 1 | a comparison gate tripped: `ckpt-diff` drift, `bench --check-regress` regression |
/// | 2 | validation error: bad flags, unknown app, malformed spec, invalid config |
/// | 3 | simulation fault: deadlock, livelock, exhausted fault retries, I/O failure, worker panic |
/// | 4 | corrupt or version-incompatible checkpoint file |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ExitCode {
    /// The command completed.
    Success = 0,
    /// A comparison gate failed (checkpoint drift, bench regression).
    GateFailed = 1,
    /// The request itself was invalid: flags, specs, configuration.
    Validation = 2,
    /// The simulation (or its I/O) faulted after a valid request.
    SimFault = 3,
    /// A checkpoint file was corrupt or written by another version.
    CorruptCheckpoint = 4,
}

impl ExitCode {
    /// The numeric process exit code / protocol error code.
    pub fn code(self) -> i32 {
        self as i32
    }

    /// Inverse of [`ExitCode::code`] for protocol decoders. Unknown
    /// numbers conservatively map to [`ExitCode::SimFault`].
    pub fn from_code(code: u64) -> ExitCode {
        match code {
            0 => ExitCode::Success,
            1 => ExitCode::GateFailed,
            2 => ExitCode::Validation,
            4 => ExitCode::CorruptCheckpoint,
            _ => ExitCode::SimFault,
        }
    }

    /// Exit the current process with this code.
    pub fn exit(self) -> ! {
        std::process::exit(self.code())
    }
}

impl SimError {
    /// The [`ExitCode`] this error maps to — the single place where
    /// error kinds are bucketed into the documented CLI/protocol codes.
    pub fn exit_code(&self) -> ExitCode {
        match self {
            SimError::BadConfig(_)
            | SimError::WorkloadMismatch { .. }
            | SimError::UnknownApp { .. } => ExitCode::Validation,
            SimError::CheckpointCorrupt { .. } | SimError::CheckpointVersion { .. } => {
                ExitCode::CorruptCheckpoint
            }
            SimError::ProtocolViolation { .. }
            | SimError::Deadlock { .. }
            | SimError::Stalled { .. }
            | SimError::RetriesExhausted { .. }
            | SimError::PageLost { .. }
            | SimError::Panicked(_)
            | SimError::Io { .. } => ExitCode::SimFault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_frozen() {
        // The numeric contract is documented (DESIGN.md §18) and
        // asserted end-to-end in the CLI tests; renumbering is a
        // protocol break.
        assert_eq!(ExitCode::Success.code(), 0);
        assert_eq!(ExitCode::GateFailed.code(), 1);
        assert_eq!(ExitCode::Validation.code(), 2);
        assert_eq!(ExitCode::SimFault.code(), 3);
        assert_eq!(ExitCode::CorruptCheckpoint.code(), 4);
        for c in [0u64, 1, 2, 3, 4] {
            assert_eq!(ExitCode::from_code(c).code() as u64, c);
        }
        assert_eq!(ExitCode::from_code(99), ExitCode::SimFault);

        assert_eq!(
            SimError::BadConfig("x".into()).exit_code(),
            ExitCode::Validation
        );
        assert_eq!(
            SimError::UnknownApp { given: "x".into(), valid: vec![] }.exit_code(),
            ExitCode::Validation
        );
        assert_eq!(
            SimError::CheckpointCorrupt { path: "p".into(), detail: "d".into() }.exit_code(),
            ExitCode::CorruptCheckpoint
        );
        assert_eq!(
            SimError::CheckpointVersion { path: "p".into(), found: 9, expected: 1 }.exit_code(),
            ExitCode::CorruptCheckpoint
        );
        assert_eq!(
            SimError::Stalled { at: 1, events: 2 }.exit_code(),
            ExitCode::SimFault
        );
        assert_eq!(
            SimError::Io { path: "p".into(), detail: "d".into() }.exit_code(),
            ExitCode::SimFault
        );
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::RetriesExhausted {
            kind: "disk read",
            vpn: 42,
            attempts: 6,
        };
        let s = e.to_string();
        assert!(s.contains("disk read") && s.contains("42") && s.contains("6"));

        let e = SimError::Deadlock {
            at: 100,
            blocked: vec![(0, "Fault".into()), (3, "NoFree".into())],
        };
        let s = e.to_string();
        assert!(s.contains("t=100") && s.contains("proc 3"));
    }
}
