//! Experiment runners for every table and figure of the paper's
//! evaluation section (§5).
//!
//! Each function returns plain data rows; `report` renders them and
//! the `reproduce` binary in `nw-bench` prints them. All experiments
//! take a `scale` parameter: `1.0` reproduces the paper's Table 2
//! inputs, smaller values run the same experiment on shrunken inputs
//! (used by tests and Criterion benches).

use crate::config::{MachineConfig, MachineKind, PrefetchMode};
use crate::metrics::RunMetrics;
use nw_apps::AppId;

/// A paired standard-vs-NWCache measurement for one application.
#[derive(Debug, Clone)]
pub struct PairedRow {
    /// Application name.
    pub app: String,
    /// Metric on the standard machine.
    pub standard: f64,
    /// Metric on the NWCache machine.
    pub nwcache: f64,
}

/// Run every app on both machines under `prefetch`, in parallel, and
/// return the (standard, nwcache) metric pairs.
pub fn paired_runs(
    prefetch: PrefetchMode,
    scale: f64,
    apps: &[AppId],
) -> Vec<(RunMetrics, RunMetrics)> {
    let jobs: Vec<(MachineConfig, AppId)> = apps
        .iter()
        .flat_map(|&app| {
            let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, prefetch, scale);
            let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
            [(std_cfg, app), (nwc_cfg, app)]
        })
        .collect();
    let results = run_parallel(jobs);
    results
        .chunks(2)
        .map(|pair| (pair[0].clone(), pair[1].clone()))
        .collect()
}

/// Run a batch of simulations on the sweep thread pool (each
/// simulation is single-threaded and deterministic; results come back
/// in job order regardless of scheduling). The worker count is the
/// process-wide [`crate::sweep::jobs`] knob (`--jobs N` on the CLIs).
///
/// # Panics
/// Panics if any run fails — these experiment helpers model the
/// paper's clean evaluation. Use [`crate::sweep::run_grid`] for
/// sweeps that must survive failing cells.
pub fn run_parallel(jobs: Vec<(MachineConfig, AppId)>) -> Vec<RunMetrics> {
    crate::sweep::run_grid(crate::sweep::jobs(), jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("simulation failed: {e}")))
        .collect()
}

/// Tables 3 and 4: average swap-out time (pcycles) per application.
pub fn table_swap_out(prefetch: PrefetchMode, scale: f64) -> Vec<PairedRow> {
    paired_runs(prefetch, scale, &AppId::ALL)
        .into_iter()
        .map(|(s, n)| PairedRow {
            app: s.app.clone(),
            standard: s.swap_out_time.mean(),
            nwcache: n.swap_out_time.mean(),
        })
        .collect()
}

/// Tables 5 and 6: average write-combining factor per application.
pub fn table_combining(prefetch: PrefetchMode, scale: f64) -> Vec<PairedRow> {
    paired_runs(prefetch, scale, &AppId::ALL)
        .into_iter()
        .map(|(s, n)| PairedRow {
            app: s.app.clone(),
            standard: s.write_combining.mean(),
            nwcache: n.write_combining.mean(),
        })
        .collect()
}

/// Table 7: NWCache read hit rates (%) under naive and optimal
/// prefetching. Returned as (app, naive %, optimal %).
pub fn table_hit_rates(scale: f64) -> Vec<(String, f64, f64)> {
    let naive = paired_runs(PrefetchMode::Naive, scale, &AppId::ALL);
    let optimal = paired_runs(PrefetchMode::Optimal, scale, &AppId::ALL);
    naive
        .into_iter()
        .zip(optimal)
        .map(|((_, n_naive), (_, n_opt))| {
            (
                n_naive.app.clone(),
                n_naive.ring_hit_rate(),
                n_opt.ring_hit_rate(),
            )
        })
        .collect()
}

/// Table 8: average page-fault latency for disk-controller-cache hits
/// under naive prefetching (the paper's contention proxy).
pub fn table_disk_hit_latency(scale: f64) -> Vec<PairedRow> {
    paired_runs(PrefetchMode::Naive, scale, &AppId::ALL)
        .into_iter()
        .map(|(s, n)| PairedRow {
            app: s.app.clone(),
            standard: s.fault_latency_disk_hit.mean(),
            nwcache: n.fault_latency_disk_hit.mean(),
        })
        .collect()
}

/// One stacked bar of Figures 3/4.
#[derive(Debug, Clone)]
pub struct BreakdownBar {
    /// Application name.
    pub app: String,
    /// Machine ("standard" / "nwcache").
    pub machine: String,
    /// NoFree, Transit, Fault, TLB, Other — normalized so the standard
    /// machine's bar sums to 1.0.
    pub parts: [f64; 5],
}

/// Figures 3 (optimal) and 4 (naive): normalized execution-time
/// breakdowns for both machines, standard bar normalized to 1.0.
pub fn figure_breakdown(prefetch: PrefetchMode, scale: f64) -> Vec<BreakdownBar> {
    let mut bars = Vec::new();
    for (s, n) in paired_runs(prefetch, scale, &AppId::ALL) {
        let denom = s.exec_time.max(1);
        bars.push(BreakdownBar {
            app: s.app.clone(),
            machine: "standard".into(),
            parts: s.normalized_breakdown(denom),
        });
        bars.push(BreakdownBar {
            app: n.app.clone(),
            machine: "nwcache".into(),
            parts: n.normalized_breakdown(denom),
        });
    }
    bars
}

/// §5 first paragraph: sweep the minimum-free-frames policy for one
/// application; returns (min_free, exec_time) pairs.
pub fn minfree_sweep(
    app: AppId,
    kind: MachineKind,
    prefetch: PrefetchMode,
    values: &[u32],
    scale: f64,
) -> Vec<(u32, u64)> {
    let jobs: Vec<(MachineConfig, AppId)> = values
        .iter()
        .map(|&v| {
            let mut cfg = MachineConfig::scaled_paper(kind, prefetch, scale);
            cfg.min_free_frames = v.min(cfg.frames_per_node() - 1);
            (cfg, app)
        })
        .collect();
    values
        .iter()
        .copied()
        .zip(run_parallel(jobs).into_iter().map(|m| m.exec_time))
        .collect()
}

/// The paper's closing claim: how much disk-controller cache does the
/// *standard* machine need to approach NWCache performance? Sweeps the
/// controller cache size; returns (pages, exec_time) plus the NWCache
/// reference time at the paper's 4-page cache.
pub fn diskcache_sweep(
    app: AppId,
    prefetch: PrefetchMode,
    sizes: &[usize],
    scale: f64,
) -> (Vec<(usize, u64)>, u64) {
    let mut jobs: Vec<(MachineConfig, AppId)> = sizes
        .iter()
        .map(|&pages| {
            let mut cfg = MachineConfig::scaled_paper(MachineKind::Standard, prefetch, scale);
            cfg.disk_cache_pages = pages;
            (cfg, app)
        })
        .collect();
    let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
    jobs.push((nwc_cfg, app));
    let mut results = run_parallel(jobs);
    let nwc = results.pop().expect("nwc reference").exec_time;
    (
        sizes
            .iter()
            .copied()
            .zip(results.into_iter().map(|m| m.exec_time))
            .collect(),
        nwc,
    )
}

/// Overall performance summary: execution-time improvement (%) of the
/// NWCache machine per application.
pub fn overall_improvement(prefetch: PrefetchMode, scale: f64) -> Vec<(String, f64)> {
    paired_runs(prefetch, scale, &AppId::ALL)
        .into_iter()
        .map(|(s, n)| (s.app.clone(), n.improvement_over(&s)))
        .collect()
}

/// Replacement-policy ablation (extension): the paper prescribes LRU;
/// compare FIFO and Clock. Returns `(policy name, exec, swap_outs)`.
pub fn replacement_comparison(
    app: AppId,
    kind: MachineKind,
    prefetch: PrefetchMode,
    scale: f64,
) -> Vec<(&'static str, u64, u64)> {
    use crate::config::ReplacementPolicy;
    let policies = [
        ("lru", ReplacementPolicy::Lru),
        ("fifo", ReplacementPolicy::Fifo),
        ("clock", ReplacementPolicy::Clock),
    ];
    let jobs: Vec<(MachineConfig, AppId)> = policies
        .iter()
        .map(|&(_, p)| {
            let mut cfg = MachineConfig::scaled_paper(kind, prefetch, scale);
            cfg.replacement = p;
            (cfg, app)
        })
        .collect();
    policies
        .iter()
        .zip(run_parallel(jobs))
        .map(|(&(name, _), m)| (name, m.exec_time, m.swap_outs))
        .collect()
}

/// I/O-node sensitivity (extension): the paper's motivation is
/// machines where "not all nodes are I/O-enabled". Sweep the number
/// of I/O-enabled nodes (and disks) and compare machines. Returns
/// `(io_nodes, std_exec, nwc_exec)`.
pub fn ionode_sweep(
    app: AppId,
    prefetch: PrefetchMode,
    io_counts: &[u32],
    scale: f64,
) -> Vec<(u32, u64, u64)> {
    let jobs: Vec<(MachineConfig, AppId)> = io_counts
        .iter()
        .flat_map(|&io| {
            let mut std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, prefetch, scale);
            std_cfg.io_nodes = io;
            let mut nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
            nwc_cfg.io_nodes = io;
            [(std_cfg, app), (nwc_cfg, app)]
        })
        .collect();
    io_counts
        .iter()
        .copied()
        .zip(run_parallel(jobs).chunks(2).map(|c| (c[0].exec_time, c[1].exec_time)).collect::<Vec<_>>())
        .map(|(n, (s, w))| (n, s, w))
        .collect()
}

/// Victim-cache capacity probe (extension): sweep a synthetic
/// sweep-style working set across the memory+ring capacity boundary
/// and measure the NWCache hit rate. The paper explains Table 7's
/// ordering by whether "working sets can (almost) fit in the combined
/// memory/NWCache size"; this experiment shows the effect directly.
/// Returns `(data_bytes, data / (memory + ring), hit_rate %)`.
pub fn reuse_distance_sweep(
    footprints_bytes: &[u64],
    prefetch: PrefetchMode,
) -> Vec<(u64, f64, f64)> {
    use nw_apps::synth::{build as synth_build, SynthConfig};
    let base = MachineConfig::paper_default(MachineKind::NwCache, prefetch);
    let mem_plus_ring = base.memory_per_node * base.nodes as u64
        + (base.ring_channels * base.ring_slots_per_channel) as u64 * base.page_bytes;
    let mut out = Vec::new();
    let tasks: Vec<_> = footprints_bytes
        .iter()
        .map(|&bytes| {
            let cfg = base.clone();
            move || {
                let synth = synth_build(
                    SynthConfig {
                        data_bytes: bytes,
                        write_frac: 0.6,
                        iters: 6,
                        ..Default::default()
                    },
                    cfg.nodes as usize,
                    cfg.seed,
                );
                crate::Machine::from_build(cfg, synth).run()
            }
        })
        .collect();
    let results: Vec<RunMetrics> = nw_sim::pool::run(crate::sweep::jobs(), tasks)
        .into_iter()
        .map(|r| r.expect("run"))
        .collect();
    for (&bytes, m) in footprints_bytes.iter().zip(&results) {
        out.push((
            bytes,
            bytes as f64 / mem_plus_ring as f64,
            m.ring_hit_rate(),
        ));
    }
    out
}

/// Access-skew sensitivity, an axis the paper's fixed Table 2 suite
/// cannot probe: sweep the Zipf exponent of a generated workload
/// whose working set overflows memory + ring, and watch the victim
/// cache's (ring) hit rate respond. Low skew spreads faults over too
/// many pages for the ring to hold; high skew concentrates reuse on
/// a hot set the ring captures. Returns `(skew, ring_hit_rate,
/// exec_time)` per skew value.
pub fn zipf_skew_sweep(skews: &[f64], prefetch: PrefetchMode) -> Vec<(f64, f64, u64)> {
    use crate::workload::AppSel;
    use nw_workload::{Pattern, Phase, Scenario};
    use std::sync::Arc;

    let base = MachineConfig::paper_default(MachineKind::NwCache, prefetch);
    let mem_plus_ring = base.memory_per_node * base.nodes as u64
        + (base.ring_channels * base.ring_slots_per_channel) as u64 * base.page_bytes;
    // 1.5x the combined capacity: out-of-core, but close enough that
    // a concentrated hot set fits back in.
    let pages = mem_plus_ring * 3 / 2 / base.page_bytes;
    let grid: Vec<(MachineConfig, AppSel)> = skews
        .iter()
        .map(|&skew| {
            let scenario = Scenario {
                name: format!("zipf-skew-{skew}"),
                phases: vec![Phase {
                    pattern: Pattern::Zipf { skew },
                    pages,
                    accesses: 4000,
                    write_frac: 0.6,
                    barriers: 4,
                    ..Phase::default()
                }],
            };
            (base.clone(), AppSel::Gen(Arc::new(scenario)))
        })
        .collect();
    let results = crate::sweep::run_sel_grid(crate::sweep::jobs(), grid);
    skews
        .iter()
        .zip(results)
        .map(|(&skew, r)| {
            let m = r.expect("zipf cell");
            (skew, m.ring_hit_rate(), m.exec_time)
        })
        .collect()
}

/// One row of the prefetch-policy head-to-head (see
/// [`prefetch_policy_sweep`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchRow {
    /// Policy label (`optimal` / `naive` / `adaptive`).
    pub policy: String,
    /// Total execution time (pcycles).
    pub exec_time: u64,
    /// Disk-controller read hit rate in percent.
    pub disk_hit_rate: f64,
    /// Speculative reads issued by the policy (adaptive only).
    pub spec_issued: u64,
    /// Speculative fills consumed by a later demand read.
    pub spec_hits: u64,
    /// Spec hits whose read was still in flight when demand arrived.
    pub spec_late: u64,
    /// Speculative fills evicted or invalidated unused.
    pub spec_wasted: u64,
    /// Hints retracted before reaching the arm (stale predictions,
    /// demand collisions, superseding writes, mesh drops).
    pub spec_canceled: u64,
}

/// Prefetch-policy head-to-head on the pinned pure-sequential cell the
/// conformance suite uses (`seq,ws=256,acc=3000,wf=0.1`, NWCache
/// machine): every access faults and each disk sees an interleaving of
/// per-node delta-1 runs, so this is the widest optimal-vs-naive gap —
/// exactly the gap the adaptive policy is supposed to close from the
/// demand stream alone. Returns one row per policy, optimal first.
pub fn prefetch_policy_sweep(scale: f64) -> Vec<PrefetchRow> {
    use crate::workload::AppSel;
    use nw_workload::Scenario;
    use std::sync::Arc;

    let sel = AppSel::Gen(Arc::new(
        Scenario::parse("seq,ws=256,acc=3000,wf=0.1").expect("pinned spec"),
    ));
    let modes = [
        PrefetchMode::Optimal,
        PrefetchMode::Naive,
        PrefetchMode::Adaptive,
    ];
    let grid: Vec<(MachineConfig, AppSel)> = modes
        .iter()
        .map(|&mode| {
            (
                MachineConfig::scaled_paper(MachineKind::NwCache, mode, scale),
                sel.clone(),
            )
        })
        .collect();
    let results = crate::sweep::run_sel_grid(crate::sweep::jobs(), grid);
    results
        .into_iter()
        .map(|r| {
            let m = r.expect("prefetch cell");
            let reads = m.disk_read_hits + m.disk_read_misses;
            PrefetchRow {
                policy: m.prefetch.clone(),
                exec_time: m.exec_time,
                disk_hit_rate: if reads == 0 {
                    0.0
                } else {
                    100.0 * m.disk_read_hits as f64 / reads as f64
                },
                spec_issued: m.prefetch_spec_issued,
                spec_hits: m.prefetch_spec_hits,
                spec_late: m.prefetch_spec_late,
                spec_wasted: m.prefetch_spec_wasted,
                spec_canceled: m.prefetch_spec_canceled,
            }
        })
        .collect()
}

/// Machine-size scaling: the paper argues the NWCache's optical cost
/// (4n components, n channels) "is pretty low for small to
/// medium-scale multiprocessors". Sweep the node count, keeping the
/// paper's 2:1 node:disk ratio and one cache channel per node.
/// Returns `(nodes, std_exec, nwc_exec)`.
pub fn scaling_sweep(
    app: AppId,
    prefetch: PrefetchMode,
    node_counts: &[u32],
    scale: f64,
) -> Vec<(u32, u64, u64)> {
    let jobs: Vec<(MachineConfig, AppId)> = node_counts
        .iter()
        .flat_map(|&n| {
            let mut std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, prefetch, scale);
            std_cfg.nodes = n;
            std_cfg.io_nodes = (n / 2).max(1);
            let mut nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
            nwc_cfg.nodes = n;
            nwc_cfg.io_nodes = (n / 2).max(1);
            nwc_cfg.ring_channels = n as usize;
            [(std_cfg, app), (nwc_cfg, app)]
        })
        .collect();
    node_counts
        .iter()
        .copied()
        .zip(run_parallel(jobs).chunks(2).map(|c| (c[0].exec_time, c[1].exec_time)).collect::<Vec<_>>())
        .map(|(n, (s, w))| (n, s, w))
        .collect()
}

/// Baseline comparison the paper makes only qualitatively (related
/// work): standard vs DCD (log-disk write staging) vs NWCache, per
/// application. Returns `(app, std_exec, dcd_exec, nwc_exec)`.
pub fn dcd_comparison(prefetch: PrefetchMode, scale: f64) -> Vec<(String, u64, u64, u64)> {
    let jobs: Vec<(MachineConfig, AppId)> = AppId::ALL
        .iter()
        .flat_map(|&app| {
            [
                (MachineConfig::scaled_paper(MachineKind::Standard, prefetch, scale), app),
                (MachineConfig::scaled_paper(MachineKind::Dcd, prefetch, scale), app),
                (MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale), app),
            ]
        })
        .collect();
    run_parallel(jobs)
        .chunks(3)
        .map(|c| (c[0].app.clone(), c[0].exec_time, c[1].exec_time, c[2].exec_time))
        .collect()
}

/// Ablation: sweep the controller's flush accumulation window. A
/// longer window lets consecutive swap-outs gather in the disk cache
/// before the flush starts — the mechanism behind write combining
/// (Tables 5/6) — at the cost of holding cache slots longer.
pub fn ablation_flush_delay(
    app: AppId,
    kind: MachineKind,
    prefetch: PrefetchMode,
    delays: &[u64],
    scale: f64,
) -> Vec<(u64, f64, u64)> {
    let jobs: Vec<(MachineConfig, AppId)> = delays
        .iter()
        .map(|&d| {
            let mut cfg = MachineConfig::scaled_paper(kind, prefetch, scale);
            cfg.disk_flush_delay = d;
            (cfg, app)
        })
        .collect();
    delays
        .iter()
        .copied()
        .zip(run_parallel(jobs))
        .map(|(d, m)| (d, m.write_combining.mean(), m.exec_time))
        .collect()
}

/// Ablation: sweep the ring's fiber length. Per the paper's §3.2
/// capacity equation, doubling the round-trip doubles the delay-line
/// storage — but also doubles the expected snoop wait of victim reads
/// and drains. Returns `(round_trip, slots, hit_rate, exec_time)`.
pub fn ablation_ring_geometry(
    app: AppId,
    prefetch: PrefetchMode,
    round_trips_us: &[u64],
    scale: f64,
) -> Vec<(u64, usize, f64, u64)> {
    let base = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
    let base_rt_us = 52;
    let jobs: Vec<(MachineConfig, AppId)> = round_trips_us
        .iter()
        .map(|&us| {
            let mut cfg = base.clone();
            cfg.ring_round_trip = nw_sim::time::usecs(us);
            // Storage scales with fiber length (same channel rate).
            cfg.ring_slots_per_channel =
                ((base.ring_slots_per_channel as u64 * us) / base_rt_us).max(1) as usize;
            (cfg, app)
        })
        .collect();
    let slots: Vec<usize> = round_trips_us
        .iter()
        .map(|&us| ((base.ring_slots_per_channel as u64 * us) / base_rt_us).max(1) as usize)
        .collect();
    round_trips_us
        .iter()
        .copied()
        .zip(slots)
        .zip(run_parallel(jobs))
        .map(|((us, sl), m)| (us, sl, m.ring_hit_rate(), m.exec_time))
        .collect()
}

/// One cell of the fault-tolerance grid: execution time (or the
/// failure that ended the run) on both machines under one injected
/// fault mix, plus the NWCache recovery counters.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Injected disk media-error probability per read attempt.
    pub disk_error_rate: f64,
    /// Number of ring channels failed mid-run (NWCache only).
    pub failed_channels: usize,
    /// Standard-machine execution time, or the error that stopped it.
    pub standard: Result<u64, String>,
    /// NWCache execution time, or the error that stopped it.
    pub nwcache: Result<u64, String>,
    /// Pages destroyed on failed channels and re-issued to disk.
    pub ring_pages_lost: u64,
    /// Swap-outs routed straight to the standard path because their
    /// channel was dead.
    pub degraded_ring_swaps: u64,
    /// Total recovery retries (disk re-reads + swap re-issues).
    pub retries: u64,
}

/// Robustness grid: run `app` on both machines under every
/// combination of disk media-error rate and failed ring channels,
/// and report how execution time degrades. Channel failures are
/// staggered early in the run so the recovery paths (page re-issue,
/// dead-channel fallback) carry real load; the standard machine has
/// no ring, so only the disk faults apply to it. Runs use
/// `try_run_app`, so an exhausted-retries or protocol error becomes
/// a row entry instead of aborting the sweep.
pub fn fault_tolerance(
    app: AppId,
    scale: f64,
    error_rates: &[f64],
    failed_channels: &[usize],
) -> Vec<FaultRow> {
    // Calibrate failure times against a clean NWCache run: channel
    // failures land in the middle of the run (¼ and ½ of the clean
    // execution time), when the ring actually carries pages, rather
    // than at fixed offsets that a short run would never reach or a
    // long run would leave before any swap-out happens.
    let clean_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, scale);
    let clean_exec = crate::run_app(&clean_cfg, app).exec_time;
    let mut labels: Vec<(f64, usize)> = Vec::new();
    let mut grid: Vec<(MachineConfig, AppId)> = Vec::new();
    for &rate in error_rates {
        for &failed in failed_channels {
            let mut std_cfg =
                MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, scale);
            std_cfg.faults.disk_error_rate = rate;
            let mut nwc_cfg =
                MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, scale);
            nwc_cfg.faults.disk_error_rate = rate;
            // Fail odd-numbered channels, staggered so each failure
            // catches in-flight pages.
            nwc_cfg.faults.ring_channel_failures = (0..failed)
                .map(|k| {
                    let ch = (2 * k as u32 + 1) % nwc_cfg.ring_channels as u32;
                    (clean_exec / 4 * (k as u64 + 1), ch)
                })
                .collect();
            labels.push((rate, failed));
            grid.push((std_cfg, app));
            grid.push((nwc_cfg, app));
        }
    }
    let results = crate::sweep::run_grid(crate::sweep::jobs(), grid);
    labels
        .into_iter()
        .zip(results.chunks(2))
        .map(|((rate, failed), pair)| {
            let (st, nw) = (&pair[0], &pair[1]);
            let (lost, degraded, retries) = match nw {
                Ok(m) => (
                    m.ring_pages_lost,
                    m.degraded_ring_swaps,
                    m.swap_retries + m.disk_media_errors + m.disk_stuck_timeouts,
                ),
                Err(_) => (0, 0, 0),
            };
            FaultRow {
                disk_error_rate: rate,
                failed_channels: failed,
                standard: st.as_ref().map(|m| m.exec_time).map_err(|e| e.to_string()),
                nwcache: nw.as_ref().map(|m| m.exec_time).map_err(|e| e.to_string()),
                ring_pages_lost: lost,
                degraded_ring_swaps: degraded,
                retries,
            }
        })
        .collect()
}

/// The default scale-study topology ladder: the paper's 8-node
/// machine in generated-topology clothing, then a 64-node cell with
/// two rings and a sharded directory, then a 256-node fabric where
/// the coarse directory vector and four-ring sharding both engage.
/// Every spec parses through [`crate::topo::TopoSpec`], so `validate`
/// has vetted each before a single event fires.
pub const SCALE_TOPOS: [&str; 3] = [
    "mesh=4x2",
    "mesh=8x8,rings=2,dirshards=2",
    "mesh=16x16,rings=4,dirshards=8",
];

/// One cell of the weak-/strong-scaling study: a generated workload
/// on one topology/machine pair.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Canonical topology spec the cell ran on.
    pub topo: String,
    /// Node count (mesh width × height).
    pub nodes: u32,
    /// Machine kind label ("standard" / "nwcache").
    pub machine: String,
    /// Scaling regime: "weak" (fixed work per processor) or
    /// "strong" (fixed total work split across processors).
    pub mode: String,
    /// The run's flat summary, or the error that ended it.
    pub result: Result<crate::metrics::RunSummary, String>,
}

/// The generated scenario for one scale-study cell. Weak scaling
/// holds per-processor work constant (the working set grows with the
/// machine); strong scaling splits one fixed problem across however
/// many processors the topology has. At 8 nodes the two coincide, so
/// the ladder shares its first rung.
fn scale_scenario(mode: &str, nodes: u32, scale: f64) -> String {
    let per_proc = ((400.0 * scale).round() as u64).max(1);
    // 1.5× the per-node frame count, so memory is always under
    // pressure in the weak regime and the swap path actually carries
    // load (a working set that fits in memory measures nothing).
    let ws_per_node = ((96.0 * scale).round() as u64).max(12);
    match mode {
        "weak" => format!("zipf:0.9,ws={},acc={per_proc},wf=0.3", ws_per_node * nodes as u64),
        _ => {
            // Fixed total problem: the 8-node weak workload's working
            // set and total access count, split across the machine.
            // Past 8 nodes memory outgrows the problem, so paging —
            // and with it the NWCache's edge — fades: the point the
            // strong half of the table makes.
            let total = per_proc * 8;
            format!(
                "zipf:0.9,ws={},acc={},wf=0.3",
                ws_per_node * 8,
                (total / nodes as u64).max(1)
            )
        }
    }
}

/// Run the weak-/strong-scaling study over `topos` (canonical or
/// shorthand topology specs) at `scale`, standard vs NWCache on each
/// rung. Cells fan out across the sweep pool; each is a pure
/// function of its `(MachineConfig, AppSel)`, so the returned rows
/// are bit-identical at any `--jobs` / `--sim-threads` setting. A
/// malformed spec fails the whole study (caller bug); a cell that
/// errors mid-run becomes an error row.
pub fn scale_study(topos: &[&str], scale: f64) -> Result<Vec<ScaleRow>, String> {
    let mut meta: Vec<(String, u32, &'static str, &'static str)> = Vec::new();
    let mut grid: Vec<(MachineConfig, crate::workload::AppSel)> = Vec::new();
    for &t in topos {
        let topo = crate::topo::TopoSpec::parse(t)?;
        let nodes = topo.nodes();
        for mode in ["weak", "strong"] {
            let sel =
                crate::workload::AppSel::parse(&format!("workload:gen:{}", scale_scenario(mode, nodes, scale)))
                    .map_err(|e| format!("{t} ({mode}): {e}"))?;
            for kind in [MachineKind::Standard, MachineKind::NwCache] {
                let label = match kind {
                    MachineKind::Standard => "standard",
                    _ => "nwcache",
                };
                meta.push((topo.to_spec(), nodes, label, mode));
                grid.push((topo.to_config(kind, PrefetchMode::Naive, scale), sel.clone()));
            }
        }
    }
    let results = crate::sweep::run_sel_grid(crate::sweep::jobs(), grid);
    Ok(meta
        .into_iter()
        .zip(results)
        .map(|((topo, nodes, machine, mode), result)| ScaleRow {
            topo,
            nodes,
            machine: machine.to_string(),
            mode: mode.to_string(),
            result: result.map(|m| m.summary()).map_err(|e| e.to_string()),
        })
        .collect())
}

/// Serialize scale-study rows with the frozen `nwcache-scale-v1`
/// schema. Unlike `nwcache-sweep-v1` this document carries **no**
/// wall-clock or worker-count fields: every byte is a pure function
/// of the simulated machines, so two exports at different `--jobs` /
/// `--sim-threads` settings must be `cmp`-identical (the CI
/// scale-smoke job relies on exactly that).
pub fn scale_report_json(scale: f64, rows: &[ScaleRow]) -> String {
    let mut out = String::with_capacity(1024 + rows.len() * 1200);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"nwcache-scale-v1\",\n");
    out.push_str(&format!("  \"scale\": {},\n", crate::metrics::json_f64(scale)));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let ident = format!(
            "\"topo\":\"{}\",\"nodes\":{},\"machine\":\"{}\",\"mode\":\"{}\"",
            crate::metrics::json_escape(&row.topo),
            row.nodes,
            crate::metrics::json_escape(&row.machine),
            crate::metrics::json_escape(&row.mode),
        );
        match &row.result {
            Ok(summary) => out.push_str(&format!(
                "    {{{ident},\"status\":\"ok\",\"metrics\":{}}}",
                summary.to_json()
            )),
            Err(e) => out.push_str(&format!(
                "    {{{ident},\"status\":\"error\",\"error\":\"{}\"}}",
                crate::metrics::json_escape(e)
            )),
        }
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}");
    out
}
