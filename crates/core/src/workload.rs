//! Workload selection glue: one spec string, any workload.
//!
//! [`AppSel`] is the machine-facing superset of [`nw_apps::AppId`]:
//! everywhere a CLI or experiment used to accept one of the seven
//! Table 2 kernels, it now accepts
//!
//! * a table app name (`gauss`, `sor`, ...),
//! * `workload:<trace-file>` — replay an `nwtrace-v1` file (text or
//!   binary, sniffed), or
//! * `workload:gen:<spec>` — generate a stochastic scenario on the
//!   fly (see [`nw_workload::Scenario::parse`] for the grammar).
//!
//! Replayed and generated workloads build into ordinary
//! [`nw_apps::AppBuild`]s, so they flow through sweeps, fault plans,
//! observability, and the bench harness without those layers knowing
//! the difference. Selections are cheap to clone (traces are behind
//! an [`Arc`]), which is what lets a single decoded trace fan out
//! across a parallel sweep grid without re-reading the file per cell.

use crate::config::MachineConfig;
use crate::error::SimError;
use crate::machine::Machine;
use crate::metrics::RunMetrics;
use nw_apps::{AppBuild, AppId};
use std::sync::Arc;

pub use nw_workload::{Pattern, Phase, Scenario, Trace};

/// A workload selection: a table app, a generated scenario, or a
/// trace to replay.
#[derive(Clone)]
pub enum AppSel {
    /// One of the paper's Table 2 kernels.
    Table(AppId),
    /// A stochastic scenario, materialized at build time from the
    /// machine's `nodes` and `seed`.
    Gen(Arc<Scenario>),
    /// A decoded `nwtrace-v1` trace, replayed verbatim.
    Replay(Arc<Trace>),
}

impl std::fmt::Debug for AppSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppSel({})", self.name())
    }
}

impl From<AppId> for AppSel {
    fn from(app: AppId) -> Self {
        AppSel::Table(app)
    }
}

impl AppSel {
    /// Parse a workload spec. Unknown names produce
    /// [`SimError::UnknownApp`], which lists every valid name and the
    /// `workload:` syntax; an unreadable or malformed trace file, or a
    /// malformed scenario spec, produces [`SimError::BadConfig`].
    pub fn parse(spec: &str) -> Result<AppSel, SimError> {
        if let Some(app) = AppId::from_name(spec) {
            return Ok(AppSel::Table(app));
        }
        if let Some(rest) = spec.strip_prefix("workload:") {
            if let Some(sc) = rest.strip_prefix("gen:") {
                let scenario = Scenario::parse(sc)
                    .map_err(|e| SimError::BadConfig(format!("scenario spec '{sc}': {e}")))?;
                return Ok(AppSel::Gen(Arc::new(scenario)));
            }
            let bytes = std::fs::read(rest)
                .map_err(|e| SimError::BadConfig(format!("cannot read trace '{rest}': {e}")))?;
            let trace = Trace::decode(&bytes)
                .map_err(|e| SimError::BadConfig(format!("trace '{rest}': {e}")))?;
            trace
                .validate()
                .map_err(|e| SimError::BadConfig(format!("trace '{rest}': {e}")))?;
            return Ok(AppSel::Replay(Arc::new(trace)));
        }
        Err(SimError::UnknownApp {
            given: spec.to_string(),
            valid: AppId::ALL.iter().map(|a| a.name()).collect(),
        })
    }

    /// Workload name: the table name, the scenario spec, or the
    /// trace's recorded name.
    pub fn name(&self) -> &str {
        match self {
            AppSel::Table(app) => app.name(),
            AppSel::Gen(sc) => &sc.name,
            AppSel::Replay(tr) => &tr.name,
        }
    }

    /// Build the selected workload for the machine described by `cfg`
    /// (table apps and scenarios use `cfg.nodes`, `cfg.app_scale`,
    /// and `cfg.seed`; a replayed trace is fixed at record time and
    /// must match `cfg.nodes`).
    pub fn build(&self, cfg: &MachineConfig) -> Result<AppBuild, SimError> {
        match self {
            AppSel::Table(app) => Ok(nw_apps::build(
                *app,
                cfg.nodes as usize,
                cfg.app_scale,
                cfg.seed,
            )),
            AppSel::Gen(sc) => {
                sc.validate().map_err(SimError::BadConfig)?;
                Ok(sc.build(cfg.nodes as usize, cfg.seed))
            }
            AppSel::Replay(tr) => Ok(Arc::as_ref(tr).clone().into_build()),
        }
    }
}

/// Run a workload selection to completion, like [`crate::try_run_app`]
/// but accepting any [`AppSel`]. A trace recorded for the wrong node
/// count surfaces as the existing [`SimError::WorkloadMismatch`].
pub fn try_run_sel(cfg: &MachineConfig, sel: &AppSel) -> Result<RunMetrics, SimError> {
    cfg.validate().map_err(SimError::BadConfig)?;
    let build = sel.build(cfg)?;
    Machine::try_from_build(cfg.clone(), build)?.try_run()
}

/// Record the workload `sel` would run on the machine described by
/// `cfg`: capture its action streams into a trace without simulating.
/// Recording is simulation-free because streams are pure functions of
/// `(workload, nodes, scale, seed)`.
pub fn record(cfg: &MachineConfig, sel: &AppSel) -> Result<Trace, SimError> {
    cfg.validate().map_err(SimError::BadConfig)?;
    let trace = Trace::capture(sel.build(cfg)?);
    trace.validate().map_err(SimError::BadConfig)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineKind, PrefetchMode};

    fn cfg() -> MachineConfig {
        MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05)
    }

    #[test]
    fn parse_table_names() {
        for app in AppId::ALL {
            match AppSel::parse(app.name()) {
                Ok(AppSel::Table(a)) => assert_eq!(a, app),
                other => panic!("{}: {other:?}", app.name()),
            }
        }
    }

    #[test]
    fn unknown_name_lists_valid_and_workload_syntax() {
        let err = AppSel::parse("guass").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("guass"), "{msg}");
        assert!(msg.contains("gauss") && msg.contains("sor"), "{msg}");
        assert!(msg.contains("workload:gen:"), "{msg}");
        assert!(msg.contains("workload:<trace-file>"), "{msg}");
    }

    #[test]
    fn gen_spec_parses_and_runs() {
        let sel = AppSel::parse("workload:gen:zipf:0.9,ws=32,acc=300").unwrap();
        assert_eq!(sel.name(), "zipf:0.9,ws=32,acc=300");
        let m = try_run_sel(&cfg(), &sel).unwrap();
        assert!(m.exec_time > 0);
    }

    #[test]
    fn bad_gen_spec_is_bad_config() {
        let err = AppSel::parse("workload:gen:lru,ws=4").unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)), "{err}");
        // Parses, but fails validation at build time.
        let sel = AppSel::parse("workload:gen:uniform,wf=1.5").unwrap();
        let err = try_run_sel(&cfg(), &sel).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)), "{err}");
    }

    #[test]
    fn missing_trace_file_is_bad_config() {
        let err = AppSel::parse("workload:/no/such/file.nwtrace").unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)), "{err}");
    }

    #[test]
    fn record_then_replay_matches_direct_run() {
        let c = cfg();
        let sel = AppSel::Table(AppId::Gauss);
        let trace = record(&c, &sel).unwrap();
        assert_eq!(trace.name, "gauss");
        let direct = crate::try_run_app(&c, AppId::Gauss).unwrap();
        let replayed = try_run_sel(&c, &AppSel::Replay(Arc::new(trace))).unwrap();
        assert_eq!(direct, replayed);
    }

    #[test]
    fn replay_on_wrong_node_count_is_workload_mismatch() {
        let c = cfg();
        let trace = record(&c, &AppSel::Table(AppId::Sor)).unwrap();
        let mut other = c.clone();
        other.nodes = 4;
        other.io_nodes = 2;
        other.ring_channels = 4;
        let err = try_run_sel(&other, &AppSel::Replay(Arc::new(trace))).unwrap_err();
        assert!(matches!(err, SimError::WorkloadMismatch { streams: 8, nodes: 4 }), "{err}");
    }
}
