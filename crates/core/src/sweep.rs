//! The parallel experiment sweep engine and the `SweepReport` JSON
//! emitter.
//!
//! The paper's evaluation is a matrix of independent deterministic
//! simulations (apps × machine kinds × prefetch modes, plus fault
//! grids and ablations). This module fans such matrices out across
//! worker threads via the in-tree [`nw_sim::pool`], with three
//! guarantees the rest of the workspace builds on:
//!
//! * **determinism** — each run is a pure function of its
//!   `(MachineConfig, AppId)`; the pool returns results in job order,
//!   so a sweep at `--jobs N` is bit-identical to `--jobs 1`
//!   (asserted by the differential-determinism integration tests);
//! * **panic isolation** — a run that panics (or returns a
//!   [`SimError`]) becomes an error *row*; sibling runs complete
//!   unaffected;
//! * **stable reporting** — [`SweepReport::to_json`] emits a
//!   fixed-schema, fixed-field-order JSON document
//!   (`"nwcache-sweep-v1"`), so `BENCH_*.json` perf trajectories can
//!   be diffed meaningfully across PRs.
//!
//! The worker count is a process-wide knob ([`set_jobs`]) so the
//! `--jobs N` CLI flag reaches every experiment helper without
//! threading a parameter through each signature.

use crate::config::{MachineConfig, MachineKind, PrefetchMode};
use crate::error::SimError;
use crate::metrics::{RunMetrics, RunSummary};
use crate::workload::AppSel;
use nw_apps::AppId;
use nw_sim::pool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker count: 0 = auto (one per core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide sweep worker count (`0` = one per core).
/// Reached by `reproduce --jobs N` / `nwsim --jobs N`.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count sweeps run with: the value passed to
/// [`set_jobs`], or the machine's available parallelism by default.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => pool::default_jobs(),
        n => n,
    }
}

/// Run a grid of `(config, app)` simulations on up to `jobs` worker
/// threads and return one `Result` per cell, in grid order.
///
/// A cell that fails config validation, trips the watchdog, or
/// exhausts fault retries comes back as its [`SimError`]; a cell
/// whose worker panics comes back as [`SimError::Panicked`]. Either
/// way the remaining cells run to completion.
pub fn run_grid(
    jobs: usize,
    grid: Vec<(MachineConfig, AppId)>,
) -> Vec<Result<RunMetrics, SimError>> {
    run_sel_grid(
        jobs,
        grid.into_iter()
            .map(|(cfg, app)| (cfg, AppSel::Table(app)))
            .collect(),
    )
}

/// Generalization of [`run_grid`] over any workload selection:
/// table apps, generated scenarios, and trace replays mix freely in
/// one grid. Replayed traces sit behind an `Arc`, so a grid of N
/// cells over one trace decodes it once, not N times.
pub fn run_sel_grid(
    jobs: usize,
    grid: Vec<(MachineConfig, AppSel)>,
) -> Vec<Result<RunMetrics, SimError>> {
    let tasks: Vec<_> = grid
        .into_iter()
        .map(|(cfg, sel)| move || crate::workload::try_run_sel(&cfg, &sel))
        .collect();
    pool::run(jobs, tasks)
        .into_iter()
        .map(|slot| match slot {
            Ok(run) => run,
            Err(p) => Err(SimError::Panicked(p.message)),
        })
        .collect()
}

/// The full paper evaluation matrix at `scale`: every application on
/// both machines under every prefetch mode, in a fixed deterministic
/// order (prefetch-major, then app, then standard-before-nwcache —
/// the same order the `--json` export has always used).
pub fn paper_matrix(scale: f64) -> Vec<(MachineConfig, AppId)> {
    let mut grid = Vec::new();
    for prefetch in [PrefetchMode::Optimal, PrefetchMode::Naive, PrefetchMode::Window] {
        for &app in &AppId::ALL {
            for kind in [MachineKind::Standard, MachineKind::NwCache] {
                grid.push((MachineConfig::scaled_paper(kind, prefetch, scale), app));
            }
        }
    }
    grid
}

/// One row of a [`SweepReport`]: the identity of the run plus either
/// its flat summary or the error that stopped it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Application name.
    pub app: String,
    /// Machine kind label ("standard" / "nwcache" / "dcd").
    pub machine: String,
    /// Prefetch mode label ("optimal" / "naive" / "window").
    pub prefetch: String,
    /// The run's summary, or the error that ended it.
    pub result: Result<RunSummary, String>,
}

/// A complete sweep with its provenance: what was run, with how much
/// parallelism, how long it took, and every per-run outcome.
///
/// The JSON rendering is the `BENCH_*.json` schema: field order is
/// fixed and documented by the golden snapshot test, so diffs across
/// PRs are meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Application/machine scale factor the sweep ran at.
    pub scale: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Cores the machine reported at run time.
    pub cores: usize,
    /// Wall-clock time for the whole sweep, milliseconds.
    pub wall_ms: u64,
    /// Per-run outcomes, in matrix order.
    pub rows: Vec<SweepRow>,
}

fn kind_label(kind: MachineKind) -> &'static str {
    match kind {
        MachineKind::Standard => "standard",
        MachineKind::NwCache => "nwcache",
        MachineKind::Dcd => "dcd",
    }
}

fn prefetch_label(prefetch: PrefetchMode) -> &'static str {
    match prefetch {
        PrefetchMode::Optimal => "optimal",
        PrefetchMode::Naive => "naive",
        PrefetchMode::Window => "window",
        PrefetchMode::Adaptive => "adaptive",
    }
}

impl SweepReport {
    /// Run `grid` on `jobs` workers (`0` = auto), timing the sweep
    /// and collecting each cell into a row. Failed cells become error
    /// rows; the sweep itself always completes.
    pub fn collect(scale: f64, jobs: usize, grid: Vec<(MachineConfig, AppId)>) -> SweepReport {
        Self::collect_sel(
            scale,
            jobs,
            grid.into_iter()
                .map(|(cfg, app)| (cfg, AppSel::Table(app)))
                .collect(),
        )
    }

    /// [`SweepReport::collect`] over arbitrary workload selections;
    /// rows are labelled with [`AppSel::name`] (the table name, the
    /// scenario spec, or the trace's recorded name).
    pub fn collect_sel(scale: f64, jobs: usize, grid: Vec<(MachineConfig, AppSel)>) -> SweepReport {
        let meta: Vec<(String, String, String)> = grid
            .iter()
            .map(|(cfg, sel)| {
                (
                    sel.name().to_string(),
                    kind_label(cfg.kind).to_string(),
                    prefetch_label(cfg.prefetch).to_string(),
                )
            })
            .collect();
        let effective = if jobs == 0 { pool::default_jobs() } else { jobs };
        let t0 = std::time::Instant::now();
        let results = run_sel_grid(effective, grid);
        let wall_ms = t0.elapsed().as_millis() as u64;
        let rows = meta
            .into_iter()
            .zip(results)
            .map(|((app, machine, prefetch), result)| SweepRow {
                app,
                machine,
                prefetch,
                result: result.map(|m| m.summary()).map_err(|e| e.to_string()),
            })
            .collect();
        SweepReport {
            scale,
            jobs: effective,
            cores: pool::default_jobs(),
            wall_ms,
            rows,
        }
    }

    /// Run the full paper matrix (see [`paper_matrix`]).
    pub fn paper(scale: f64, jobs: usize) -> SweepReport {
        Self::collect(scale, jobs, paper_matrix(scale))
    }

    /// Number of rows that ended in an error.
    pub fn errors(&self) -> usize {
        self.rows.iter().filter(|r| r.result.is_err()).count()
    }

    /// Serialize the report with the stable `nwcache-sweep-v1`
    /// schema: a fixed header (`schema`, `scale`, `jobs`, `cores`,
    /// `wall_ms`), then one object per run in matrix order. Ok rows
    /// carry `"status":"ok"` and the flat metrics object; error rows
    /// carry `"status":"error"` and the message. Hand-rolled so the
    /// workspace stays dependency-free; field order never varies.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.rows.len() * 1200);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"nwcache-sweep-v1\",\n");
        out.push_str(&format!("  \"scale\": {},\n", crate::metrics::json_f64(self.scale)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        out.push_str("  \"runs\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let ident = format!(
                "\"app\":\"{}\",\"machine\":\"{}\",\"prefetch\":\"{}\"",
                crate::metrics::json_escape(&row.app),
                crate::metrics::json_escape(&row.machine),
                crate::metrics::json_escape(&row.prefetch),
            );
            match &row.result {
                Ok(summary) => out.push_str(&format!(
                    "    {{{ident},\"status\":\"ok\",\"metrics\":{}}}",
                    summary.to_json()
                )),
                Err(e) => out.push_str(&format!(
                    "    {{{ident},\"status\":\"error\",\"error\":\"{}\"}}",
                    crate::metrics::json_escape(e)
                )),
            }
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_knob_round_trips() {
        let before = JOBS.load(Ordering::Relaxed);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1); // auto
        JOBS.store(before, Ordering::Relaxed);
    }

    #[test]
    fn paper_matrix_shape_and_order() {
        let grid = paper_matrix(0.05);
        // 3 prefetch modes x 7 apps x 2 machines.
        assert_eq!(grid.len(), 3 * AppId::ALL.len() * 2);
        // Standard strictly precedes nwcache within each pair.
        for pair in grid.chunks(2) {
            assert_eq!(pair[0].0.kind, MachineKind::Standard);
            assert_eq!(pair[1].0.kind, MachineKind::NwCache);
            assert_eq!(pair[0].1, pair[1].1);
        }
    }

    #[test]
    fn bad_config_becomes_error_row_not_a_dead_sweep() {
        let good = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, 0.05);
        let mut bad = good.clone();
        bad.faults.disk_error_rate = 7.0; // fails validation
        let rows = run_grid(
            2,
            vec![(good.clone(), AppId::Sor), (bad, AppId::Sor), (good, AppId::Sor)],
        );
        assert!(rows[0].is_ok());
        assert!(matches!(rows[1], Err(SimError::BadConfig(_))));
        assert!(rows[2].is_ok());
        // The healthy siblings are byte-identical to each other.
        assert_eq!(rows[0], rows[2]);
    }
}
