//! Machine-topology grammar: one-line specs for generated machines.
//!
//! The sibling of the workload spec grammar (`nw_workload::Scenario::
//! parse`): where that one describes *what runs*, this one describes
//! *what it runs on*. A spec is a comma-separated key list,
//!
//! ```text
//! mesh=8x8,io=corners,rings=4,shard=region,dirshards=8
//! ```
//!
//! with keys:
//!
//! * `mesh=WxH` (required) — mesh dimensions; `W*H` is the node count,
//!   at most 1024 nodes.
//! * `io=spread|corners|row[:COUNT]` (default `spread`) — I/O-node
//!   placement policy and count. The default count is the largest
//!   divisor of the node count that is at most half of it (the paper's
//!   2:1 node:disk ratio when the node count is even); `corners`
//!   forces 4.
//! * `rings=K` (default 1) — optical rings in the fabric.
//! * `shard=page|region` (default `page`) — page-to-ring sharding.
//! * `dirshards=N` (default 1) — per-node directory shards.
//!
//! [`TopoSpec::parse`] only checks syntax; [`TopoSpec::validate`]
//! (also run by [`TopoSpec::to_config`]) applies the full
//! [`MachineConfig::validate`] rules, so every malformed spec is
//! rejected before a machine is built. `mesh=4x2` with all defaults is
//! exactly the paper machine's shape.

use crate::config::{IoPlacement, MachineConfig, MachineKind, PrefetchMode, RingShard};

/// A parsed machine-topology spec (see the module docs for the
/// grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// Mesh width in nodes.
    pub width: u32,
    /// Mesh height in nodes.
    pub height: u32,
    /// I/O-node placement policy.
    pub io: IoPlacement,
    /// Number of I/O nodes (each hosting one disk + controller).
    pub io_nodes: u32,
    /// Optical rings in the fabric.
    pub rings: usize,
    /// Page-to-ring sharding policy.
    pub shard: RingShard,
    /// Directory shards per node.
    pub dir_shards: usize,
}

/// Largest divisor of `n` that is at most `n / 2` (1 for `n <= 1`):
/// the default I/O-node count, honouring the `nodes % io_nodes == 0`
/// config rule for odd meshes too.
fn default_io_nodes(n: u32) -> u32 {
    (1..=n / 2).rev().find(|d| n.is_multiple_of(*d)).unwrap_or(1)
}

impl TopoSpec {
    /// Parse a topology spec string. Syntax errors (unknown keys, bad
    /// numbers, missing `mesh=`) are reported here; semantic errors
    /// (corner placement on a 1×N mesh, ...) by [`TopoSpec::validate`].
    pub fn parse(spec: &str) -> Result<TopoSpec, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty topology spec".into());
        }
        let mut dims: Option<(u32, u32)> = None;
        let mut io: Option<(IoPlacement, Option<u32>)> = None;
        let mut rings: Option<usize> = None;
        let mut shard: Option<RingShard> = None;
        let mut dir_shards: Option<usize> = None;
        for tok in spec.split(',') {
            let tok = tok.trim();
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{tok}'"))?;
            let dup = |k: &str| format!("duplicate key '{k}'");
            match key {
                "mesh" => {
                    if dims.is_some() {
                        return Err(dup("mesh"));
                    }
                    let (w, h) = val
                        .split_once('x')
                        .ok_or_else(|| format!("mesh wants WxH, got '{val}'"))?;
                    let w: u32 = w.parse().map_err(|_| format!("bad mesh width '{w}'"))?;
                    let h: u32 = h.parse().map_err(|_| format!("bad mesh height '{h}'"))?;
                    dims = Some((w, h));
                }
                "io" => {
                    if io.is_some() {
                        return Err(dup("io"));
                    }
                    let (policy, count) = match val.split_once(':') {
                        Some((p, c)) => (
                            p,
                            Some(c.parse().map_err(|_| format!("bad io count '{c}'"))?),
                        ),
                        None => (val, None),
                    };
                    let policy = match policy {
                        "spread" => IoPlacement::Spread,
                        "corners" => IoPlacement::Corners,
                        "row" => IoPlacement::Row,
                        other => {
                            return Err(format!(
                                "unknown io placement '{other}' (want spread, corners, or row)"
                            ))
                        }
                    };
                    io = Some((policy, count));
                }
                "rings" => {
                    if rings.is_some() {
                        return Err(dup("rings"));
                    }
                    rings = Some(val.parse().map_err(|_| format!("bad ring count '{val}'"))?);
                }
                "shard" => {
                    if shard.is_some() {
                        return Err(dup("shard"));
                    }
                    shard = Some(match val {
                        "page" => RingShard::Page,
                        "region" => RingShard::Region,
                        other => {
                            return Err(format!(
                                "unknown shard policy '{other}' (want page or region)"
                            ))
                        }
                    });
                }
                "dirshards" => {
                    if dir_shards.is_some() {
                        return Err(dup("dirshards"));
                    }
                    dir_shards = Some(
                        val.parse()
                            .map_err(|_| format!("bad dirshards count '{val}'"))?,
                    );
                }
                other => {
                    return Err(format!(
                        "unknown key '{other}' \
                         (want mesh, io, rings, shard, or dirshards)"
                    ))
                }
            }
        }
        let (width, height) = dims.ok_or("topology spec needs mesh=WxH")?;
        let nodes = width.saturating_mul(height);
        let (io, io_count) = io.unwrap_or((IoPlacement::Spread, None));
        let io_nodes = io_count.unwrap_or(match io {
            IoPlacement::Corners => 4,
            _ => default_io_nodes(nodes),
        });
        Ok(TopoSpec {
            width,
            height,
            io,
            io_nodes,
            rings: rings.unwrap_or(1),
            shard: shard.unwrap_or(RingShard::Page),
            dir_shards: dir_shards.unwrap_or(1),
        })
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Canonical spec string (parses back to `self`).
    pub fn to_spec(&self) -> String {
        format!(
            "mesh={}x{},io={}:{},rings={},shard={},dirshards={}",
            self.width,
            self.height,
            self.io.label(),
            self.io_nodes,
            self.rings,
            self.shard.label(),
            self.dir_shards
        )
    }

    /// Semantic validation, by way of the full machine-config rules
    /// (mesh area vs node cap, placement feasibility, shard counts).
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 {
            return Err(format!("mesh {}x{} has no nodes", self.width, self.height));
        }
        if self.width as u64 * self.height as u64 > 1024 {
            return Err(format!(
                "mesh {}x{} exceeds the 1024-node cap",
                self.width, self.height
            ));
        }
        self.to_config(MachineKind::NwCache, PrefetchMode::Naive, 1.0)
            .validate()
    }

    /// Materialize the spec as a [`MachineConfig`]: the scaled paper
    /// machine reshaped to this topology, with one ring channel per
    /// node on each ring. Call [`MachineConfig::validate`] (or
    /// [`TopoSpec::validate`] first) before building a machine.
    pub fn to_config(&self, kind: MachineKind, prefetch: PrefetchMode, scale: f64) -> MachineConfig {
        let mut cfg = MachineConfig::scaled_paper(kind, prefetch, scale);
        cfg.nodes = self.nodes();
        cfg.io_nodes = self.io_nodes;
        cfg.mesh_width = self.width;
        cfg.mesh_height = self.height;
        cfg.io_placement = self.io;
        cfg.ring_channels = cfg.nodes as usize;
        cfg.ring_count = self.rings;
        cfg.ring_shard = self.shard;
        cfg.dir_shards = self.dir_shards;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_parses_with_defaults() {
        let t = TopoSpec::parse("mesh=4x2").unwrap();
        assert_eq!(t.width, 4);
        assert_eq!(t.height, 2);
        assert_eq!(t.io, IoPlacement::Spread);
        assert_eq!(t.io_nodes, 4);
        assert_eq!(t.rings, 1);
        assert_eq!(t.shard, RingShard::Page);
        assert_eq!(t.dir_shards, 1);
        assert!(t.validate().is_ok());
        let cfg = t.to_config(MachineKind::NwCache, PrefetchMode::Naive, 1.0);
        assert_eq!(cfg.nodes, 8);
        assert_eq!(cfg.io_nodes, 4);
        assert_eq!(cfg.mesh_dims(), (4, 2));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn full_spec_round_trips() {
        let t = TopoSpec::parse("mesh=16x16,io=corners,rings=4,shard=region,dirshards=8").unwrap();
        assert_eq!(t.nodes(), 256);
        assert_eq!(t.io_nodes, 4);
        assert!(t.validate().is_ok());
        let again = TopoSpec::parse(&t.to_spec()).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn io_count_override_and_row_placement() {
        let t = TopoSpec::parse("mesh=8x8,io=row:8").unwrap();
        assert_eq!(t.io_nodes, 8);
        assert!(t.validate().is_ok());
        let cfg = t.to_config(MachineKind::NwCache, PrefetchMode::Naive, 1.0);
        assert_eq!(
            (0..8).map(|d| cfg.io_node_of_disk(d)).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn default_io_count_handles_odd_meshes() {
        // 3x3 = 9 nodes: nodes/2 = 4 does not divide 9; the largest
        // divisor <= 4 is 3.
        let t = TopoSpec::parse("mesh=3x3").unwrap();
        assert_eq!(t.io_nodes, 3);
        assert!(t.validate().is_ok());
        // A 1x1 mesh still gets one I/O node.
        let t = TopoSpec::parse("mesh=1x1").unwrap();
        assert_eq!(t.io_nodes, 1);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "",
            "mesh",
            "mesh=8",
            "mesh=8x",
            "mesh=axb",
            "io=spread",                    // missing mesh
            "mesh=4x2,mesh=2x4",            // duplicate
            "mesh=4x2,io=ring",             // unknown placement
            "mesh=4x2,io=spread:x",         // bad count
            "mesh=4x2,rings=zero",          // bad number
            "mesh=4x2,shard=hash",          // unknown policy
            "mesh=4x2,dirshards=-1",        // bad number
            "mesh=4x2,banana=3",            // unknown key
            "mesh=4x2;rings=2",             // wrong separator
        ] {
            assert!(TopoSpec::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn semantic_errors_are_rejected_by_validate() {
        for bad in [
            "mesh=0x4",               // no nodes
            "mesh=64x64",             // 4096 > 1024-node cap
            "mesh=1x8,io=corners",    // corners need a 2D mesh
            "mesh=4x2,io=corners:2",  // corners need exactly 4
            "mesh=2x4,io=row:4",      // width not a multiple of count
            "mesh=4x2,io=spread:3",   // nodes % io_nodes != 0
            "mesh=4x2,io=spread:16",  // more I/O nodes than nodes
            "mesh=4x2,rings=0",       // zero rings
            "mesh=4x2,dirshards=0",   // zero shards
        ] {
            let t = TopoSpec::parse(bad).expect(bad);
            assert!(t.validate().is_err(), "validated '{bad}'");
        }
    }

    #[test]
    fn big_meshes_validate_up_to_the_cap() {
        for spec in ["mesh=8x8,rings=2,dirshards=2", "mesh=16x16,rings=4", "mesh=32x32,rings=8,dirshards=32"] {
            let t = TopoSpec::parse(spec).unwrap();
            assert!(t.validate().is_ok(), "{spec}");
        }
    }
}
