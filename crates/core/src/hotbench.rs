//! In-tree microbenchmarks for the per-access hot path.
//!
//! The simulator's inner loop is dominated by four kernels: the
//! processor-cache probe (`Cache::access`/`fill`), the directory
//! transaction (`Directory::read`/`write`/`evict`/`purge_page`), the
//! ring snoop/drain cycle (`OpticalRing::insert`/`snoop_ready`/
//! `remove`), and — integrating all of them — a full small-application
//! run. `nwsim bench` times warm iterations of each and emits a
//! frozen-schema JSON document (`nwcache-bench-v1`, conventionally
//! written to `BENCH_hotpath.json`) so the perf trajectory of the hot
//! path is tracked across PRs alongside `BENCH_sweep.json`.
//!
//! Each kernel folds its observable outcomes into a deterministic
//! `checksum`; the checksum defeats dead-code elimination *and* pins
//! kernel behavior — it must not change when the underlying data
//! structures are swapped for faster ones.
//!
//! Workload streams are pre-generated outside the timed region from
//! the in-tree [`Pcg32`], so the timer sees only the kernel under
//! test.

use crate::config::{MachineConfig, MachineKind, PrefetchMode};
use crate::metrics::json_f64;
use nw_apps::AppId;
use nw_memhier::{Cache, CacheConfig, Directory, LookupResult, ReadOutcome, LINES_PER_PAGE};
use nw_optical::{OpticalRing, RingConfig};
use nw_sim::Pcg32;
use std::time::Instant;

/// Timing result of one benchmark kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel name (stable identifier in the JSON schema).
    pub name: &'static str,
    /// Timed iterations.
    pub iters: u64,
    /// Untimed warm-up iterations run first.
    pub warmup: u64,
    /// Wall-clock time for the timed iterations, nanoseconds.
    pub total_ns: u64,
    /// `total_ns / iters`.
    pub ns_per_iter: f64,
    /// Deterministic fold of kernel outcomes: defeats dead-code
    /// elimination and pins behavior across data-layout changes.
    pub checksum: u64,
    /// Simulation events dispatched per iteration, for kernels that
    /// run the event loop (the app/PDES kernels); `None` for the
    /// data-structure kernels.
    pub events: Option<u64>,
    /// `ns_per_iter` of the same kernel in a baseline report, when
    /// one was supplied (`nwsim bench --baseline`).
    pub baseline_ns_per_iter: Option<f64>,
    /// `events_per_sec` of the same kernel in a baseline report, when
    /// one was supplied and recorded it.
    pub baseline_events_per_sec: Option<f64>,
}

impl KernelResult {
    /// Speedup vs the baseline (`baseline / current`), if a baseline
    /// was attached.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_ns_per_iter
            .map(|b| b / self.ns_per_iter.max(f64::MIN_POSITIVE))
    }

    /// Simulated-event throughput: events dispatched per wall-clock
    /// second, for kernels that record an event count.
    pub fn events_per_sec(&self) -> Option<f64> {
        self.events
            .map(|e| e as f64 * 1e9 / self.ns_per_iter.max(f64::MIN_POSITIVE))
    }
}

/// A complete `nwsim bench` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether the reduced `--quick` iteration counts were used.
    pub quick: bool,
    /// One result per kernel, in fixed order.
    pub kernels: Vec<KernelResult>,
}

/// Iteration counts for one kernel.
#[derive(Debug, Clone, Copy)]
struct Reps {
    warmup: u64,
    iters: u64,
}

fn reps(quick: bool, warmup: u64, iters: u64) -> Reps {
    if quick {
        Reps {
            warmup: warmup / 10,
            // Never fewer than 3 timed iterations: a single-iteration
            // "quick" timing is pure noise, and CI compares against it.
            iters: (iters / 10).max(3),
        }
    } else {
        Reps { warmup, iters }
    }
}

/// Time `iters` repetitions of `step` after `warmup` untimed ones.
/// `step` receives the running iteration index and returns a value
/// folded into the checksum.
fn time_kernel(
    name: &'static str,
    r: Reps,
    mut step: impl FnMut(u64) -> u64,
) -> KernelResult {
    let mut checksum = 0u64;
    for i in 0..r.warmup {
        checksum = checksum.wrapping_add(step(i));
    }
    // The warm-up contribution is discarded: the checksum covers
    // exactly the timed iterations so quick/full disagree only in
    // iteration count, never mid-stream.
    checksum = 0;
    let t0 = Instant::now();
    for i in 0..r.iters {
        checksum = checksum.wrapping_add(step(r.warmup + i));
    }
    let total_ns = t0.elapsed().as_nanos() as u64;
    KernelResult {
        name,
        iters: r.iters,
        warmup: r.warmup,
        total_ns,
        ns_per_iter: total_ns as f64 / r.iters as f64,
        checksum,
        events: None,
        baseline_ns_per_iter: None,
        baseline_events_per_sec: None,
    }
}

/// L1+L2 probe/fill kernel: one iteration is one memory access walked
/// through both cache levels, with fills on misses — the synchronous
/// part of `Machine::access` step 3.
fn bench_cache_probe(quick: bool) -> KernelResult {
    let r = reps(quick, 400_000, 4_000_000);
    let mut l1 = Cache::new(CacheConfig::l1_default());
    let mut l2 = Cache::new(CacheConfig::l2_default());
    // Address stream over a 1024-page footprint with page locality:
    // short sequential runs (a line neighborhood) with random jumps,
    // ~2:1 read:write — looped over by the timed iterations.
    let mut rng = Pcg32::new(0xB0A7, 17);
    let footprint_lines = 1024 * LINES_PER_PAGE;
    let mut stream: Vec<(u64, bool)> = Vec::with_capacity(65_536);
    while stream.len() < 65_536 {
        let cursor = rng.gen_range(0, footprint_lines);
        let run = 1 + rng.gen_range(0, 12);
        for k in 0..run {
            let line = (cursor + k) % footprint_lines;
            stream.push((line, rng.gen_bool(0.33)));
            if stream.len() == 65_536 {
                break;
            }
        }
    }
    time_kernel("cache_probe", r, move |i| {
        let (line, is_write) = stream[(i % stream.len() as u64) as usize];
        match l1.access(line, is_write) {
            LookupResult::Hit => 1,
            LookupResult::Miss => match l2.access(line, is_write) {
                LookupResult::Hit => {
                    l1.fill(line, is_write);
                    2
                }
                LookupResult::Miss => {
                    let mut c = 3;
                    if let Some(ev) = l2.fill(line, is_write) {
                        c += ev.line.wrapping_mul(2) + ev.dirty as u64;
                    }
                    l1.fill(line, is_write);
                    c
                }
            },
        }
    })
}

/// Directory-transaction kernel: one iteration is one coherence
/// transaction (read, write or evict) by a random node over a
/// 512-page footprint; every 4096th iteration purges a page, the way
/// page replacement does.
fn bench_directory(quick: bool) -> KernelResult {
    let r = reps(quick, 200_000, 2_000_000);
    let mut dir = Directory::new();
    let mut rng = Pcg32::new(0xD19, 23);
    let footprint_pages = 512u64;
    let footprint_lines = footprint_pages * LINES_PER_PAGE;
    // (line, node, op) stream: 55% reads, 30% writes, 15% evicts.
    let stream: Vec<(u64, u32, u8)> = (0..65_536)
        .map(|_| {
            let line = rng.gen_range(0, footprint_lines);
            let node = rng.gen_range(0, 8) as u32;
            let op = match rng.gen_range(0, 100) {
                0..=54 => 0u8,
                55..=84 => 1,
                _ => 2,
            };
            (line, node, op)
        })
        .collect();
    let mut purge_cursor = 0u64;
    time_kernel("directory_transaction", r, move |i| {
        let (line, node, op) = stream[(i % stream.len() as u64) as usize];
        let mut c = match op {
            0 => match dir.read(line, node) {
                ReadOutcome::FromMemory => 1,
                ReadOutcome::FromMemoryShared => 2,
                ReadOutcome::FromOwner { owner } => 3 + owner as u64,
            },
            1 => {
                let w = dir.write(line, node);
                w.invalidate as u64 + w.fetch_from.map_or(0, |o| 1 + o as u64)
            }
            _ => {
                dir.evict(line, node);
                dir.sharers(line) as u64
            }
        };
        if i % 4096 == 0 {
            purge_cursor = (purge_cursor + 67) % footprint_pages;
            for (l, mask) in dir.purge_page(purge_cursor) {
                c = c.wrapping_add(l ^ mask as u64);
            }
        }
        c
    })
}

/// Ring snoop/drain kernel: one iteration inserts a page on its
/// channel, snoops it (the victim-read/drain path), and removes it
/// (the slot-freeing ACK), with 15 pages left circulating per channel
/// so membership checks run against a loaded slot set.
fn bench_ring(quick: bool) -> KernelResult {
    let r = reps(quick, 200_000, 2_000_000);
    let cfg = RingConfig::paper_default();
    let channels = cfg.channels as u64;
    let mut ring = OpticalRing::new(cfg);
    // Pre-load every channel to slots-1 occupancy.
    for ch in 0..cfg.channels {
        for s in 0..cfg.slots_per_channel - 1 {
            let page = 1_000_000 + (ch * 64 + s) as u64;
            ring.insert(0, ch, page).unwrap();
        }
    }
    let mut now = 1_000u64;
    time_kernel("ring_snoop_drain", r, move |i| {
        let ch = (i % channels) as usize;
        let page = i % 4096;
        now += 37;
        let mut c = 0u64;
        if ring.insert(now, ch, page).is_ok() {
            c ^= 1;
        }
        if let Some(ready) = ring.snoop_ready(now + 11, ch, page) {
            c ^= ready;
        }
        if ring.remove(ch, page) {
            c ^= 2;
        }
        c ^= ring.contains(ch, 1_000_000 + ch as u64 * 64) as u64;
        c
    })
}

/// Full small-application kernel: one iteration is a complete
/// out-of-core `gauss` run on the NWCache machine at scale 0.5 —
/// every hot structure exercised with the real access mix. The
/// checksum folds the headline metrics, so a run that is not
/// bit-identical to the previous layout shows up as a checksum
/// change.
fn bench_app_run(quick: bool) -> KernelResult {
    let r = if quick {
        // Quick still times 3 full runs: a single-iteration timing is
        // noise, and the CI regression gate compares against it.
        Reps { warmup: 0, iters: 3 }
    } else {
        Reps { warmup: 1, iters: 3 }
    };
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.5);
    let events = std::cell::Cell::new(0u64);
    let mut kr = time_kernel("app_run", r, |_| {
        let mut machine = crate::machine::Machine::new(cfg.clone(), AppId::Gauss);
        machine.set_sim_threads(1);
        let m = machine.run();
        // Runs are deterministic, so the per-iteration event count is
        // a constant, not an accumulation.
        events.set(machine.events_dispatched());
        m.exec_time
            .wrapping_mul(31)
            .wrapping_add(m.page_faults)
            .wrapping_add(m.swap_outs.wrapping_mul(7))
            .wrapping_add(m.ring_hits.wrapping_mul(13))
            .wrapping_add(m.mesh_messages.wrapping_mul(3))
    });
    kr.events = Some(events.get());
    kr
}

/// The larger-than-paper PDES machine: 32 nodes (8 I/O nodes) with a
/// node-private synthetic sweep whose barrier resynchronization makes
/// every quantum round a 32-wide `Resume` cohort. `pdes_large` runs
/// it serially, `pdes_large_par` on K worker threads; the two must
/// produce the *same* checksum (bit-identical engines), so the pair
/// doubles as a determinism gate in `validate_bench_json`.
fn pdes_large_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
    cfg.nodes = 32;
    cfg.io_nodes = 8;
    cfg.ring_channels = 32; // NwCache validation: channels >= nodes
    cfg.memory_per_node = 256 * 1024;
    // Long quanta keep the lanes busy between barrier rounds.
    cfg.quantum = 50_000;
    cfg
}

fn pdes_large_build() -> nw_apps::AppBuild {
    nw_apps::synth::build_private(
        nw_apps::synth::SynthConfig {
            // 64 KB per processor: half the 128 KB L2, so the cyclic
            // sweep re-hits in cache instead of missing every line.
            data_bytes: 32 * 64 * 1024,
            stride_lines: 1,
            write_frac: 0.0,
            random_frac: 0.0,
            iters: 14,
            compute_per_line: 8,
        },
        32,
        0x1999,
    )
}

fn bench_pdes_large(quick: bool, name: &'static str, threads: usize) -> KernelResult {
    let r = if quick {
        Reps { warmup: 0, iters: 3 }
    } else {
        Reps { warmup: 1, iters: 5 }
    };
    let cfg = pdes_large_cfg();
    let events = std::cell::Cell::new(0u64);
    let mut kr = time_kernel(name, r, |_| {
        let mut machine = crate::machine::Machine::from_build(cfg.clone(), pdes_large_build());
        machine.set_sim_threads(threads);
        let m = machine.run();
        events.set(machine.events_dispatched());
        m.exec_time
            .wrapping_mul(31)
            .wrapping_add(m.page_faults)
            .wrapping_add(m.swap_outs.wrapping_mul(7))
            .wrapping_add(m.ring_hits.wrapping_mul(13))
            .wrapping_add(m.mesh_messages.wrapping_mul(3))
            .wrapping_add(machine.events_dispatched().wrapping_mul(17))
    });
    kr.events = Some(events.get());
    kr
}

impl BenchReport {
    /// Run every hot-path kernel and collect a report. `quick` uses
    /// ~10x fewer iterations (the CI smoke configuration).
    /// `par_threads` is the worker count for the `pdes_large_par`
    /// kernel (0 picks the default of 4); `pdes_large` always runs
    /// the same machine serially so the pair measures the parallel
    /// engine's speedup at identical results.
    pub fn run(quick: bool, par_threads: usize) -> BenchReport {
        let par = if par_threads == 0 { 4 } else { par_threads };
        BenchReport {
            quick,
            kernels: vec![
                bench_cache_probe(quick),
                bench_directory(quick),
                bench_ring(quick),
                bench_app_run(quick),
                bench_pdes_large(quick, "pdes_large", 1),
                bench_pdes_large(quick, "pdes_large_par", par),
            ],
        }
    }

    /// Attach per-kernel baselines parsed from a previous report's
    /// JSON (matching kernels by name). Baselines predating the
    /// `events_per_sec` field simply leave it unset.
    pub fn attach_baseline(&mut self, baseline_json: &str) {
        for k in &mut self.kernels {
            k.baseline_ns_per_iter = extract_kernel_ns(baseline_json, k.name);
            k.baseline_events_per_sec =
                extract_kernel_field(baseline_json, k.name, "events_per_sec");
        }
    }

    /// Serialize with the frozen `nwcache-bench-v1` schema: a fixed
    /// header, then one object per kernel in run order. The optional
    /// `baseline_ns_per_iter`/`speedup` fields appear only when a
    /// baseline was attached. Hand-rolled (the workspace carries no
    /// serialization dependency); field order never varies.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.kernels.len() * 256);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"nwcache-bench-v1\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        // Quick timings use reduced iteration counts: fine for smoke
        // gating, not for recording as the repository's perf record.
        out.push_str(&format!("  \"authoritative\": {},\n", !self.quick));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\":\"{}\",\"iters\":{},\"warmup\":{},\"total_ns\":{},\
                 \"ns_per_iter\":{},\"checksum\":{}",
                k.name,
                k.iters,
                k.warmup,
                k.total_ns,
                json_f64(k.ns_per_iter),
                k.checksum
            ));
            if let Some(e) = k.events {
                out.push_str(&format!(
                    ",\"events\":{},\"events_per_sec\":{}",
                    e,
                    json_f64(k.events_per_sec().unwrap_or(0.0))
                ));
            }
            if let Some(b) = k.baseline_ns_per_iter {
                out.push_str(&format!(
                    ",\"baseline_ns_per_iter\":{},\"speedup\":{}",
                    json_f64(b),
                    json_f64(k.speedup().unwrap_or(0.0))
                ));
            }
            if let Some(b) = k.baseline_events_per_sec {
                out.push_str(&format!(",\"baseline_events_per_sec\":{}", json_f64(b)));
            }
            out.push('}');
            if i + 1 < self.kernels.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

/// The kernel names every `nwcache-bench-v1` document must contain,
/// in schema order.
pub const KERNEL_NAMES: [&str; 6] = [
    "cache_probe",
    "directory_transaction",
    "ring_snoop_drain",
    "app_run",
    "pdes_large",
    "pdes_large_par",
];

/// Validate that `json` is a well-formed `nwcache-bench-v1` document:
/// correct schema tag, every kernel present with positive iteration
/// and timing fields. Used by the CI bench smoke job
/// (`nwsim bench-validate`) and the integration tests.
pub fn validate_bench_json(json: &str) -> Result<(), String> {
    if !json.contains("\"schema\": \"nwcache-bench-v1\"") {
        return Err("missing or wrong schema tag (want nwcache-bench-v1)".into());
    }
    if !json.contains("\"quick\": true") && !json.contains("\"quick\": false") {
        return Err("missing \"quick\" flag".into());
    }
    for name in KERNEL_NAMES {
        let Some(ns) = extract_kernel_ns(json, name) else {
            return Err(format!("kernel \"{name}\" missing or lacks ns_per_iter"));
        };
        if ns.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("kernel \"{name}\" has non-positive ns_per_iter"));
        }
        match extract_kernel_field(json, name, "iters") {
            Some(it) if it > 0.0 => {}
            _ => return Err(format!("kernel \"{name}\" has no positive iters")),
        }
        if extract_kernel_field(json, name, "checksum").is_none() {
            return Err(format!("kernel \"{name}\" has no checksum"));
        }
    }
    // Determinism gate: the serial and parallel PDES kernels run the
    // same machine, so differing checksums mean the parallel engine
    // diverged from the serial one.
    let serial = extract_kernel_field(json, "pdes_large", "checksum");
    let par = extract_kernel_field(json, "pdes_large_par", "checksum");
    if serial != par {
        return Err(format!(
            "pdes_large checksum {serial:?} != pdes_large_par checksum {par:?}: \
             parallel engine diverged from serial"
        ));
    }
    Ok(())
}

/// Extract `ns_per_iter` for kernel `name` from a bench JSON document.
pub fn extract_kernel_ns(json: &str, name: &str) -> Option<f64> {
    extract_kernel_field(json, name, "ns_per_iter")
}

/// Whether a bench JSON document may serve as a regression-gate
/// baseline. `--quick` reports record `"authoritative": false` —
/// their reduced iteration counts are timing noise, and gating
/// against noise produces phantom regressions (and phantom passes).
/// Documents predating the field count as authoritative.
pub fn baseline_is_authoritative(json: &str) -> bool {
    let Some(i) = json.find("\"authoritative\"") else {
        return true;
    };
    let rest = json[i + "\"authoritative\"".len()..].trim_start();
    let rest = rest.strip_prefix(':').unwrap_or(rest).trim_start();
    !rest.starts_with("false")
}

/// Minimal field extractor for the bench schema: finds the kernel
/// object by its `"name"` and reads a numeric field from it. Only
/// meant for `nwcache-bench-v1` documents (objects are single-line,
/// fields unescaped) — not a general JSON parser.
fn extract_kernel_field(json: &str, name: &str, field: &str) -> Option<f64> {
    let tag = format!("\"name\":\"{name}\"");
    let start = json.find(&tag)?;
    let obj = &json[start..json[start..].find('}').map(|e| start + e)?];
    let ftag = format!("\"{field}\":");
    let fstart = obj.find(&ftag)? + ftag.len();
    let rest = &obj[fstart..];
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        // Hand-built report: unit tests must not run the real kernels.
        BenchReport {
            quick: true,
            kernels: KERNEL_NAMES
                .iter()
                .enumerate()
                .map(|(i, &name)| KernelResult {
                    name,
                    iters: 100 + i as u64,
                    warmup: 10,
                    total_ns: 5_000,
                    ns_per_iter: 5_000.0 / (100 + i as u64) as f64,
                    // The two pdes kernels must agree (the validator's
                    // determinism gate), mirroring the real engines.
                    checksum: if name.starts_with("pdes_large") {
                        99
                    } else {
                        42 + i as u64
                    },
                    events: if i >= 3 { Some(10_000 + i as u64) } else { None },
                    baseline_ns_per_iter: None,
                    baseline_events_per_sec: None,
                })
                .collect(),
        }
    }

    #[test]
    fn report_json_validates() {
        let r = tiny_report();
        let json = r.to_json();
        assert!(validate_bench_json(&json).is_ok(), "{json}");
    }

    #[test]
    fn baseline_attach_and_speedup() {
        let mut r = tiny_report();
        let baseline = r.to_json();
        r.attach_baseline(&baseline);
        for k in &r.kernels {
            let s = k.speedup().expect("baseline attached");
            assert!((s - 1.0).abs() < 1e-9, "{}: {s}", k.name);
        }
        // Speedup fields survive a serialization round trip.
        let json = r.to_json();
        assert!(json.contains("\"speedup\":1"), "{json}");
        assert!(validate_bench_json(&json).is_ok());
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_bench_json("{}").is_err());
        let r = tiny_report();
        let json = r.to_json();
        let wrong_schema = json.replace("nwcache-bench-v1", "nwcache-bench-v0");
        assert!(validate_bench_json(&wrong_schema).is_err());
        let missing_kernel = json.replace("app_run", "app_walk");
        assert!(validate_bench_json(&missing_kernel).is_err());
    }

    #[test]
    fn quick_baselines_are_not_authoritative() {
        // tiny_report is quick, so its document says so.
        let quick = tiny_report().to_json();
        assert!(!baseline_is_authoritative(&quick), "{quick}");
        let full = quick.replace("\"authoritative\": false", "\"authoritative\": true");
        assert!(baseline_is_authoritative(&full));
        // Documents predating the field gate as before.
        assert!(baseline_is_authoritative("{\"schema\": \"nwcache-bench-v1\"}"));
    }

    #[test]
    fn pdes_checksum_mismatch_is_rejected() {
        let mut r = tiny_report();
        r.kernels.last_mut().unwrap().checksum = 7;
        let err = validate_bench_json(&r.to_json()).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn events_fields_round_trip() {
        let mut r = tiny_report();
        let baseline = r.to_json();
        assert!(baseline.contains("\"events\":10003"), "{baseline}");
        assert!(baseline.contains("\"events_per_sec\":"), "{baseline}");
        assert!(baseline.contains("\"authoritative\": false"), "{baseline}");
        r.attach_baseline(&baseline);
        let k = &r.kernels[3];
        let b = k.baseline_events_per_sec.expect("events baseline attached");
        let cur = k.events_per_sec().expect("kernel records events");
        assert!((b / cur - 1.0).abs() < 1e-6, "{b} vs {cur}");
        assert!(r.to_json().contains("\"baseline_events_per_sec\":"));
        // Kernels without events never grow the optional fields.
        assert!(r.kernels[0].events_per_sec().is_none());
    }

    #[test]
    fn pdes_large_kernel_engages_parallel_rounds() {
        // The speedup pair is only a measurement if the parallel arm
        // actually takes the lane path on the 32-node machine (a
        // silent fallback to serial delivery would still produce the
        // matching checksum the validator pins).
        let cfg = pdes_large_cfg();
        let mut serial = crate::machine::Machine::from_build(cfg.clone(), pdes_large_build());
        serial.set_sim_threads(1);
        let base = serial.run();
        let mut par = crate::machine::Machine::from_build(cfg, pdes_large_build());
        par.set_sim_threads(4);
        let got = par.run();
        assert_eq!(base, got, "pdes_large kernel diverged at sim-threads 4");
        let (parallel_rounds, _) = par.pdes_rounds();
        assert!(parallel_rounds > 0, "32-node kernel never took the parallel path");
    }

    #[test]
    fn extractor_reads_numeric_fields() {
        let r = tiny_report();
        let json = r.to_json();
        assert_eq!(extract_kernel_field(&json, "cache_probe", "iters"), Some(100.0));
        assert_eq!(extract_kernel_field(&json, "app_run", "checksum"), Some(45.0));
        assert_eq!(extract_kernel_ns(&json, "no_such_kernel"), None);
    }
}
