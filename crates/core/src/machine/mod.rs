//! The simulated 8-node multiprocessor.
//!
//! One [`Machine`] owns every hardware component plus the OS virtual-
//! memory state, and advances a deterministic discrete-event loop.
//! Processors execute their application action streams *inline* (cache
//! hits and even contended-but-synchronous memory transactions are
//! resolved against resource timestamps without event-queue round
//! trips) and only block on page faults, frame shortages and barriers
//! — the same structure as the execution-driven simulator the paper
//! built on MINT.
//!
//! Module layout: [`self`] holds the state and processor loop,
//! `memory` the cache/coherence path, `fault` the page-fault and
//! replacement machinery, `io` the disk and optical-ring protocol
//! handlers.

mod ckpt;
mod directed;
mod events;
mod fault;
mod io;
mod memory;
mod pdes;
#[cfg(test)]
mod tests;

pub use pdes::{default_sim_threads, set_default_sim_threads};

pub use events::Event;

use crate::config::{MachineConfig, MachineKind, RingShard};
use crate::error::SimError;
use crate::metrics::RunMetrics;
use crate::observe::{self, groups, ObserveConfig, Observer, TraceData};
use crate::prefetch::{build_policy, PrefetchPolicy};
use crate::trace::{PageTracer, TraceKind};
use crate::vm::{BarrierState, FramePool, PageEntry, PageState, ProcId, Vpn};
use nw_apps::{Action, ActionStream, AppId};
use nw_disk::{
    DiskController, DiskControllerConfig, DiskFaultInjector, Mechanics, ParallelFs,
};
use nw_memhier::{Cache, CacheConfig, Directory, Line, MemoryBus, Tlb, WriteBuffer, LINES_PER_PAGE};
use nw_mesh::{Delivery, Mesh, MeshConfig, MeshFaults, MsgFault};
use nw_optical::{NwcInterface, RingConfig, RingFabric};
use nw_sim::stats::{BoundedSeries, CycleBreakdown, Histogram, Tally};
use nw_sim::trace::TrackId;
use nw_sim::{Bandwidth, EventQueue, Time};
use std::collections::{HashMap, HashSet, VecDeque};

/// Abort when this many consecutive events fail to advance simulated
/// time — a progress watchdog against protocol livelock. A legitimate
/// instant never carries more than a few thousand events.
const STALL_EVENT_LIMIT: u64 = 1_000_000;

/// With an active fault plan, re-verify page/frame conservation every
/// this many events (always verified once at completion).
const CONSERVATION_CHECK_PERIOD: u64 = 65_536;

/// Cap on the ring-occupancy metric series: past this many samples the
/// series doubles its interval instead of growing, keeping long
/// synthetic runs (the victim-cache capacity probe) at O(samples)
/// memory rather than O(occupancy changes).
const RING_OCC_SAMPLE_CAP: usize = 4_096;

/// Why a processor is blocked (determines the accounting category the
/// wait is charged to when it wakes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Waiting for its own page fault to complete.
    Fault,
    /// Waiting for a page another processor is bringing in.
    Transit,
    /// Waiting for a free page frame.
    NoFree,
    /// Waiting at a barrier.
    Barrier,
}

/// Per-processor state.
pub(crate) struct Proc {
    pub(crate) stream: ActionStream,
    /// Actions consumed from `stream` so far. Streams are pure
    /// functions of the workload build, so this single counter is the
    /// stream's entire checkpointable state: restore rebuilds the
    /// stream and fast-forwards it this many actions.
    pub(crate) consumed: u64,
    /// Action to retry after unblocking.
    pub(crate) pending: Option<Action>,
    pub(crate) tlb: Tlb,
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) wb: WriteBuffer,
    pub(crate) local_time: Time,
    pub(crate) breakdown: CycleBreakdown,
    /// Interrupt cycles (TLB shootdowns) to charge at the next step.
    pub(crate) pending_interrupt: Time,
    pub(crate) blocked: Option<(BlockKind, Time)>,
    pub(crate) done: bool,
    /// Set when the PDES engine deferred this processor mid-quantum:
    /// the replaying [`Machine::step_proc`] resumes the *same* quantum
    /// (started at this time) instead of opening a fresh one, keeping
    /// quantum-expiry `Resume` scheduling identical to a serial run.
    /// Always `None` at event boundaries, so checkpoints are
    /// unaffected.
    pub(crate) in_quantum: Option<Time>,
}

/// How a completed page fault was served (for latency tallies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultSource {
    DiskCacheHit,
    DiskCacheMiss,
    Ring,
}

/// In-flight fault bookkeeping.
pub(crate) struct FaultInfo {
    pub(crate) start: Time,
    pub(crate) source: FaultSource,
}

/// Result of a bounded run step (see [`Machine::try_run_events`]).
#[derive(Debug)]
pub enum RunOutcome {
    /// The simulation completed; metrics collected. Boxed so a
    /// `Paused` result stays pointer-sized — metrics carry full
    /// histograms and are only materialized once per run.
    Done(Box<RunMetrics>),
    /// The event budget ran out with the simulation unfinished.
    Paused,
}

/// The full simulated machine.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) mesh: Mesh,
    pub(crate) procs: Vec<Proc>,
    pub(crate) mem_bus: Vec<MemoryBus>,
    pub(crate) io_bus: Vec<MemoryBus>,
    pub(crate) dir: Directory,
    pub(crate) disks: Vec<DiskController>,
    pub(crate) fs: ParallelFs,
    pub(crate) ring: Option<RingFabric>,
    /// One NWCache interface per disk (at its I/O node), with one FIFO
    /// per global cache channel (`ring * ring_channels + node`).
    pub(crate) ifaces: Vec<NwcInterface>,
    /// I/O node hosting each disk, precomputed from the placement
    /// policy (derived from config; never checkpointed).
    pub(crate) disk_homes: Vec<u32>,
    /// Per-disk: the drain receiver is busy until this time.
    pub(crate) drain_busy_until: Vec<Time>,
    pub(crate) pt: Vec<PageEntry>,
    pub(crate) frames: Vec<FramePool>,
    pub(crate) barrier: BarrierState,
    /// Per node: swap-outs waiting for ring-channel room.
    pub(crate) pending_ring_swaps: Vec<VecDeque<Vpn>>,
    /// Swap-out start times, keyed by (node, vpn).
    pub(crate) swap_start: HashMap<(u32, Vpn), Time>,
    pub(crate) fault_info: HashMap<Vpn, FaultInfo>,
    pub(crate) npages: u64,
    pub(crate) finished: usize,
    // run-loop state, promoted to fields so a checkpointed run can be
    // paused after any event and resumed bit-identically
    /// Whether the initial events (per-proc resumes, scheduled ring
    /// failures) have been placed on the queue.
    pub(crate) started: bool,
    /// Events dispatched so far.
    pub(crate) events_dispatched: u64,
    /// Timestamp of the last dispatched event (stall watchdog).
    pub(crate) last_time: Time,
    /// Consecutive events at `last_time` (stall watchdog).
    pub(crate) same_time_events: u64,
    // fault-injection state (all idle under an inactive FaultPlan)
    /// Per-disk media-error / stuck-request injectors.
    pub(crate) disk_faults: Vec<DiskFaultInjector>,
    /// Drop/corrupt injector for protected mesh control messages.
    pub(crate) mesh_faults: MeshFaults,
    /// Ring swap-outs whose frame stays pinned until the disk-side ACK
    /// (populated only when ring channel failures are scheduled).
    pub(crate) pinned: HashSet<(u32, Vpn)>,
    /// Retry attempts per page for faulted disk reads.
    pub(crate) disk_retry: HashMap<Vpn, u32>,
    /// Re-issue attempts per (node, page) for timed-out swap-outs.
    pub(crate) swap_attempts: HashMap<(u32, Vpn), u32>,
    /// Fatal error raised inside a non-`Result` path; aborts `try_run`.
    pub(crate) fatal: Option<SimError>,
    // metric accumulators not owned by components
    pub(crate) m_swap_out_time: Tally,
    pub(crate) m_swap_out_hist: Histogram,
    pub(crate) m_fault_hist: Histogram,
    pub(crate) m_ring_occupancy: BoundedSeries,
    pub(crate) m_fault_hit: Tally,
    pub(crate) m_fault_miss: Tally,
    pub(crate) m_fault_ring: Tally,
    pub(crate) m_ring_hits: u64,
    pub(crate) m_ring_misses: u64,
    pub(crate) m_page_faults: u64,
    pub(crate) m_swap_outs: u64,
    pub(crate) m_swap_nacks: u64,
    pub(crate) m_shootdowns: u64,
    pub(crate) m_ring_pages_lost: u64,
    pub(crate) m_swap_retries: u64,
    pub(crate) m_degraded_ring_swaps: u64,
    pub(crate) m_dead_channels: u64,
    pub(crate) app_name: &'static str,
    /// The machine-level prefetch policy (see [`crate::prefetch`]):
    /// maps the config mode onto the controllers and, for the adaptive
    /// mode, owns the per-node detectors and speculation accounting.
    pub(crate) policy: Box<dyn PrefetchPolicy>,
    /// Scratch buffers for the speculation hooks (predictions and
    /// outstanding-hint snapshots), reused across faults.
    pub(crate) scratch_pred: Vec<Vpn>,
    pub(crate) scratch_hints: Vec<Vpn>,
    pub(crate) tracer: PageTracer,
    /// Structured-event observer (`None` in normal runs; every hook is
    /// a single branch on this option — see [`crate::observe`]).
    pub(crate) obs: Option<Box<Observer>>,
    /// Scratch buffer for directory page purges (reused across every
    /// eviction so the steady-state purge path never allocates).
    pub(crate) scratch_purge: Vec<(Line, nw_memhier::directory::SharerMask)>,
    // PDES runtime state (never checkpointed: thread count is a host
    // property, like sweep jobs, and results are identical at any K)
    /// Worker threads for the parallel engine (1 = serial loop).
    pub(crate) sim_threads: usize,
    /// Whether the workload declared the node-private access contract
    /// (see [`nw_apps::AppBuild::node_private`]).
    pub(crate) node_private: bool,
    /// Persistent worker crew, created on first parallel round.
    pub(crate) pdes_pool: Option<nw_sim::pool::RoundPool>,
    /// Rounds executed via the parallel lane path / via the serial
    /// fallback (diagnostics; lets tests assert parallelism engaged).
    pub(crate) pdes_parallel_rounds: u64,
    pub(crate) pdes_serial_rounds: u64,
}

impl Machine {
    /// Build a machine from `cfg` loaded with application `app`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn new(cfg: MachineConfig, app: AppId) -> Self {
        Machine::try_new(cfg, app).unwrap_or_else(|e| panic!("bad config: {e}"))
    }

    /// Fallible variant of [`Machine::new`].
    pub fn try_new(cfg: MachineConfig, app: AppId) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::BadConfig)?;
        let build = nw_apps::build(app, cfg.nodes as usize, cfg.app_scale, cfg.seed);
        Machine::try_from_build(cfg, build)
    }

    /// Build a machine running an arbitrary pre-built workload (e.g. a
    /// [`nw_apps::synth`] kernel). The workload must provide exactly
    /// one stream per node.
    ///
    /// # Panics
    /// Panics on an invalid config or a stream-count mismatch.
    pub fn from_build(cfg: MachineConfig, build: nw_apps::AppBuild) -> Self {
        Machine::try_from_build(cfg, build).unwrap_or_else(|e| panic!("bad config: {e}"))
    }

    /// Fallible variant of [`Machine::from_build`].
    pub fn try_from_build(cfg: MachineConfig, build: nw_apps::AppBuild) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::BadConfig)?;
        let n = cfg.nodes as usize;
        if build.streams.len() != n {
            return Err(SimError::WorkloadMismatch {
                streams: build.streams.len(),
                nodes: cfg.nodes,
            });
        }
        let npages = build.data_bytes.div_ceil(cfg.page_bytes);
        let node_private = build.node_private;

        let (mesh_w, mesh_h) = cfg.mesh_dims();
        let mesh_cfg = MeshConfig {
            width: mesh_w,
            height: mesh_h,
            ..MeshConfig::paper_default()
        };
        let procs = build
            .streams
            .into_iter()
            .map(|stream| Proc {
                stream,
                consumed: 0,
                pending: None,
                tlb: Tlb::new(cfg.tlb_entries),
                l1: Cache::new(CacheConfig::l1_default()),
                l2: Cache::new(CacheConfig::l2_default()),
                wb: WriteBuffer::new(cfg.wb_entries),
                local_time: 0,
                breakdown: CycleBreakdown::default(),
                pending_interrupt: 0,
                blocked: None,
                done: false,
                in_quantum: None,
            })
            .collect();

        let policy = build_policy(&cfg);
        let dcfg = DiskControllerConfig {
            cache_pages: cfg.disk_cache_pages,
            policy: policy.disk_policy(),
            flush_delay: cfg.disk_flush_delay,
            spec_cache_pages: cfg.prefetch_window.max(2),
        };
        let disks = (0..cfg.io_nodes)
            .map(|_| {
                let mut d = DiskController::new(dcfg, Mechanics::paper_default());
                if cfg.kind == MachineKind::Dcd {
                    d.attach_log_disk(nw_disk::LogDisk::paper_default());
                }
                d
            })
            .collect();

        let ring = if cfg.has_ring() {
            Some(RingFabric::new(
                RingConfig {
                    channels: cfg.ring_channels,
                    slots_per_channel: cfg.ring_slots_per_channel,
                    round_trip: cfg.ring_round_trip,
                    rate: Bandwidth::from_gbytes_per_sec_milli(1250),
                    page_bytes: cfg.page_bytes,
                },
                cfg.ring_count,
            ))
        } else {
            None
        };

        let io_nodes = cfg.io_nodes;
        // Interface FIFOs are indexed by global channel id so a drain
        // or channel failure addresses exactly one (ring, node) pair.
        let total_channels = cfg.ring_channels * cfg.ring_count;
        let disk_homes = (0..cfg.io_nodes)
            .map(|d| cfg.try_io_node_of_disk(d))
            .collect::<Result<Vec<u32>, SimError>>()?;
        let dir_shards = cfg.dir_shards;
        let nodes = cfg.nodes;
        let frames_per_node = cfg.frames_per_node();
        let disk_faults = (0..cfg.io_nodes)
            .map(|d| {
                DiskFaultInjector::new(
                    cfg.faults.seed,
                    d as u64,
                    cfg.faults.disk_error_rate,
                    cfg.faults.disk_stuck_rate,
                )
            })
            .collect();
        let mesh_faults = MeshFaults::new(
            cfg.faults.seed,
            cfg.faults.mesh_drop_rate,
            cfg.faults.mesh_corrupt_rate,
        );
        let mut m = Machine {
            cfg,
            // Pre-size the far tier for the simultaneously outstanding
            // long-latency events (disk mechanics, watchdogs, staged
            // faults): a handful per node covers steady state.
            queue: EventQueue::with_capacity(16 * n),
            mesh: Mesh::new(mesh_cfg),
            procs,
            mem_bus: (0..n).map(|_| MemoryBus::paper_memory_bus()).collect(),
            io_bus: (0..n).map(|_| MemoryBus::paper_io_bus()).collect(),
            dir: Directory::with_topology(dir_shards, nodes),
            disks,
            fs: ParallelFs::paper_default(io_nodes),
            ring,
            ifaces: (0..io_nodes)
                .map(|_| NwcInterface::new(total_channels))
                .collect(),
            disk_homes,
            drain_busy_until: vec![0; io_nodes as usize],
            pt: (0..npages).map(|_| PageEntry::new()).collect(),
            frames: (0..n)
                .map(|_| FramePool::new(frames_per_node))
                .collect(),
            barrier: BarrierState::new(n),
            pending_ring_swaps: (0..n).map(|_| VecDeque::new()).collect(),
            swap_start: HashMap::new(),
            fault_info: HashMap::new(),
            npages,
            finished: 0,
            started: false,
            events_dispatched: 0,
            last_time: 0,
            same_time_events: 0,
            disk_faults,
            mesh_faults,
            pinned: HashSet::new(),
            disk_retry: HashMap::new(),
            swap_attempts: HashMap::new(),
            fatal: None,
            m_swap_out_time: Tally::new(),
            m_swap_out_hist: Histogram::new(),
            m_fault_hist: Histogram::new(),
            // One occupancy sample per ~100 us of simulated time,
            // downsampling past the cap instead of growing.
            m_ring_occupancy: BoundedSeries::new(20_000, RING_OCC_SAMPLE_CAP),
            m_fault_hit: Tally::new(),
            m_fault_miss: Tally::new(),
            m_fault_ring: Tally::new(),
            m_ring_hits: 0,
            m_ring_misses: 0,
            m_page_faults: 0,
            m_swap_outs: 0,
            m_swap_nacks: 0,
            m_shootdowns: 0,
            m_ring_pages_lost: 0,
            m_swap_retries: 0,
            m_degraded_ring_swaps: 0,
            m_dead_channels: 0,
            app_name: build.name,
            policy,
            scratch_pred: Vec::new(),
            scratch_hints: Vec::new(),
            tracer: PageTracer::new(),
            obs: None,
            scratch_purge: Vec::with_capacity(LINES_PER_PAGE as usize),
            sim_threads: 1,
            node_private,
            pdes_pool: None,
            pdes_parallel_rounds: 0,
            pdes_serial_rounds: 0,
        };
        // The process-wide default (set by `--sim-threads`) applies to
        // every new machine — including resumes and sweep cells — the
        // same way `sweep::set_jobs` works.
        m.set_sim_threads(pdes::default_sim_threads());
        // A process-wide default (set by the trace CLI and the sweep
        // invariance tests) attaches an observer to every new machine.
        if let Some(ocfg) = observe::global() {
            m.enable_observer(ocfg);
        }
        Ok(m)
    }

    /// Trace every lifecycle transition of `vpn` (see [`crate::trace`]).
    /// Call before [`Machine::run`].
    pub fn trace_page(&mut self, vpn: Vpn) {
        self.tracer.watch(vpn);
    }

    /// Records collected for traced pages.
    pub fn trace_records(&self) -> &[crate::trace::TraceRecord] {
        self.tracer.records()
    }

    /// Shorthand used by the protocol handlers.
    pub(crate) fn trace(&mut self, at: Time, vpn: Vpn, kind: TraceKind) {
        self.tracer.emit(at, vpn, kind);
    }

    /// Attach a structured-event observer (see [`crate::observe`]).
    /// Call before [`Machine::run`]; observation never changes what
    /// the simulation computes.
    pub fn enable_observer(&mut self, cfg: ObserveConfig) {
        let mut o = Observer::new(&cfg);
        // Counter registration order is the order `sample_observer`
        // records values in — keep the two in sync.
        o.add_counter("sim.queue_depth".into(), groups::SIM, 0);
        o.add_counter("mesh.util_permille".into(), groups::MESH, 0);
        o.add_counter("dir.lines".into(), groups::DIR, 0);
        for d in 0..self.disks.len() {
            o.add_counter(format!("disk{d}.cache_fill"), groups::DISK, d as u32);
            o.add_counter(format!("disk{d}.arm_block"), groups::DISK, d as u32);
        }
        if let Some(ring) = self.ring.as_ref() {
            for c in 0..ring.channels() {
                o.add_counter(format!("ring.ch{c}.occupancy"), groups::RING, c as u32);
            }
        }
        self.obs = Some(Box::new(o));
    }

    /// Whether an observer is attached.
    pub fn observing(&self) -> bool {
        self.obs.is_some()
    }

    /// Detach the observer and return everything it recorded, or
    /// `None` if none was attached.
    pub fn take_observation(&mut self) -> Option<TraceData> {
        let o = self.obs.take()?;
        let machine = match self.cfg.kind {
            MachineKind::Standard => "standard",
            MachineKind::NwCache => "nwcache",
            MachineKind::Dcd => "dcd",
        };
        Some(o.into_data(self.app_name.to_string(), machine.to_string()))
    }

    /// Record an instant observation (no-op with no observer).
    #[inline]
    pub(crate) fn obs_instant(
        &mut self,
        at: Time,
        group: u8,
        index: u32,
        name: &'static str,
        arg0: u64,
        arg1: u64,
    ) {
        if let Some(o) = self.obs.as_mut() {
            o.buf.instant(at, TrackId::new(group, index), name, arg0, arg1);
        }
    }

    /// Record a span observation (no-op with no observer).
    #[inline]
    #[allow(clippy::too_many_arguments)] // mirrors `TraceBuffer::span`
    pub(crate) fn obs_span(
        &mut self,
        start: Time,
        end: Time,
        group: u8,
        index: u32,
        name: &'static str,
        arg0: u64,
        arg1: u64,
    ) {
        if let Some(o) = self.obs.as_mut() {
            o.buf.span(start, end, TrackId::new(group, index), name, arg0, arg1);
        }
    }

    /// [`Mesh::send`] plus a mesh-track span when observing: the
    /// protocol handlers route their traffic through this so the mesh
    /// timeline shows every transfer with its queueing and label.
    #[inline]
    pub(crate) fn mesh_send(
        &mut self,
        now: Time,
        src: u32,
        dst: u32,
        bytes: u64,
        what: &'static str,
    ) -> Delivery {
        let d = self.mesh.send(now, src, dst, bytes);
        if let Some(o) = self.obs.as_mut() {
            o.buf.span(
                d.start,
                d.arrival,
                TrackId::new(groups::MESH, src),
                what,
                dst as u64,
                bytes,
            );
        }
        d
    }

    /// Read one sample of every registered counter. Called from the
    /// event loop when simulated time passes the sampling deadline;
    /// reads component state only, never mutates it.
    fn sample_observer(&mut self, t: Time) {
        let qdepth = self.queue.len() as u64;
        let util = (self.mesh.mean_utilization(t.max(1)) * 1000.0) as u64;
        let dir_lines = self.dir.tracked_lines() as u64;
        let Some(o) = self.obs.as_mut() else { return };
        // Align the next deadline to the interval grid so sampling
        // cadence is a function of simulated time alone.
        o.next_sample_due = (t / o.sample_interval + 1) * o.sample_interval;
        let mut it = o.counters.iter_mut();
        let mut put = |v: u64| {
            if let Some(c) = it.next() {
                c.series.record(t, v);
            }
        };
        put(qdepth);
        put(util);
        put(dir_lines);
        for d in 0..self.disks.len() {
            put(self.disks[d].cache_fill() as u64);
            put(self.disks[d].mechanics().head());
        }
        if let Some(ring) = self.ring.as_ref() {
            for c in 0..ring.channels() {
                put(ring.occupancy(c) as u64);
            }
        }
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Speculative read hints currently in flight across all nodes
    /// (committed but not yet installed, consumed, or retracted).
    /// Zero for non-speculating policies. Lets the crash-injection
    /// suite snapshot a machine while speculation is provably live.
    pub fn spec_outstanding(&self) -> usize {
        (0..self.cfg.nodes).map(|n| self.policy.inflight(n)).sum()
    }

    /// Shared data footprint in pages.
    pub fn npages(&self) -> u64 {
        self.npages
    }

    /// Run the application to completion and collect metrics.
    ///
    /// # Panics
    /// Panics on any [`SimError`]; use [`Machine::try_run`] for the
    /// crash-proof variant.
    pub fn run(&mut self) -> RunMetrics {
        self.try_run()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Run the application to completion, reporting deadlock, livelock,
    /// protocol violations, lost pages and exhausted fault-recovery
    /// retries as structured errors instead of aborting the process.
    pub fn try_run(&mut self) -> Result<RunMetrics, SimError> {
        match self.try_run_events(u64::MAX)? {
            RunOutcome::Done(m) => Ok(*m),
            RunOutcome::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Events dispatched so far (across every `try_run_events` call).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Dispatch at most `budget` further events. Returns
    /// [`RunOutcome::Paused`] when the budget ran out with the
    /// simulation unfinished — the machine can then be checkpointed
    /// and/or the call repeated. Because every piece of loop state
    /// lives on the machine, chunked runs dispatch the exact same
    /// event sequence as one unbounded [`Machine::try_run`].
    pub fn try_run_events(&mut self, budget: u64) -> Result<RunOutcome, SimError> {
        if self.sim_threads > 1 {
            // The parallel engine dispatches the exact same event
            // sequence (see `machine::pdes`); K = 1 keeps the serial
            // loop below byte-for-byte.
            return self.try_run_events_pdes(budget);
        }
        let faults_active = self.cfg.faults.is_active();
        if !self.started {
            self.started = true;
            for &(t, ch) in &self.cfg.faults.ring_channel_failures {
                self.queue.schedule_at(t, Event::RingChannelFail { ch });
            }
            for p in 0..self.procs.len() {
                self.queue.schedule_at(0, Event::Resume(p as ProcId));
            }
        }
        let mut remaining = budget;
        while self.finished != self.procs.len() && remaining > 0 {
            let Some((t, ev)) = self.queue.pop() else { break };
            remaining -= 1;
            self.events_dispatched += 1;
            // Opportunistic sampling: piggyback on the event being
            // popped instead of scheduling sampler events, so the
            // event order (and therefore the simulation) is identical
            // with observation on or off.
            if self.obs.as_ref().is_some_and(|o| t >= o.next_sample_due) {
                self.sample_observer(t);
            }
            if t == self.last_time {
                self.same_time_events += 1;
                if self.same_time_events > STALL_EVENT_LIMIT {
                    return Err(SimError::Stalled {
                        at: t,
                        events: self.events_dispatched,
                    });
                }
            } else {
                self.last_time = t;
                self.same_time_events = 0;
            }
            self.dispatch(ev)?;
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
            if faults_active && self.events_dispatched.is_multiple_of(CONSERVATION_CHECK_PERIOD)
            {
                self.check_page_conservation()?;
            }
        }
        if self.finished != self.procs.len() {
            if remaining == 0 {
                return Ok(RunOutcome::Paused);
            }
            return Err(SimError::Deadlock {
                at: self.queue.now(),
                blocked: self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.done)
                    .map(|(i, p)| (i as u32, format!("{:?}", p.blocked)))
                    .collect(),
            });
        }
        self.check_page_conservation()?;
        Ok(RunOutcome::Done(Box::new(self.collect_metrics())))
    }

    /// Verify that every frame on every node is accounted for: free,
    /// resident, receiving an in-transit page, backing an unfinished
    /// swap-out, or pinned awaiting a ring-loss-proof disk ACK. Any
    /// imbalance means a fault path leaked or double-freed a page.
    fn check_page_conservation(&self) -> Result<(), SimError> {
        let n = self.procs.len();
        let mut in_transit = vec![0u32; n];
        let mut swapping = vec![0u32; n];
        for e in &self.pt {
            match e.state {
                PageState::InTransit { node, .. } => in_transit[node as usize] += 1,
                PageState::SwappingOut { from, .. } => swapping[from as usize] += 1,
                _ => {}
            }
        }
        let mut pinned = vec![0u32; n];
        for &(node, _) in &self.pinned {
            pinned[node as usize] += 1;
        }
        for node in 0..n {
            let fp = &self.frames[node];
            let have = fp.free()
                + fp.resident().len() as u32
                + in_transit[node]
                + swapping[node]
                + pinned[node];
            if have != fp.total() {
                return Err(SimError::PageLost {
                    node: node as u32,
                    detail: format!(
                        "{} frames accounted for of {} (free {}, resident {}, \
                         in-transit {}, swapping {}, pinned {})",
                        have,
                        fp.total(),
                        fp.free(),
                        fp.resident().len(),
                        in_transit[node],
                        swapping[node],
                        pinned[node],
                    ),
                });
            }
        }
        Ok(())
    }

    /// Roll the mesh fault injector for one protected control message
    /// (swap ACK/OK, ring cancel). True when the message arrives.
    pub(crate) fn ctl_msg_delivered(&mut self) -> bool {
        matches!(self.mesh_faults.roll(), MsgFault::Delivered)
    }

    /// The execution time so far (max over processors).
    pub fn exec_time(&self) -> Time {
        self.procs.iter().map(|p| p.local_time).max().unwrap_or(0)
    }

    /// Processors that have finished their streams so far — with
    /// [`Machine::nprocs`], a cheap completion fraction for progress
    /// reporting on long runs.
    pub fn procs_finished(&self) -> usize {
        self.finished
    }

    fn collect_metrics(&self) -> RunMetrics {
        crate::observe::record_completed_run(self.events_dispatched, self.exec_time());
        let exec = self.exec_time();
        let mut combining = Tally::new();
        for d in &self.disks {
            combining.merge(d.combining());
        }
        let l2_hits: u64 = self.procs.iter().map(|p| p.l2.hits()).sum();
        let l2_misses: u64 = self.procs.iter().map(|p| p.l2.misses()).sum();
        RunMetrics {
            app: self.app_name.to_string(),
            machine: match self.cfg.kind {
                MachineKind::Standard => "standard".into(),
                MachineKind::NwCache => "nwcache".into(),
                MachineKind::Dcd => "dcd".into(),
            },
            prefetch: self.policy.label().into(),
            exec_time: exec,
            breakdown: self.procs.iter().map(|p| p.breakdown).collect(),
            swap_out_time: self.m_swap_out_time.clone(),
            swap_out_hist: self.m_swap_out_hist.clone(),
            fault_hist: self.m_fault_hist.clone(),
            ring_occupancy: self.m_ring_occupancy.samples().collect(),
            write_combining: combining,
            ring_hits: self.m_ring_hits,
            ring_misses: self.m_ring_misses,
            fault_latency_disk_hit: self.m_fault_hit.clone(),
            fault_latency_disk_miss: self.m_fault_miss.clone(),
            fault_latency_ring: self.m_fault_ring.clone(),
            page_faults: self.m_page_faults,
            swap_outs: self.m_swap_outs,
            swap_nacks: self.m_swap_nacks,
            shootdowns: self.m_shootdowns,
            mesh_bytes: self.mesh.bytes_carried(),
            mesh_messages: self.mesh.message_count(),
            mesh_utilization: self.mesh.mean_utilization(exec),
            ring_peak_pages: self
                .ring
                .as_ref()
                .map(|r| (0..r.channels()).map(|c| r.peak_occupancy(c)).sum())
                .unwrap_or(0),
            l2_miss_ratio: if l2_hits + l2_misses == 0 {
                0.0
            } else {
                l2_misses as f64 / (l2_hits + l2_misses) as f64
            },
            disk_media_errors: self.disk_faults.iter().map(|f| f.media_errors()).sum(),
            disk_stuck_timeouts: self.disk_faults.iter().map(|f| f.stuck_requests()).sum(),
            mesh_dropped: self.mesh_faults.dropped(),
            mesh_corrupted: self.mesh_faults.corrupted(),
            ring_pages_lost: self.m_ring_pages_lost,
            swap_retries: self.m_swap_retries,
            dead_channels: self.m_dead_channels,
            degraded_ring_swaps: self.m_degraded_ring_swaps,
            disk_read_hits: self.disks.iter().map(|d| d.read_hits()).sum(),
            disk_read_misses: self.disks.iter().map(|d| d.read_misses()).sum(),
            prefetch_spec_issued: self.policy.spec_issued(),
            prefetch_spec_hits: self.disks.iter().map(|d| d.spec_hits()).sum(),
            prefetch_spec_late: self.disks.iter().map(|d| d.spec_late()).sum(),
            prefetch_spec_wasted: self.disks.iter().map(|d| d.spec_wasted()).sum(),
            prefetch_spec_canceled: self.disks.iter().map(|d| d.spec_canceled()).sum(),
            prefetch_inflight_peak: self.policy.inflight_peak(),
        }
    }

    /// Block processor `p` with the given accounting kind, starting at
    /// its current local time.
    pub(crate) fn block_proc(&mut self, p: ProcId, kind: BlockKind) {
        let t = self.procs[p as usize].local_time;
        debug_assert!(self.procs[p as usize].blocked.is_none());
        self.procs[p as usize].blocked = Some((kind, t));
    }

    /// Wake processor `p` at time `t`, charging the blocked interval
    /// to its category, and schedule it to resume.
    pub(crate) fn wake_proc(&mut self, p: ProcId, t: Time) {
        let proc = &mut self.procs[p as usize];
        let (kind, since) = proc.blocked.take().expect("waking a non-blocked proc");
        let t = t.max(since);
        let wait = t - since;
        match kind {
            BlockKind::Fault => proc.breakdown.fault += wait,
            BlockKind::Transit => proc.breakdown.transit += wait,
            BlockKind::NoFree => proc.breakdown.no_free += wait,
            BlockKind::Barrier => proc.breakdown.other += wait,
        }
        proc.local_time = t;
        let at = t.max(self.queue.now());
        self.queue.schedule_at(at, Event::Resume(p));
    }

    /// The inline processor execution loop: consume actions until the
    /// quantum expires, the processor blocks, or the stream ends.
    pub(crate) fn step_proc(&mut self, p: ProcId) {
        let pi = p as usize;
        if self.procs[pi].done {
            return;
        }
        // Never run behind global time.
        let now = self.queue.now();
        if self.procs[pi].local_time < now {
            self.procs[pi].local_time = now;
        }
        // Apply pending shootdown interrupts.
        let intr = std::mem::take(&mut self.procs[pi].pending_interrupt);
        self.procs[pi].local_time += intr;
        self.procs[pi].breakdown.tlb += intr;

        // A PDES replay resumes the quantum the lane opened.
        let start = self.procs[pi]
            .in_quantum
            .take()
            .unwrap_or(self.procs[pi].local_time);
        loop {
            if self.procs[pi].local_time - start > self.cfg.quantum {
                let at = self.procs[pi].local_time;
                self.queue.schedule_at(at, Event::Resume(p));
                return;
            }
            let action = match self.procs[pi].pending.take() {
                Some(a) => a,
                None => match self.procs[pi].stream.next() {
                    Some(a) => {
                        self.procs[pi].consumed += 1;
                        a
                    }
                    None => {
                        self.procs[pi].done = true;
                        self.finished += 1;
                        return;
                    }
                },
            };
            match action {
                Action::Compute(c) => {
                    self.procs[pi].local_time += c as Time;
                    self.procs[pi].breakdown.other += c as Time;
                }
                Action::Barrier(id) => {
                    let t = self.procs[pi].local_time;
                    match self.barrier.arrive(p, id, t) {
                        None => {
                            self.block_proc(p, BlockKind::Barrier);
                            return;
                        }
                        Some(arrivals) => {
                            let release = arrivals.iter().map(|&(_, t)| t).max().unwrap();
                            for (q, _) in arrivals {
                                if q == p {
                                    self.procs[pi].breakdown.other += release - t;
                                    self.procs[pi].local_time = release;
                                } else {
                                    self.wake_proc(q, release);
                                }
                            }
                        }
                    }
                }
                Action::Read(line) => {
                    if !self.do_access(p, line, false, action) {
                        return;
                    }
                }
                Action::Write(line) => {
                    if !self.do_access(p, line, true, action) {
                        return;
                    }
                }
            }
        }
    }

    /// Perform one memory access inline; returns `false` when the
    /// processor blocked (the action is saved for retry).
    fn do_access(&mut self, p: ProcId, line: u64, is_write: bool, action: Action) -> bool {
        match self.access(p, line, is_write) {
            Ok((lat, tlb_lat)) => {
                let proc = &mut self.procs[p as usize];
                proc.local_time += lat;
                proc.breakdown.other += lat - tlb_lat;
                proc.breakdown.tlb += tlb_lat;
                true
            }
            Err(()) => {
                self.procs[p as usize].pending = Some(action);
                false
            }
        }
    }

    /// The node hosting processor `p` (one processor per node).
    pub(crate) fn node_of(&self, p: ProcId) -> u32 {
        p
    }

    /// The virtual page containing cache line `line`.
    pub(crate) fn page_of(&self, line: u64) -> Vpn {
        line / (self.cfg.page_bytes / nw_memhier::LINE_BYTES)
    }

    /// The optical ring `vpn`'s swap-outs ride: pages (or 32-page
    /// regions, matching the parallel-FS disk striping) are sharded
    /// round-robin over the fabric. Always ring 0 on the single-ring
    /// paper machine.
    pub(crate) fn ring_of_page(&self, vpn: Vpn) -> usize {
        match self.cfg.ring_shard {
            RingShard::Page => (vpn % self.cfg.ring_count as u64) as usize,
            RingShard::Region => ((vpn / 32) % self.cfg.ring_count as u64) as usize,
        }
    }

    /// Global cache-channel id for `node`'s channel on `vpn`'s ring
    /// (`gc = ring * ring_channels + node`; equal to `node` on the
    /// paper machine, keeping all existing encodings bit-identical).
    pub(crate) fn ring_channel_of(&self, node: u32, vpn: Vpn) -> u32 {
        (self.ring_of_page(vpn) * self.cfg.ring_channels) as u32 + node
    }

    /// The node owning global cache channel `gc`.
    pub(crate) fn channel_node(&self, gc: u32) -> u32 {
        gc % self.cfg.ring_channels as u32
    }

    /// Debug invariant: per-node frame accounting is conserved.
    /// Exercised by the machine tests after quiescence.
    #[cfg(test)]
    pub(crate) fn check_frame_invariant(&self, node: u32) {
        let fp = &self.frames[node as usize];
        let in_transit = self
            .pt
            .iter()
            .filter(|e| matches!(e.state, PageState::InTransit { node: n, .. } if n == node))
            .count() as u32;
        let swapping = self
            .pt
            .iter()
            .filter(|e| matches!(e.state, PageState::SwappingOut { from, .. } if from == node))
            .count() as u32;
        let pinned = self.pinned.iter().filter(|&&(n, _)| n == node).count() as u32;
        assert_eq!(
            fp.free() + fp.resident().len() as u32 + in_transit + swapping + pinned,
            fp.total(),
            "frame leak on node {node}"
        );
    }
}

impl Machine {
    /// Diagnostic run: like [`Machine::run`] but dumps protocol state
    /// instead of panicking on deadlock. For debugging only.
    pub fn debug_run(&mut self) {
        for p in 0..self.procs.len() {
            self.queue.schedule_at(0, Event::Resume(p as ProcId));
        }
        while let Some((_, ev)) = self.queue.pop() {
            if let Err(e) = self.dispatch(ev) {
                println!("SIM ERROR: {e}");
                break;
            }
            if self.finished == self.procs.len() {
                println!("finished ok");
                return;
            }
        }
        println!("DEADLOCK");
        for (i, p) in self.procs.iter().enumerate() {
            println!("proc {i}: done={} blocked={:?} pending={:?}", p.done, p.blocked, p.pending);
        }
        for (k, v) in &self.swap_start {
            println!("swap in flight: node={} vpn={} since={}", k.0, k.1, v);
            println!("  state: {:?}", self.pt[k.1 as usize].state);
        }
        for (i, d) in self.disks.iter().enumerate() {
            println!("disk {i}: nackq={} pending_dirty={} acks={} nacks={}",
                d.nack_queue_len(), d.has_pending_dirty(), d.write_acks(), d.write_nacks());
        }
        for (vpn, e) in self.pt.iter().enumerate() {
            if !matches!(e.state, crate::vm::PageState::OnDisk | crate::vm::PageState::InMemory{..}) {
                println!("page {vpn}: {:?}", e.state);
            }
        }
    }
}
