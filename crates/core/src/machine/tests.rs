//! Unit tests for the machine model: protocol liveness, metric
//! plausibility and standard-vs-NWCache behaviour on small inputs.

use super::*;
use crate::config::{MachineConfig, MachineKind, PrefetchMode};
use nw_apps::AppId;

const SCALE: f64 = 0.08;

fn run(kind: MachineKind, prefetch: PrefetchMode, app: AppId) -> crate::RunMetrics {
    let cfg = MachineConfig::scaled_paper(kind, prefetch, SCALE);
    crate::run_app(&cfg, app)
}

#[test]
fn every_app_completes_on_every_machine() {
    for app in AppId::ALL {
        for kind in [MachineKind::Standard, MachineKind::NwCache] {
            for pf in [PrefetchMode::Optimal, PrefetchMode::Naive] {
                let m = run(kind, pf, app);
                assert!(m.exec_time > 0, "{app:?} {kind:?} {pf:?}");
                assert_eq!(m.breakdown.len(), 8);
            }
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    let a = crate::run_app(&cfg, AppId::Sor);
    let b = crate::run_app(&cfg, AppId::Sor);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.page_faults, b.page_faults);
    assert_eq!(a.swap_outs, b.swap_outs);
    assert_eq!(a.mesh_bytes, b.mesh_bytes);
    assert_eq!(a.ring_hits, b.ring_hits);
}

#[test]
fn out_of_core_apps_swap() {
    // The scaled configuration keeps data larger than memory, so dirty
    // pages must be swapped out.
    for app in [AppId::Sor, AppId::Gauss, AppId::Radix] {
        let m = run(MachineKind::Standard, PrefetchMode::Naive, app);
        assert!(m.swap_outs > 0, "{app:?} never swapped");
        assert!(m.page_faults > 100, "{app:?} faulted only {}", m.page_faults);
    }
}

#[test]
fn nwcache_swap_outs_are_much_faster() {
    // Paper Tables 3/4: one to three orders of magnitude.
    for pf in [PrefetchMode::Optimal, PrefetchMode::Naive] {
        let std = run(MachineKind::Standard, pf, AppId::Sor);
        let nwc = run(MachineKind::NwCache, pf, AppId::Sor);
        assert!(
            nwc.swap_out_time.mean() * 5.0 < std.swap_out_time.mean(),
            "{pf:?}: nwc {} vs std {}",
            nwc.swap_out_time.mean(),
            std.swap_out_time.mean()
        );
    }
}

#[test]
fn nwcache_never_beaten_badly_overall() {
    // Paper: NWCache wins almost everywhere (FFT/naive may lose a few
    // percent). Check it is never more than 10% slower.
    for app in [AppId::Sor, AppId::Mg] {
        for pf in [PrefetchMode::Optimal, PrefetchMode::Naive] {
            let std = run(MachineKind::Standard, pf, app);
            let nwc = run(MachineKind::NwCache, pf, app);
            let imp = nwc.improvement_over(&std);
            assert!(imp > -10.0, "{app:?} {pf:?}: improvement {imp:.1}%");
        }
    }
}

#[test]
fn ring_hits_only_on_nwcache_machine() {
    let std = run(MachineKind::Standard, PrefetchMode::Optimal, AppId::Gauss);
    assert_eq!(std.ring_hits, 0);
    let nwc = run(MachineKind::NwCache, PrefetchMode::Optimal, AppId::Gauss);
    assert!(nwc.ring_hits > 0, "gauss should hit the victim cache");
}

#[test]
fn swap_traffic_leaves_the_mesh_with_nwcache() {
    // Swap-outs cross the mesh on the standard machine but use the
    // ring on the NWCache machine, so per-swap mesh bytes must drop.
    let std = run(MachineKind::Standard, PrefetchMode::Optimal, AppId::Sor);
    let nwc = run(MachineKind::NwCache, PrefetchMode::Optimal, AppId::Sor);
    assert!(std.swap_outs > 0 && nwc.swap_outs > 0);
    let std_per_fault = std.mesh_bytes as f64 / std.page_faults.max(1) as f64;
    let nwc_per_fault = nwc.mesh_bytes as f64 / nwc.page_faults.max(1) as f64;
    assert!(
        nwc_per_fault < std_per_fault,
        "nwc {nwc_per_fault:.0} B/fault vs std {std_per_fault:.0}"
    );
}

#[test]
fn breakdown_accounts_for_execution_time() {
    // Each processor's category sum must be close to its local time
    // (within the shootdown-shift tolerance).
    let cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, SCALE);
    let mut machine = Machine::new(cfg, AppId::Sor);
    let m = machine.run();
    for (i, b) in m.breakdown.iter().enumerate() {
        let total = b.total();
        let local = machine.procs[i].local_time;
        let diff = total.abs_diff(local);
        assert!(
            diff as f64 <= 0.02 * local as f64 + 1000.0,
            "proc {i}: breakdown {total} vs local {local}"
        );
    }
}

#[test]
fn shootdowns_happen_when_pages_are_replaced() {
    let m = run(MachineKind::Standard, PrefetchMode::Naive, AppId::Gauss);
    assert!(m.shootdowns > 0);
}

#[test]
fn fault_latency_tallies_cover_all_faults() {
    let m = run(MachineKind::NwCache, PrefetchMode::Naive, AppId::Sor);
    let tallied = m.fault_latency_disk_hit.count()
        + m.fault_latency_disk_miss.count()
        + m.fault_latency_ring.count();
    assert_eq!(tallied, m.page_faults);
    assert_eq!(m.ring_hits, m.fault_latency_ring.count());
}

#[test]
fn optimal_prefetching_removes_disk_miss_faults() {
    let m = run(MachineKind::Standard, PrefetchMode::Optimal, AppId::Sor);
    assert_eq!(
        m.fault_latency_disk_miss.count(),
        0,
        "optimal prefetching must serve all reads from the cache"
    );
}

#[test]
fn naive_prefetching_has_both_hits_and_misses() {
    let m = run(MachineKind::Standard, PrefetchMode::Naive, AppId::Sor);
    assert!(m.fault_latency_disk_miss.count() > 0);
    assert!(m.fault_latency_disk_hit.count() > 0);
}

#[test]
fn ring_is_bounded_by_capacity() {
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Optimal, SCALE);
    let cap = cfg.ring_channels * cfg.ring_slots_per_channel;
    let mut machine = Machine::new(cfg, AppId::Gauss);
    let m = machine.run();
    assert!(
        m.ring_peak_pages <= cap,
        "peak {} beyond capacity {cap}",
        m.ring_peak_pages
    );
}

#[test]
fn frame_accounting_conserved_at_end() {
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    let mut machine = Machine::new(cfg, AppId::Sor);
    machine.run();
    for node in 0..machine.nprocs() as u32 {
        let fp = &machine.frames[node as usize];
        assert!(fp.free() + fp.resident().len() as u32 <= fp.total());
        machine.check_frame_invariant(node);
    }
}

#[test]
fn larger_disk_cache_helps_standard_machine() {
    let mut small = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Optimal, SCALE);
    small.disk_cache_pages = 4;
    let mut big = small.clone();
    big.disk_cache_pages = 64;
    let m_small = crate::run_app(&small, AppId::Sor);
    let m_big = crate::run_app(&big, AppId::Sor);
    assert!(
        m_big.exec_time < m_small.exec_time,
        "big cache {} vs small {}",
        m_big.exec_time,
        m_small.exec_time
    );
}

#[test]
fn exec_time_is_max_of_processors() {
    let cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, SCALE);
    let mut machine = Machine::new(cfg, AppId::Mg);
    let m = machine.run();
    let max_local = machine.procs.iter().map(|p| p.local_time).max().unwrap();
    assert_eq!(m.exec_time, max_local);
}

