//! The synchronous memory-access path: TLB, caches, write buffer and
//! the directory-coherent memory transaction.
//!
//! Everything here resolves against resource timestamps without event
//! round-trips; only page faults (handled in `fault.rs`) block the
//! processor.

use super::{BlockKind, Machine};
use crate::observe::groups;
use crate::vm::{PageState, ProcId};
use nw_memhier::{Line, LookupResult, WbOutcome};
use nw_sim::Time;

impl Machine {
    /// Execute one load/store for processor `p`. Returns
    /// `(total latency, TLB portion)` to charge, or `Err(())` if the
    /// processor blocked (page fault, transit wait, frame shortage,
    /// swap wait).
    pub(crate) fn access(
        &mut self,
        p: ProcId,
        line: Line,
        is_write: bool,
    ) -> Result<(Time, Time), ()> {
        let vpn = self.page_of(line);
        debug_assert!(vpn < self.npages, "access beyond footprint");
        let now = self.procs[p as usize].local_time;

        // 1. Address translation.
        let mut lat: Time = 0;
        let mut tlb_lat: Time = 0;
        let tlb_hit = self.procs[p as usize].tlb.lookup(vpn);
        if !tlb_hit {
            tlb_lat = self.cfg.tlb_miss_latency;
            lat += tlb_lat;
        }

        // 2. Page-table walk / fault check.
        let home = match self.pt[vpn as usize].state {
            PageState::InMemory { node } => node,
            PageState::InTransit { .. } => {
                if let PageState::InTransit { waiters, .. } =
                    &mut self.pt[vpn as usize].state
                {
                    waiters.push(p);
                }
                self.block_proc(p, BlockKind::Transit);
                return Err(());
            }
            PageState::SwappingOut { .. } => {
                if let PageState::SwappingOut { waiters, .. } =
                    &mut self.pt[vpn as usize].state
                {
                    waiters.push(p);
                }
                self.block_proc(p, BlockKind::Fault);
                return Err(());
            }
            PageState::OnDisk => {
                self.fault_from_disk(p, vpn);
                return Err(());
            }
            PageState::OnRing { channel } => {
                self.fault_from_ring(p, vpn, channel);
                return Err(());
            }
        };
        if !tlb_hit {
            self.procs[p as usize].tlb.insert(vpn);
        }
        let entry = &mut self.pt[vpn as usize];
        entry.last_access = now;
        entry.referenced = true;
        entry.last_node = home;
        if is_write {
            entry.dirty = true;
        }

        // 3. Cache hierarchy.
        let n = self.node_of(p);
        let t_access = now + lat;
        let was_dirty_l1 = self.procs[p as usize].l1.is_dirty(line);
        match self.procs[p as usize].l1.access(line, is_write) {
            LookupResult::Hit => {
                lat += self.cfg.l1_latency;
                if is_write && !was_dirty_l1 {
                    self.write_upgrade(n, line, home, t_access);
                }
            }
            LookupResult::Miss => {
                let was_dirty_l2 = self.procs[p as usize].l2.is_dirty(line);
                match self.procs[p as usize].l2.access(line, is_write) {
                    LookupResult::Hit => {
                        lat += self.cfg.l1_latency + self.cfg.l2_latency;
                        if is_write && !was_dirty_l2 {
                            self.write_upgrade(n, line, home, t_access);
                        }
                        self.fill_l1(p, line, is_write);
                    }
                    LookupResult::Miss => {
                        let mem_lat = self.mem_transaction(p, line, is_write, home, t_access);
                        // Reads stall for the data; writes retire into
                        // the write buffer (release consistency).
                        if is_write {
                            lat += self.cfg.l1_latency;
                            lat += self.wb_insert(p, line);
                        } else {
                            lat += mem_lat;
                        }
                        self.fill_l2(p, line, is_write);
                        self.fill_l1(p, line, is_write);
                    }
                }
            }
        }
        Ok((lat, tlb_lat))
    }

    /// Insert a store into the write buffer, returning stall cycles.
    fn wb_insert(&mut self, p: ProcId, line: Line) -> Time {
        match self.procs[p as usize].wb.insert(line) {
            WbOutcome::Coalesced | WbOutcome::Queued => {
                // Background drain: oldest entry retires with the
                // transaction just issued.
                if self.procs[p as usize].wb.len() > self.cfg.wb_entries / 2 {
                    self.procs[p as usize].wb.drain_one();
                }
                0
            }
            WbOutcome::Full => {
                // Stall long enough to drain the head entry.
                self.procs[p as usize].wb.drain_one();
                self.procs[p as usize]
                    .wb
                    .insert(line);
                20
            }
        }
    }

    /// Fill `line` into `p`'s L1, handling the victim.
    fn fill_l1(&mut self, p: ProcId, line: Line, is_write: bool) {
        if let Some(victim) = self.procs[p as usize].l1.fill(line, is_write) {
            if victim.dirty {
                // L1 victim merges into L2 if present; otherwise the
                // line's dirtiness lives on in L2's copy or is lost to
                // memory (charged nowhere: tiny).
                self.procs[p as usize].l2.mark_dirty(victim.line);
            }
        }
    }

    /// Fill `line` into `p`'s L2, handling victim writeback and
    /// directory bookkeeping.
    fn fill_l2(&mut self, p: ProcId, line: Line, is_write: bool) {
        let n = self.node_of(p);
        if let Some(victim) = self.procs[p as usize].l2.fill(line, is_write) {
            self.dir.evict(victim.line, n);
            self.procs[p as usize].l1.invalidate(victim.line);
            if victim.dirty {
                let t = self.procs[p as usize].local_time;
                self.writeback(n, victim.line, t);
            }
        }
    }

    /// Charge the background writeback of a dirty line evicted from
    /// node `n`'s cache (not on the processor's critical path).
    pub(crate) fn writeback(&mut self, n: u32, line: Line, t: Time) {
        let vpn = self.page_of(line);
        let home = match self.pt[vpn as usize].state {
            PageState::InMemory { node } => node,
            // Page already gone from memory: the purge path handled it.
            _ => return,
        };
        if home != n {
            let d = self.mesh_send(
                t,
                n,
                home,
                nw_memhier::LINE_BYTES + self.cfg.ctl_msg_bytes,
                "mesh.line",
            );
            self.mem_bus[home as usize].transfer(d.arrival, nw_memhier::LINE_BYTES);
        } else {
            self.mem_bus[n as usize].transfer(t, nw_memhier::LINE_BYTES);
        }
    }

    /// A write hit on a non-exclusive line: directory upgrade. Under
    /// release consistency the invalidations are off the critical
    /// path, so no latency is returned; traffic is still charged.
    fn write_upgrade(&mut self, n: u32, line: Line, home: u32, t: Time) {
        let out = self.dir.write(line, n);
        self.obs_instant(t, groups::DIR, 0, "dir.upgrade", line, out.invalidate as u64);
        self.apply_invalidations(n, line, home, out.invalidate, t);
        if let Some(owner) = out.fetch_from {
            // Previous owner forwards its modified copy.
            let d = self.mesh_send(t, home, owner, self.cfg.ctl_msg_bytes, "mesh.ctl");
            self.procs[owner as usize].l1.invalidate(line);
            self.procs[owner as usize].l2.invalidate(line);
            self.mesh_send(
                d.arrival,
                owner,
                n,
                nw_memhier::LINE_BYTES + self.cfg.ctl_msg_bytes,
                "mesh.line",
            );
        }
    }

    /// Send invalidations to every sharer in `mask` and drop their
    /// cached copies. Past 32 nodes a mask bit covers a whole group of
    /// `granularity` nodes (DASH coarse vector): every member gets an
    /// invalidation — the coarse scheme's overhead, modeled as traffic.
    ///
    /// Deliberately allocation-free: the sharer set is walked as a
    /// bitmask (`trailing_zeros` + clear-lowest-bit), never
    /// materialized as a list — the same zero-allocation contract the
    /// page-purge path meets with the machine's scratch buffer.
    fn apply_invalidations(&mut self, n: u32, line: Line, home: u32, mask: u32, t: Time) {
        let g = self.dir.granularity();
        let nodes = self.cfg.nodes;
        let mut m = mask;
        while m != 0 {
            let group = m.trailing_zeros();
            m &= m - 1;
            for s in (group * g)..((group + 1) * g).min(nodes) {
                if s == n {
                    continue;
                }
                self.mesh_send(t, home, s, self.cfg.ctl_msg_bytes, "mesh.ctl");
                self.procs[s as usize].l1.invalidate(line);
                self.procs[s as usize].l2.invalidate(line);
            }
        }
    }

    /// A full L2-miss memory transaction; returns the latency seen by
    /// a blocking load (writes use the write buffer instead).
    fn mem_transaction(
        &mut self,
        p: ProcId,
        line: Line,
        is_write: bool,
        home: u32,
        t: Time,
    ) -> Time {
        let n = self.node_of(p);
        let line_bytes = nw_memhier::LINE_BYTES;
        let reply_bytes = line_bytes + self.cfg.ctl_msg_bytes;

        // Reach the directory at the home node.
        let t_dir = if home == n {
            t + self.cfg.dir_latency
        } else {
            let d = self.mesh_send(t, n, home, self.cfg.ctl_msg_bytes, "mesh.ctl");
            d.arrival + self.cfg.dir_latency
        };

        let (data_from_owner, invalidate_mask) = if is_write {
            let out = self.dir.write(line, n);
            (out.fetch_from, out.invalidate)
        } else {
            match self.dir.read(line, n) {
                nw_memhier::ReadOutcome::FromOwner { owner } => (Some(owner), 0),
                _ => (None, 0),
            }
        };
        self.obs_instant(
            t_dir,
            groups::DIR,
            0,
            if is_write { "dir.write" } else { "dir.read" },
            line,
            home as u64,
        );
        self.apply_invalidations(n, line, home, invalidate_mask, t_dir);

        let t_data = match data_from_owner {
            Some(owner) if owner != n => {
                // Forward to the dirty owner; it supplies the data and
                // writes back to home memory in the background.
                self.procs[owner as usize].l1.clean(line);
                self.procs[owner as usize].l2.clean(line);
                if is_write {
                    self.procs[owner as usize].l1.invalidate(line);
                    self.procs[owner as usize].l2.invalidate(line);
                }
                let fwd = self.mesh_send(t_dir, home, owner, self.cfg.ctl_msg_bytes, "mesh.ctl");
                let g = self.mem_bus[owner as usize].transfer(fwd.arrival, line_bytes);
                let back = self.mesh_send(g.end, owner, n, reply_bytes, "mesh.line");
                // Background sharing writeback to home memory.
                self.mem_bus[home as usize].transfer(back.start, line_bytes);
                back.arrival
            }
            _ => {
                // Data comes from home memory.
                let g = self.mem_bus[home as usize].transfer(t_dir, line_bytes);
                let t_mem = g.end + self.cfg.mem_latency;
                if home == n {
                    t_mem
                } else {
                    self.mesh_send(t_mem, home, n, reply_bytes, "mesh.line").arrival
                }
            }
        };
        t_data.saturating_sub(t)
    }
}
