//! Directed tests: hand-built action streams drive specific paths of
//! the memory hierarchy and VM system, with analytically checkable
//! timing. Unlike the application-level tests these pin *individual*
//! mechanisms (TLB costs, cache hits, write buffering, barrier skew,
//! transit waits).

#![cfg(test)]

use super::Machine;
use crate::config::{MachineConfig, MachineKind, PrefetchMode};
use nw_apps::{Action, ActionStream, AppBuild};

/// Build a machine with one stream per node from explicit action
/// vectors. Footprint must cover all touched lines.
fn machine_with(cfg: MachineConfig, data_bytes: u64, streams: Vec<Vec<Action>>) -> Machine {
    let build = AppBuild {
        name: "directed",
        data_bytes,
        streams: streams
            .into_iter()
            .map(|v| Box::new(v.into_iter()) as ActionStream)
            .collect(),
        node_private: false,
    };
    Machine::from_build(cfg, build)
}

fn one_node_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Optimal);
    cfg.nodes = 1;
    cfg.io_nodes = 1;
    cfg.ring_channels = 1;
    cfg
}

fn idle_streams(n: usize) -> Vec<Vec<Action>> {
    (0..n).map(|_| Vec::new()).collect()
}

#[test]
fn pure_compute_costs_exactly_its_cycles() {
    let cfg = one_node_cfg();
    let mut m = machine_with(cfg, 4096, vec![vec![Action::Compute(12_345)]]);
    let r = m.run();
    assert_eq!(r.exec_time, 12_345);
    assert_eq!(r.breakdown[0].other, 12_345);
    assert_eq!(r.page_faults, 0);
}

#[test]
fn first_touch_faults_then_hits() {
    let cfg = one_node_cfg();
    // Two reads of the same line: one fault + one TLB-visible hit.
    let mut m = machine_with(
        cfg,
        4096,
        vec![vec![Action::Read(0), Action::Read(0), Action::Read(0)]],
    );
    let r = m.run();
    assert_eq!(r.page_faults, 1);
    // After the fault retry: miss into L2/memory, then L1 hits.
    assert!(r.breakdown[0].fault > 0);
    let b = &r.breakdown[0];
    assert!(b.tlb >= 100, "TLB miss cost missing: {}", b.tlb);
}

#[test]
fn l1_hits_cost_one_cycle() {
    let cfg = one_node_cfg();
    // 1000 repeat reads after warm-up: ~1 cycle each.
    let mut actions = vec![Action::Read(0)];
    actions.extend(std::iter::repeat_n(Action::Read(0), 1000));
    let mut m = machine_with(cfg.clone(), 4096, vec![actions]);
    let r = m.run();
    let warm = {
        let mut m2 = machine_with(cfg, 4096, vec![vec![Action::Read(0)]]);
        m2.run().exec_time
    };
    let per_hit = (r.exec_time - warm) as f64 / 1000.0;
    assert!(
        (0.9..2.0).contains(&per_hit),
        "L1 hit costs {per_hit:.2} cycles"
    );
}

#[test]
fn writes_are_cheaper_than_reads_on_miss() {
    // Release consistency: write misses retire into the write buffer.
    let cfg = one_node_cfg();
    let lines: Vec<u64> = (0..64).collect(); // one resident page
    let warm: Vec<Action> = lines.iter().map(|&l| Action::Read(l)).collect();

    // Cold L2: read every line of a second page vs write every line.
    let read_run = {
        let mut acts = warm.clone();
        acts.extend((64..128).map(Action::Read));
        let mut m = machine_with(one_node_cfg(), 8192, vec![acts]);
        m.run()
    };
    let write_run = {
        let mut acts = warm;
        acts.extend((64..128).map(Action::Write));
        let mut m = machine_with(cfg, 8192, vec![acts]);
        m.run()
    };
    assert!(
        write_run.exec_time < read_run.exec_time,
        "writes {} !< reads {}",
        write_run.exec_time,
        read_run.exec_time
    );
}

#[test]
fn barrier_waits_charge_other() {
    let mut cfg = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Optimal);
    cfg.nodes = 2;
    cfg.io_nodes = 1;
    // Proc 0 computes 100K cycles; proc 1 arrives at the barrier
    // immediately and waits.
    let mut m = machine_with(
        cfg,
        4096,
        vec![
            vec![Action::Compute(100_000), Action::Barrier(0)],
            vec![Action::Barrier(0)],
        ],
    );
    let r = m.run();
    assert_eq!(r.exec_time, 100_000);
    // Proc 1's wait lands in Other (sync time).
    assert!(
        r.breakdown[1].other >= 99_000,
        "barrier wait not charged: {:?}",
        r.breakdown[1]
    );
}

#[test]
fn transit_wait_charged_to_second_faulter() {
    let mut cfg = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
    cfg.nodes = 2;
    cfg.io_nodes = 1;
    // Both procs read the same cold page at once: one faults, the
    // other waits in Transit.
    let mut m = machine_with(
        cfg,
        4096,
        vec![vec![Action::Read(0)], vec![Action::Read(1)]],
    );
    let r = m.run();
    assert_eq!(r.page_faults, 1, "same page must fault once");
    let transit_total: u64 = r.breakdown.iter().map(|b| b.transit).sum();
    let fault_total: u64 = r.breakdown.iter().map(|b| b.fault).sum();
    assert!(fault_total > 0);
    assert!(
        transit_total > 0,
        "second reader should wait in Transit: {:?}",
        r.breakdown
    );
}

#[test]
fn remote_read_costs_more_than_local() {
    let mut cfg = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Optimal);
    cfg.nodes = 2;
    cfg.io_nodes = 1;
    // Proc 0 faults the page in (it becomes node 0's). After a
    // barrier, proc 1 reads a line of it remotely; proc 0 reads
    // another line locally. Lines are distinct to avoid coherence
    // effects; both are L2 misses.
    let local = {
        let mut m = machine_with(
            cfg.clone(),
            4096,
            vec![
                vec![
                    Action::Read(0),
                    Action::Barrier(0),
                    Action::Compute(10),
                    Action::Read(1),
                ],
                vec![Action::Barrier(0)],
            ],
        );
        let r = m.run();
        r.breakdown[0].other
    };
    let remote = {
        let mut m = machine_with(
            cfg,
            4096,
            vec![
                vec![Action::Read(0), Action::Barrier(0)],
                vec![Action::Barrier(0), Action::Compute(10), Action::Read(2)],
            ],
        );
        let r = m.run();
        r.breakdown[1].other
    };
    assert!(
        remote > local,
        "remote read ({remote}) should cost more than local ({local})"
    );
}

#[test]
fn eviction_fires_shootdown_on_sharers() {
    // Small memory: proc 0 streams enough pages to evict the shared
    // one; proc 1 holds its translation and gets interrupted.
    let mut cfg = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Optimal);
    cfg.nodes = 2;
    cfg.io_nodes = 1;
    cfg.memory_per_node = 8 * 4096; // 8 frames
    cfg.min_free_frames = 2;
    let stream0: Vec<Action> = (0..32)
        .map(|p| Action::Read(p * 64))
        .chain(std::iter::once(Action::Barrier(0)))
        .collect();
    let stream1 = vec![Action::Read(0), Action::Barrier(0)];
    let mut m = machine_with(cfg, 32 * 4096, vec![stream0, stream1]);
    let r = m.run();
    assert!(r.shootdowns > 0, "streaming must evict and shoot down");
}

#[test]
fn dirty_eviction_swaps_clean_eviction_does_not() {
    let mut cfg = one_node_cfg();
    cfg.memory_per_node = 8 * 4096;
    cfg.min_free_frames = 2;
    cfg.prefetch = PrefetchMode::Optimal;
    // Stream 32 pages read-only: no swap-outs.
    let reads: Vec<Action> = (0..32).map(|p| Action::Read(p * 64)).collect();
    let mut m = machine_with(cfg.clone(), 32 * 4096, vec![reads]);
    let r = m.run();
    assert_eq!(r.swap_outs, 0, "clean pages must not swap");
    // Stream 32 pages written: swap-outs happen.
    let writes: Vec<Action> = (0..32).map(|p| Action::Write(p * 64)).collect();
    let mut m = machine_with(cfg, 32 * 4096, vec![writes]);
    let r = m.run();
    assert!(r.swap_outs > 0, "dirty pages must swap");
}

#[test]
fn dcd_machine_logs_swapped_pages() {
    let mut cfg = one_node_cfg();
    cfg.kind = crate::config::MachineKind::Dcd;
    cfg.memory_per_node = 8 * 4096;
    cfg.min_free_frames = 2;
    let writes: Vec<Action> = (0..32).map(|p| Action::Write(p * 64)).collect();
    let mut m = machine_with(cfg, 32 * 4096, vec![writes]);
    let r = m.run();
    assert!(r.swap_outs > 0);
    // The DCD log disk received the flushed pages.
    let logged: usize = m.disks.iter().map(|d| {
        d.log_disk().map(|l| l.logged_pages() + l.destages() as usize).unwrap_or(0)
    }).sum();
    assert!(logged > 0, "no pages reached the log disk");
}

#[test]
fn fifo_and_lru_pick_different_victims() {
    // Access pattern: bring in pages 0..8, re-touch page 0 heavily,
    // then stream more pages. LRU protects page 0; FIFO evicts it
    // first (it is the oldest arrival).
    let mk = |policy| {
        let mut cfg = one_node_cfg();
        cfg.replacement = policy;
        cfg.memory_per_node = 8 * 4096;
        cfg.min_free_frames = 2;
        cfg.prefetch = PrefetchMode::Optimal;
        let mut acts: Vec<Action> = (0..8).map(|p| Action::Read(p * 64)).collect();
        acts.extend(std::iter::repeat_n(Action::Read(0), 50));
        acts.extend((8..20).map(|p| Action::Read(p * 64)));
        acts.push(Action::Read(0)); // does page 0 need a re-fault?
        let mut m = machine_with(cfg, 20 * 4096, vec![acts]);
        m.run().page_faults
    };
    let lru_faults = mk(crate::config::ReplacementPolicy::Lru);
    let fifo_faults = mk(crate::config::ReplacementPolicy::Fifo);
    assert!(
        fifo_faults >= lru_faults,
        "FIFO ({fifo_faults}) should re-fault at least as much as LRU ({lru_faults})"
    );
}

#[test]
fn window_prefetcher_stays_ahead_of_sequential_reader() {
    // Sequential page reads with compute gaps: the window prefetcher
    // turns most faults into controller-cache hits.
    let mk = |pf| {
        let mut cfg = one_node_cfg();
        cfg.prefetch = pf;
        cfg.memory_per_node = 64 * 4096;
        let acts: Vec<Action> = (0..48)
            .flat_map(|p| [Action::Read(p * 64), Action::Compute(2_000_000)])
            .collect();
        let mut m = machine_with(cfg, 48 * 4096, vec![acts]);
        m.run()
    };
    let naive = mk(PrefetchMode::Naive);
    let window = mk(PrefetchMode::Window);
    assert!(
        window.fault_latency_disk_hit.count() > naive.fault_latency_disk_hit.count(),
        "window hits {} !> naive hits {}",
        window.fault_latency_disk_hit.count(),
        naive.fault_latency_disk_hit.count()
    );
    assert!(window.exec_time <= naive.exec_time);
}

#[test]
fn idle_nodes_are_fine() {
    let mut cfg = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
    cfg.nodes = 4;
    cfg.io_nodes = 2;
    cfg.ring_channels = 4;
    let mut streams = idle_streams(4);
    streams[2] = vec![Action::Compute(500), Action::Read(0)];
    let mut m = machine_with(cfg, 4096, streams);
    let r = m.run();
    assert!(r.exec_time >= 500);
    assert_eq!(r.page_faults, 1);
}
