//! Machine snapshot/restore.
//!
//! [`Machine::ckpt_save`] serializes every piece of dynamic simulation
//! state — engine, processors, memory hierarchy, disks, ring, mesh, VM
//! and metric accumulators — as a sequence of framed `nwckpt-v1`
//! sections (see [`crate::checkpoint`] for the file container).
//! [`Machine::ckpt_restore`] overlays such a snapshot onto a machine
//! freshly built from the same configuration and workload; the pair
//! round-trips the simulation exactly, so a restored run dispatches
//! the same event sequence bit-for-bit as an uninterrupted one.
//!
//! What is deliberately *not* serialized:
//!
//! * configuration and geometry — the restore target is built from the
//!   checkpoint's config section, so structure is already right;
//! * action streams — pure functions of the workload build; each
//!   processor records only how many actions it consumed and restore
//!   fast-forwards the rebuilt stream;
//! * the observer — re-attached (if globally configured) at build
//!   time; observation never feeds back into simulation state;
//! * `fatal` — always `None` at a checkpoint boundary (a fatal error
//!   aborts the run before it can be checkpointed).

use super::{BlockKind, Event, FaultInfo, FaultSource, Machine};
use crate::checkpoint::sections;
use crate::vm::{PageState, Vpn};
use nw_apps::Action;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};

fn save_event(w: &mut CkptWriter, ev: &Event) {
    match *ev {
        Event::Resume(p) => {
            w.u32(0);
            w.u32(p);
        }
        Event::DiskRequest { disk, vpn } => {
            w.u32(1);
            w.u32(disk);
            w.u64(vpn);
        }
        Event::DiskReadReady { disk, vpn } => {
            w.u32(2);
            w.u32(disk);
            w.u64(vpn);
        }
        Event::PageArrive { vpn } => {
            w.u32(3);
            w.u64(vpn);
        }
        Event::SwapWriteArrive { disk, vpn, from } => {
            w.u32(4);
            w.u32(disk);
            w.u64(vpn);
            w.u32(from);
        }
        Event::SwapAck { node, vpn } => {
            w.u32(5);
            w.u32(node);
            w.u64(vpn);
        }
        Event::SwapOk { node, vpn, disk } => {
            w.u32(6);
            w.u32(node);
            w.u64(vpn);
            w.u32(disk);
        }
        Event::FlushCheck { disk } => {
            w.u32(7);
            w.u32(disk);
        }
        Event::NackRecheck { disk } => {
            w.u32(8);
            w.u32(disk);
        }
        Event::RingInsertDone { node, vpn } => {
            w.u32(9);
            w.u32(node);
            w.u64(vpn);
        }
        Event::IfaceEnqueue { disk, ch, vpn } => {
            w.u32(10);
            w.u32(disk);
            w.u32(ch);
            w.u64(vpn);
        }
        Event::DrainCheck { disk } => {
            w.u32(11);
            w.u32(disk);
        }
        Event::DrainCopied {
            disk,
            ch,
            vpn,
            origin,
        } => {
            w.u32(12);
            w.u32(disk);
            w.u32(ch);
            w.u64(vpn);
            w.u32(origin);
        }
        Event::RingAck { origin, ch, vpn } => {
            w.u32(13);
            w.u32(origin);
            w.u32(ch);
            w.u64(vpn);
        }
        Event::CancelMsg { disk, ch, vpn } => {
            w.u32(14);
            w.u32(disk);
            w.u32(ch);
            w.u64(vpn);
        }
        Event::RingChannelFail { ch } => {
            w.u32(15);
            w.u32(ch);
        }
        Event::SwapTimeout { node, vpn, attempt } => {
            w.u32(16);
            w.u32(node);
            w.u64(vpn);
            w.u32(attempt);
        }
        Event::SpecHint { disk, vpn, node } => {
            w.u32(17);
            w.u32(disk);
            w.u64(vpn);
            w.u32(node);
        }
        Event::SpecCheck { disk } => {
            w.u32(18);
            w.u32(disk);
        }
    }
}

fn load_event(r: &mut CkptReader<'_>) -> Result<Event, CkptError> {
    Ok(match r.u32()? {
        0 => Event::Resume(r.u32()?),
        1 => Event::DiskRequest {
            disk: r.u32()?,
            vpn: r.u64()?,
        },
        2 => Event::DiskReadReady {
            disk: r.u32()?,
            vpn: r.u64()?,
        },
        3 => Event::PageArrive { vpn: r.u64()? },
        4 => Event::SwapWriteArrive {
            disk: r.u32()?,
            vpn: r.u64()?,
            from: r.u32()?,
        },
        5 => Event::SwapAck {
            node: r.u32()?,
            vpn: r.u64()?,
        },
        6 => Event::SwapOk {
            node: r.u32()?,
            vpn: r.u64()?,
            disk: r.u32()?,
        },
        7 => Event::FlushCheck { disk: r.u32()? },
        8 => Event::NackRecheck { disk: r.u32()? },
        9 => Event::RingInsertDone {
            node: r.u32()?,
            vpn: r.u64()?,
        },
        10 => Event::IfaceEnqueue {
            disk: r.u32()?,
            ch: r.u32()?,
            vpn: r.u64()?,
        },
        11 => Event::DrainCheck { disk: r.u32()? },
        12 => Event::DrainCopied {
            disk: r.u32()?,
            ch: r.u32()?,
            vpn: r.u64()?,
            origin: r.u32()?,
        },
        13 => Event::RingAck {
            origin: r.u32()?,
            ch: r.u32()?,
            vpn: r.u64()?,
        },
        14 => Event::CancelMsg {
            disk: r.u32()?,
            ch: r.u32()?,
            vpn: r.u64()?,
        },
        15 => Event::RingChannelFail { ch: r.u32()? },
        16 => Event::SwapTimeout {
            node: r.u32()?,
            vpn: r.u64()?,
            attempt: r.u32()?,
        },
        17 => Event::SpecHint {
            disk: r.u32()?,
            vpn: r.u64()?,
            node: r.u32()?,
        },
        18 => Event::SpecCheck { disk: r.u32()? },
        tag => {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("unknown event tag {tag}"),
            })
        }
    })
}

fn save_action(w: &mut CkptWriter, a: &Action) {
    match *a {
        Action::Compute(c) => {
            w.u32(0);
            w.u32(c);
        }
        Action::Read(line) => {
            w.u32(1);
            w.u64(line);
        }
        Action::Write(line) => {
            w.u32(2);
            w.u64(line);
        }
        Action::Barrier(id) => {
            w.u32(3);
            w.u32(id);
        }
    }
}

fn load_action(r: &mut CkptReader<'_>) -> Result<Action, CkptError> {
    Ok(match r.u32()? {
        0 => Action::Compute(r.u32()?),
        1 => Action::Read(r.u64()?),
        2 => Action::Write(r.u64()?),
        3 => Action::Barrier(r.u32()?),
        tag => {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("unknown action tag {tag}"),
            })
        }
    })
}

fn save_page_state(w: &mut CkptWriter, s: &PageState) {
    match s {
        PageState::OnDisk => w.u32(0),
        PageState::InMemory { node } => {
            w.u32(1);
            w.u32(*node);
        }
        PageState::InTransit { node, waiters } => {
            w.u32(2);
            w.u32(*node);
            w.usize(waiters.len());
            for &p in waiters {
                w.u32(p);
            }
        }
        PageState::SwappingOut { from, waiters } => {
            w.u32(3);
            w.u32(*from);
            w.usize(waiters.len());
            for &p in waiters {
                w.u32(p);
            }
        }
        PageState::OnRing { channel } => {
            w.u32(4);
            w.u32(*channel);
        }
    }
}

fn load_page_state(r: &mut CkptReader<'_>) -> Result<PageState, CkptError> {
    Ok(match r.u32()? {
        0 => PageState::OnDisk,
        1 => PageState::InMemory { node: r.u32()? },
        2 => {
            let node = r.u32()?;
            let n = r.usize()?;
            let mut waiters = Vec::with_capacity(n);
            for _ in 0..n {
                waiters.push(r.u32()?);
            }
            PageState::InTransit { node, waiters }
        }
        3 => {
            let from = r.u32()?;
            let n = r.usize()?;
            let mut waiters = Vec::with_capacity(n);
            for _ in 0..n {
                waiters.push(r.u32()?);
            }
            PageState::SwappingOut { from, waiters }
        }
        4 => PageState::OnRing { channel: r.u32()? },
        tag => {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("unknown page-state tag {tag}"),
            })
        }
    })
}

fn block_kind_tag(k: BlockKind) -> u32 {
    match k {
        BlockKind::Fault => 0,
        BlockKind::Transit => 1,
        BlockKind::NoFree => 2,
        BlockKind::Barrier => 3,
    }
}

fn block_kind_from(tag: u32, offset: usize) -> Result<BlockKind, CkptError> {
    Ok(match tag {
        0 => BlockKind::Fault,
        1 => BlockKind::Transit,
        2 => BlockKind::NoFree,
        3 => BlockKind::Barrier,
        _ => {
            return Err(CkptError::Invalid {
                offset,
                what: format!("unknown block-kind tag {tag}"),
            })
        }
    })
}

fn fault_source_tag(s: FaultSource) -> u32 {
    match s {
        FaultSource::DiskCacheHit => 0,
        FaultSource::DiskCacheMiss => 1,
        FaultSource::Ring => 2,
    }
}

fn fault_source_from(tag: u32, offset: usize) -> Result<FaultSource, CkptError> {
    Ok(match tag {
        0 => FaultSource::DiskCacheHit,
        1 => FaultSource::DiskCacheMiss,
        2 => FaultSource::Ring,
        _ => {
            return Err(CkptError::Invalid {
                offset,
                what: format!("unknown fault-source tag {tag}"),
            })
        }
    })
}

fn mismatch(r: &CkptReader<'_>, what: String) -> CkptError {
    CkptError::Invalid {
        offset: r.offset(),
        what,
    }
}

impl Machine {
    /// Serialize every piece of dynamic simulation state as framed
    /// sections (ENGINE through TRACER). The caller owns the container
    /// (magic, META/CONFIG sections, checksum) — see
    /// [`crate::checkpoint::machine_to_bytes`].
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        // ENGINE: queue counters + pending events + run-loop state.
        w.begin_section(sections::ENGINE);
        let (now, seq, cursor, scheduled, delivered) = self.queue.ckpt_counters();
        w.time(now);
        w.u64(seq);
        w.u64(cursor);
        w.u64(scheduled);
        w.u64(delivered);
        let entries = self.queue.ckpt_entries();
        w.usize(entries.len());
        for (at, eseq, ev) in entries {
            w.time(at);
            w.u64(eseq);
            save_event(w, ev);
        }
        w.bool(self.started);
        w.u64(self.events_dispatched);
        w.time(self.last_time);
        w.u64(self.same_time_events);
        w.end_section();

        // PROCS: per-processor stream position and execution state.
        w.begin_section(sections::PROCS);
        w.usize(self.procs.len());
        for p in &self.procs {
            w.u64(p.consumed);
            match &p.pending {
                None => w.bool(false),
                Some(a) => {
                    w.bool(true);
                    save_action(w, a);
                }
            }
            p.tlb.ckpt_save(w);
            p.l1.ckpt_save(w);
            p.l2.ckpt_save(w);
            p.wb.ckpt_save(w);
            w.time(p.local_time);
            p.breakdown.ckpt_save(w);
            w.time(p.pending_interrupt);
            match p.blocked {
                None => w.bool(false),
                Some((kind, since)) => {
                    w.bool(true);
                    w.u32(block_kind_tag(kind));
                    w.time(since);
                }
            }
            w.bool(p.done);
        }
        w.usize(self.finished);
        w.end_section();

        // MEMHIER: buses and the coherence directory.
        w.begin_section(sections::MEMHIER);
        w.usize(self.mem_bus.len());
        for b in &self.mem_bus {
            b.ckpt_save(w);
        }
        w.usize(self.io_bus.len());
        for b in &self.io_bus {
            b.ckpt_save(w);
        }
        self.dir.ckpt_save(w);
        w.end_section();

        // DISKS: controllers, drain receivers, fault injectors.
        w.begin_section(sections::DISKS);
        w.usize(self.disks.len());
        for d in &self.disks {
            d.ckpt_save(w);
        }
        w.usize(self.drain_busy_until.len());
        for &t in &self.drain_busy_until {
            w.time(t);
        }
        w.usize(self.disk_faults.len());
        for f in &self.disk_faults {
            f.ckpt_save(w);
        }
        w.end_section();

        // RING: optical ring (when present) and NWCache interfaces.
        w.begin_section(sections::RING);
        match &self.ring {
            None => w.bool(false),
            Some(ring) => {
                w.bool(true);
                ring.ckpt_save(w);
            }
        }
        w.usize(self.ifaces.len());
        for i in &self.ifaces {
            i.ckpt_save(w);
        }
        w.end_section();

        // MESH: link horizons, traffic tallies, fault injector.
        w.begin_section(sections::MESH);
        self.mesh.ckpt_save(w);
        self.mesh_faults.ckpt_save(w);
        w.end_section();

        // VM: page table, frame pools, barrier, protocol maps.
        w.begin_section(sections::VM);
        w.u64(self.npages);
        for e in &self.pt {
            save_page_state(w, &e.state);
            w.bool(e.dirty);
            w.time(e.last_access);
            w.time(e.arrived_at);
            w.bool(e.referenced);
            w.u32(e.last_node);
        }
        w.usize(self.frames.len());
        for fp in &self.frames {
            fp.ckpt_save(w);
        }
        self.barrier.ckpt_save(w);
        w.usize(self.pending_ring_swaps.len());
        for q in &self.pending_ring_swaps {
            w.usize(q.len());
            for &vpn in q {
                w.u64(vpn);
            }
        }
        // Hash-based maps dump in sorted key order for canonical
        // checkpoint bytes (lookups are by key; iteration order is
        // never observable).
        let mut swap_start: Vec<_> = self.swap_start.iter().map(|(&k, &v)| (k, v)).collect();
        swap_start.sort_unstable_by_key(|&(k, _)| k);
        w.usize(swap_start.len());
        for ((node, vpn), t) in swap_start {
            w.u32(node);
            w.u64(vpn);
            w.time(t);
        }
        let mut fault_info: Vec<_> = self
            .fault_info
            .iter()
            .map(|(&vpn, fi)| (vpn, fi.start, fi.source))
            .collect();
        fault_info.sort_unstable_by_key(|&(vpn, _, _)| vpn);
        w.usize(fault_info.len());
        for (vpn, start, source) in fault_info {
            w.u64(vpn);
            w.time(start);
            w.u32(fault_source_tag(source));
        }
        let mut pinned: Vec<_> = self.pinned.iter().copied().collect();
        pinned.sort_unstable();
        w.usize(pinned.len());
        for (node, vpn) in pinned {
            w.u32(node);
            w.u64(vpn);
        }
        let mut disk_retry: Vec<_> = self.disk_retry.iter().map(|(&k, &v)| (k, v)).collect();
        disk_retry.sort_unstable_by_key(|&(k, _)| k);
        w.usize(disk_retry.len());
        for (vpn, attempts) in disk_retry {
            w.u64(vpn);
            w.u32(attempts);
        }
        let mut swap_attempts: Vec<_> =
            self.swap_attempts.iter().map(|(&k, &v)| (k, v)).collect();
        swap_attempts.sort_unstable_by_key(|&(k, _)| k);
        w.usize(swap_attempts.len());
        for ((node, vpn), attempts) in swap_attempts {
            w.u32(node);
            w.u64(vpn);
            w.u32(attempts);
        }
        w.end_section();

        // METRICS: the accumulators `collect_metrics` reads.
        w.begin_section(sections::METRICS);
        self.m_swap_out_time.ckpt_save(w);
        self.m_swap_out_hist.ckpt_save(w);
        self.m_fault_hist.ckpt_save(w);
        self.m_ring_occupancy.ckpt_save(w);
        self.m_fault_hit.ckpt_save(w);
        self.m_fault_miss.ckpt_save(w);
        self.m_fault_ring.ckpt_save(w);
        w.u64(self.m_ring_hits);
        w.u64(self.m_ring_misses);
        w.u64(self.m_page_faults);
        w.u64(self.m_swap_outs);
        w.u64(self.m_swap_nacks);
        w.u64(self.m_shootdowns);
        w.u64(self.m_ring_pages_lost);
        w.u64(self.m_swap_retries);
        w.u64(self.m_degraded_ring_swaps);
        w.u64(self.m_dead_channels);
        w.end_section();

        // TRACER: watched pages and collected lifecycle records.
        w.begin_section(sections::TRACER);
        self.tracer.ckpt_save(w);
        w.end_section();

        // PREFETCH: policy-side speculative state (adaptive only).
        // Stateless policies write no section at all, keeping their
        // checkpoint bytes identical to what they were before the
        // policy layer existed.
        if self.policy.has_ckpt_state() {
            w.begin_section(sections::PREFETCH);
            self.policy.ckpt_save(w);
            w.end_section();
        }
    }

    /// Overlay a snapshot written by [`Machine::ckpt_save`] onto a
    /// machine freshly built from the same configuration and workload.
    pub(crate) fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        // ENGINE
        r.begin_section(sections::ENGINE)?;
        let now = r.time()?;
        let seq = r.u64()?;
        let cursor = r.u64()?;
        let scheduled = r.u64()?;
        let delivered = r.u64()?;
        let n = r.usize()?;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let at = r.time()?;
            let eseq = r.u64()?;
            let ev = load_event(r)?;
            entries.push((at, eseq, ev));
        }
        self.queue
            .ckpt_restore((now, seq, cursor, scheduled, delivered), entries);
        self.started = r.bool()?;
        self.events_dispatched = r.u64()?;
        self.last_time = r.time()?;
        self.same_time_events = r.u64()?;
        r.end_section()?;

        // PROCS
        r.begin_section(sections::PROCS)?;
        let n = r.usize()?;
        if n != self.procs.len() {
            return Err(mismatch(
                r,
                format!("checkpoint has {n} procs, machine has {}", self.procs.len()),
            ));
        }
        for pi in 0..n {
            let consumed = r.u64()?;
            for k in 0..consumed {
                if self.procs[pi].stream.next().is_none() {
                    return Err(mismatch(
                        r,
                        format!(
                            "proc {pi}: stream ended after {k} actions, \
                             checkpoint consumed {consumed} — wrong workload?"
                        ),
                    ));
                }
            }
            self.procs[pi].consumed = consumed;
            self.procs[pi].pending = if r.bool()? {
                Some(load_action(r)?)
            } else {
                None
            };
            self.procs[pi].tlb.ckpt_restore(r)?;
            self.procs[pi].l1.ckpt_restore(r)?;
            self.procs[pi].l2.ckpt_restore(r)?;
            self.procs[pi].wb.ckpt_restore(r)?;
            self.procs[pi].local_time = r.time()?;
            self.procs[pi].breakdown.ckpt_restore(r)?;
            self.procs[pi].pending_interrupt = r.time()?;
            self.procs[pi].blocked = if r.bool()? {
                let tag = r.u32()?;
                let kind = block_kind_from(tag, r.offset())?;
                let since = r.time()?;
                Some((kind, since))
            } else {
                None
            };
            self.procs[pi].done = r.bool()?;
        }
        self.finished = r.usize()?;
        r.end_section()?;

        // MEMHIER
        r.begin_section(sections::MEMHIER)?;
        let n = r.usize()?;
        if n != self.mem_bus.len() {
            return Err(mismatch(r, format!("{n} memory buses, expected {}", self.mem_bus.len())));
        }
        for b in &mut self.mem_bus {
            b.ckpt_restore(r)?;
        }
        let n = r.usize()?;
        if n != self.io_bus.len() {
            return Err(mismatch(r, format!("{n} I/O buses, expected {}", self.io_bus.len())));
        }
        for b in &mut self.io_bus {
            b.ckpt_restore(r)?;
        }
        self.dir.ckpt_restore(r)?;
        r.end_section()?;

        // DISKS
        r.begin_section(sections::DISKS)?;
        let n = r.usize()?;
        if n != self.disks.len() {
            return Err(mismatch(r, format!("{n} disks, expected {}", self.disks.len())));
        }
        for d in &mut self.disks {
            d.ckpt_restore(r)?;
        }
        let n = r.usize()?;
        if n != self.drain_busy_until.len() {
            return Err(mismatch(
                r,
                format!("{n} drain receivers, expected {}", self.drain_busy_until.len()),
            ));
        }
        for t in &mut self.drain_busy_until {
            *t = r.time()?;
        }
        let n = r.usize()?;
        if n != self.disk_faults.len() {
            return Err(mismatch(
                r,
                format!("{n} disk fault injectors, expected {}", self.disk_faults.len()),
            ));
        }
        for f in &mut self.disk_faults {
            f.ckpt_restore(r)?;
        }
        r.end_section()?;

        // RING
        r.begin_section(sections::RING)?;
        let has_ring = r.bool()?;
        match (&mut self.ring, has_ring) {
            (Some(ring), true) => ring.ckpt_restore(r)?,
            (None, false) => {}
            (have, want) => {
                let have = have.is_some();
                return Err(mismatch(
                    r,
                    format!("checkpoint ring presence {want}, machine has {have}"),
                ));
            }
        }
        let n = r.usize()?;
        if n != self.ifaces.len() {
            return Err(mismatch(r, format!("{n} interfaces, expected {}", self.ifaces.len())));
        }
        for i in &mut self.ifaces {
            i.ckpt_restore(r)?;
        }
        r.end_section()?;

        // MESH
        r.begin_section(sections::MESH)?;
        self.mesh.ckpt_restore(r)?;
        self.mesh_faults.ckpt_restore(r)?;
        r.end_section()?;

        // VM
        r.begin_section(sections::VM)?;
        let npages = r.u64()?;
        if npages != self.npages {
            return Err(mismatch(r, format!("{npages} pages, expected {}", self.npages)));
        }
        for e in &mut self.pt {
            e.state = load_page_state(r)?;
            e.dirty = r.bool()?;
            e.last_access = r.time()?;
            e.arrived_at = r.time()?;
            e.referenced = r.bool()?;
            e.last_node = r.u32()?;
        }
        let n = r.usize()?;
        if n != self.frames.len() {
            return Err(mismatch(r, format!("{n} frame pools, expected {}", self.frames.len())));
        }
        for fp in &mut self.frames {
            fp.ckpt_restore(r)?;
        }
        self.barrier.ckpt_restore(r)?;
        let n = r.usize()?;
        if n != self.pending_ring_swaps.len() {
            return Err(mismatch(
                r,
                format!("{n} ring-swap queues, expected {}", self.pending_ring_swaps.len()),
            ));
        }
        for q in &mut self.pending_ring_swaps {
            let len = r.usize()?;
            q.clear();
            for _ in 0..len {
                q.push_back(r.u64()?);
            }
        }
        let n = r.usize()?;
        self.swap_start.clear();
        for _ in 0..n {
            let node = r.u32()?;
            let vpn = r.u64()?;
            let t = r.time()?;
            self.swap_start.insert((node, vpn), t);
        }
        let n = r.usize()?;
        self.fault_info.clear();
        for _ in 0..n {
            let vpn: Vpn = r.u64()?;
            let start = r.time()?;
            let tag = r.u32()?;
            let source = fault_source_from(tag, r.offset())?;
            self.fault_info.insert(vpn, FaultInfo { start, source });
        }
        let n = r.usize()?;
        self.pinned.clear();
        for _ in 0..n {
            let node = r.u32()?;
            let vpn = r.u64()?;
            self.pinned.insert((node, vpn));
        }
        let n = r.usize()?;
        self.disk_retry.clear();
        for _ in 0..n {
            let vpn = r.u64()?;
            let attempts = r.u32()?;
            self.disk_retry.insert(vpn, attempts);
        }
        let n = r.usize()?;
        self.swap_attempts.clear();
        for _ in 0..n {
            let node = r.u32()?;
            let vpn = r.u64()?;
            let attempts = r.u32()?;
            self.swap_attempts.insert((node, vpn), attempts);
        }
        r.end_section()?;

        // METRICS
        r.begin_section(sections::METRICS)?;
        self.m_swap_out_time.ckpt_restore(r)?;
        self.m_swap_out_hist.ckpt_restore(r)?;
        self.m_fault_hist.ckpt_restore(r)?;
        self.m_ring_occupancy.ckpt_restore(r)?;
        self.m_fault_hit.ckpt_restore(r)?;
        self.m_fault_miss.ckpt_restore(r)?;
        self.m_fault_ring.ckpt_restore(r)?;
        self.m_ring_hits = r.u64()?;
        self.m_ring_misses = r.u64()?;
        self.m_page_faults = r.u64()?;
        self.m_swap_outs = r.u64()?;
        self.m_swap_nacks = r.u64()?;
        self.m_shootdowns = r.u64()?;
        self.m_ring_pages_lost = r.u64()?;
        self.m_swap_retries = r.u64()?;
        self.m_degraded_ring_swaps = r.u64()?;
        self.m_dead_channels = r.u64()?;
        r.end_section()?;

        // TRACER
        r.begin_section(sections::TRACER)?;
        self.tracer.ckpt_restore(r)?;
        r.end_section()?;

        // PREFETCH (present iff the policy carries state)
        if self.policy.has_ckpt_state() {
            r.begin_section(sections::PREFETCH)?;
            self.policy.ckpt_restore(r)?;
            r.end_section()?;
        }

        Ok(())
    }
}
