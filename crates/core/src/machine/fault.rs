//! Page faults, frame allocation, LRU replacement, TLB shootdown and
//! swap-out initiation.

use super::{BlockKind, FaultInfo, FaultSource, Machine};
use crate::config::MachineKind;
use crate::error::SimError;
use crate::observe::groups;
use crate::vm::{PageState, ProcId, Vpn};
use nw_sim::Time;

impl Machine {
    /// Fault on a page that is only on disk. Allocates a frame (which
    /// may block the processor on `NoFree`), then launches the page
    /// request toward the responsible disk.
    pub(crate) fn fault_from_disk(&mut self, p: ProcId, vpn: Vpn) {
        let n = self.node_of(p);
        let now = self.procs[p as usize].local_time;
        if !self.try_alloc_frame(n, now, p) {
            return; // blocked NoFree; access will be retried
        }
        self.m_page_faults += 1;
        self.m_ring_misses += 1;
        debug_assert!(
            !self.fault_info.contains_key(&vpn),
            "fault started for page {vpn} with a fault already in flight"
        );
        self.pt[vpn as usize].state = PageState::InTransit {
            node: n,
            waiters: vec![p],
        };
        self.block_proc(p, BlockKind::Fault);
        self.fault_info.insert(
            vpn,
            FaultInfo {
                start: now,
                source: FaultSource::DiskCacheMiss, // refined at the disk
            },
        );
        self.trace(now, vpn, crate::trace::TraceKind::FaultToDisk { proc: p });
        self.obs_instant(now, groups::VM, n, "vm.fault.disk", vpn, p as u64);
        let disk = self.fs.disk_of(vpn);
        let io = self.disk_homes[disk as usize];
        let d = self.mesh_send(now, n, io, self.cfg.ctl_msg_bytes, "mesh.ctl");
        self.queue
            .schedule_at(d.arrival, super::Event::DiskRequest { disk, vpn });
        self.maybe_speculate(n, vpn, now);
    }

    /// Adaptive-prefetch hook, called on every disk-bound fault: feed
    /// the node's detector, retract hints its fresh predictions no
    /// longer cover (demand misses shift the window, so a collision
    /// with an unpredicted page naturally cancels the stale lookahead),
    /// and issue new bounded speculative hints over the mesh. A no-op
    /// (no RNG rolls, no traffic) for the non-speculating policies.
    pub(crate) fn maybe_speculate(&mut self, node: u32, vpn: Vpn, now: Time) {
        if !self.policy.speculates() {
            return;
        }
        self.policy.observe_fault(node, vpn);
        let mut preds = std::mem::take(&mut self.scratch_pred);
        self.policy.predict(node, &mut preds);
        // Cancel queued hints that fell out of the prediction set. The
        // faulting page itself is never stale: its demand read is en
        // route to the controller and will consume the speculative
        // fill (the late-hit path) — retracting it here would throw
        // away exactly the work the hint existed to do.
        let mut stale = std::mem::take(&mut self.scratch_hints);
        self.policy.outstanding_for(node, &mut stale);
        for &old in &stale {
            if old != vpn
                && !preds.contains(&old)
                && self.disks[self.fs.disk_of(old) as usize].spec_cancel(old)
            {
                self.policy.on_resolved(old);
            }
        }
        stale.clear();
        self.scratch_hints = stale;
        // Issue hints for fresh, useful predictions within the cap.
        for &pred in &preds {
            if self.policy.inflight(node) >= self.policy.cap() {
                break;
            }
            if pred >= self.npages
                || self.pt[pred as usize].state != PageState::OnDisk
                || self.policy.is_outstanding(pred)
            {
                continue;
            }
            let disk = self.fs.disk_of(pred);
            let dc = &self.disks[disk as usize];
            if dc.cache_contains(pred) || dc.spec_tracks(pred) {
                continue;
            }
            self.policy.commit(node, pred);
            let io = self.disk_homes[disk as usize];
            // The hint is a control message and shares the protected
            // mesh paths' fault model: bandwidth is spent either way,
            // a dropped hint simply never reaches the controller.
            let d = self.mesh_send(now, node, io, self.cfg.ctl_msg_bytes, "mesh.ctl");
            if self.ctl_msg_delivered() {
                self.queue.schedule_at(
                    d.arrival,
                    super::Event::SpecHint {
                        disk,
                        vpn: pred,
                        node,
                    },
                );
            } else {
                self.policy.on_resolved(pred);
            }
        }
        preds.clear();
        self.scratch_pred = preds;
    }

    /// Fault on a page whose Ring bit is set: victim read straight off
    /// the optical ring (NWCache machine only).
    pub(crate) fn fault_from_ring(&mut self, p: ProcId, vpn: Vpn, channel: u32) {
        debug_assert!(self.cfg.has_ring());
        let n = self.node_of(p);
        let now = self.procs[p as usize].local_time;
        if !self.try_alloc_frame(n, now, p) {
            return;
        }
        self.m_page_faults += 1;
        self.m_ring_hits += 1;
        self.pt[vpn as usize].state = PageState::InTransit {
            node: n,
            waiters: vec![p],
        };
        self.block_proc(p, BlockKind::Fault);
        self.fault_info.insert(
            vpn,
            FaultInfo {
                start: now,
                source: FaultSource::Ring,
            },
        );
        self.trace(now, vpn, crate::trace::TraceKind::FaultToRing { proc: p, channel });
        self.obs_instant(now, groups::VM, n, "vm.fault.ring", vpn, p as u64);
        // Snoop the page off the channel with the node's own tunable
        // receiver, then deliver through the local I/O and memory bus
        // only — no interconnect transfer (the contention benefit).
        let ring = self.ring.as_mut().expect("ring faults require a ring");
        let Some(ready) = ring.snoop_ready(now, channel as usize, vpn) else {
            self.fatal = Some(SimError::ProtocolViolation {
                at: now,
                what: format!("Ring bit set but page {vpn} absent from channel {channel}"),
            });
            return;
        };
        self.obs_span(now, ready, groups::RING, channel, "ring.snoop", vpn, n as u64);
        let g = self.io_bus[n as usize].transfer(ready, self.cfg.page_bytes);
        let g2 = self.mem_bus[n as usize].transfer(g.end, self.cfg.page_bytes);
        self.queue
            .schedule_at(g2.end, super::Event::PageArrive { vpn });
        let disk = self.fs.disk_of(vpn);
        let io = self.disk_homes[disk as usize];
        // Under optimal prefetching the prefetch engine was already
        // streaming this page toward memory; the ring hit "usually
        // cannot abort the transfer through the network and the I/O
        // node bus in time" (paper par. 5, Contention), so the disk,
        // I/O-bus and mesh bandwidth is spent even though the fault is
        // served from the ring.
        if self.policy.background_on_ring_hit() {
            self.disks[disk as usize].background_read(now);
            let bg = self.io_bus[io as usize].transfer(now, self.cfg.page_bytes);
            self.mesh_send(bg.end, io, n, self.cfg.page_bytes, "mesh.page");
        }
        // Notify the responsible I/O node so the page is not also
        // written to disk; the interface will ACK the original swapper.
        // A lost cancel is safe: the drain finds the record's page no
        // longer on the ring and sends the authoritative ACK itself.
        let d = self.mesh_send(now, n, io, self.cfg.ctl_msg_bytes, "mesh.ctl");
        if self.ctl_msg_delivered() {
            self.queue.schedule_at(
                d.arrival,
                super::Event::CancelMsg {
                    disk,
                    ch: channel,
                    vpn,
                },
            );
        }
    }

    /// Try to take a frame on `node` for a fault by processor `p`.
    /// On failure the processor is blocked on `NoFree` and queued.
    pub(crate) fn try_alloc_frame(&mut self, node: u32, now: Time, p: ProcId) -> bool {
        if self.frames[node as usize].take() {
            self.maybe_replenish(node, now);
            return true;
        }
        // Replenishing may free frames synchronously (clean victims).
        self.maybe_replenish(node, now);
        if self.frames[node as usize].take() {
            return true;
        }
        self.frames[node as usize].waiters.push(p);
        self.block_proc(p, BlockKind::NoFree);
        false
    }

    /// Keep the node's free-frame count at the configured minimum by
    /// starting evictions of the least recently used resident pages.
    pub(crate) fn maybe_replenish(&mut self, node: u32, now: Time) {
        loop {
            let fp = &self.frames[node as usize];
            if fp.free() + fp.pending_evictions() >= self.cfg.min_free_frames {
                return;
            }
            let Some(victim) = self.pick_victim(node) else {
                return; // nothing evictable right now
            };
            self.evict_page(node, victim, now);
        }
    }

    /// Choose the replacement victim on `node` per the configured
    /// policy. Returns `None` when nothing is evictable.
    pub(crate) fn pick_victim(&mut self, node: u32) -> Option<Vpn> {
        use crate::config::ReplacementPolicy::*;
        let fp = &self.frames[node as usize];
        match self.cfg.replacement {
            Lru => fp
                .resident()
                .iter()
                .copied()
                .min_by_key(|&v| self.pt[v as usize].last_access),
            Fifo => fp
                .resident()
                .iter()
                .copied()
                .min_by_key(|&v| self.pt[v as usize].arrived_at),
            Clock => {
                // Second chance in arrival order: skip-and-clear
                // referenced pages; fall back to the oldest.
                let mut order: Vec<Vpn> = fp.resident().to_vec();
                order.sort_by_key(|&v| self.pt[v as usize].arrived_at);
                let chosen = order
                    .iter()
                    .copied()
                    .find(|&v| !self.pt[v as usize].referenced);
                for &v in &order {
                    self.pt[v as usize].referenced = false;
                    if Some(v) == chosen {
                        break;
                    }
                }
                chosen.or_else(|| order.first().copied())
            }
        }
    }

    /// Downgrade and evict `vpn` from `node`'s memory: TLB shootdown,
    /// cache/directory purge, then either free the frame (clean) or
    /// start a swap-out (dirty).
    pub(crate) fn evict_page(&mut self, node: u32, vpn: Vpn, now: Time) {
        debug_assert!(matches!(
            self.pt[vpn as usize].state,
            PageState::InMemory { node: h } if h == node
        ));
        self.frames[node as usize].remove_resident(vpn);
        self.shootdown(node, vpn);
        self.purge_page_from_caches(node, vpn, now);
        self.trace(
            now,
            vpn,
            crate::trace::TraceKind::Evicted {
                node,
                dirty: self.pt[vpn as usize].dirty,
            },
        );
        self.obs_instant(
            now,
            groups::VM,
            node,
            "vm.evict",
            vpn,
            self.pt[vpn as usize].dirty as u64,
        );

        if self.pt[vpn as usize].dirty {
            self.pt[vpn as usize].state = PageState::SwappingOut {
                from: node,
                waiters: Vec::new(),
            };
            self.pt[vpn as usize].dirty = false;
            self.frames[node as usize].eviction_started();
            self.m_swap_outs += 1;
            self.swap_start.insert((node, vpn), now);
            match self.cfg.kind {
                MachineKind::Standard | MachineKind::Dcd => {
                    self.start_std_swap(node, vpn, now)
                }
                MachineKind::NwCache => self.start_ring_swap(node, vpn, now),
            }
        } else {
            self.pt[vpn as usize].state = PageState::OnDisk;
            self.frames[node as usize].release();
            self.wake_frame_waiter(node, now);
        }
    }

    /// TLB shootdown for `vpn`: the initiator (the processor on
    /// `node`) pays the shootdown latency; every other processor with
    /// a cached translation pays an interrupt.
    fn shootdown(&mut self, node: u32, vpn: Vpn) {
        self.m_shootdowns += 1;
        let initiator = node as usize;
        self.procs[initiator].tlb.invalidate(vpn);
        self.procs[initiator].pending_interrupt += self.cfg.tlb_shootdown_latency;
        for q in 0..self.procs.len() {
            if q == initiator {
                continue;
            }
            if self.procs[q].tlb.invalidate(vpn) {
                self.procs[q].pending_interrupt += self.cfg.interrupt_latency;
            }
        }
    }

    /// Invalidate every cached line of `vpn` machine-wide (the
    /// access-rights downgrade) and charge writebacks of dirty lines
    /// to the evicting node's memory bus.
    fn purge_page_from_caches(&mut self, node: u32, vpn: Vpn, now: Time) {
        // Reuse the machine-lifetime scratch buffer (taken, not
        // borrowed, because the loop body mutates `self`); the purge
        // path runs on every eviction and must not allocate.
        let mut purged = std::mem::take(&mut self.scratch_purge);
        self.dir.purge_page_into(vpn, &mut purged);
        let mut dirty_lines: u64 = 0;
        // Each sharer bit covers a group of `g` consecutive nodes
        // (g == 1 on machines up to 32 nodes: exactly the set bits).
        let g = self.dir.granularity();
        let nodes = self.cfg.nodes;
        for &(line, mask) in &purged {
            let mut m = mask;
            while m != 0 {
                let group = m.trailing_zeros();
                m &= m - 1;
                for s in ((group * g) as usize)..(((group + 1) * g).min(nodes) as usize) {
                    let d1 = self.procs[s].l1.invalidate(line).unwrap_or(false);
                    let d2 = self.procs[s].l2.invalidate(line).unwrap_or(false);
                    if d1 || d2 {
                        dirty_lines += 1;
                        if s as u32 != node {
                            // Modified data travels to the holding
                            // node's memory over the mesh (background
                            // traffic).
                            self.mesh_send(
                                now,
                                s as u32,
                                node,
                                nw_memhier::LINE_BYTES + self.cfg.ctl_msg_bytes,
                                "mesh.line",
                            );
                        }
                    }
                }
            }
        }
        if dirty_lines > 0 {
            self.mem_bus[node as usize].transfer(now, dirty_lines * nw_memhier::LINE_BYTES);
        }
        self.scratch_purge = purged;
    }

    /// Wake the processor stalled for a frame on `node`, if any.
    pub(crate) fn wake_frame_waiter(&mut self, node: u32, t: Time) {
        if self.frames[node as usize].free() == 0 {
            return;
        }
        if let Some(&p) = self.frames[node as usize].waiters.first() {
            self.frames[node as usize].waiters.remove(0);
            self.wake_proc(p, t);
        }
    }

    /// A faulted page's data is fully in its destination memory.
    pub(crate) fn on_page_arrive(&mut self, vpn: Vpn) -> Result<(), SimError> {
        let t = self.queue.now();
        if !matches!(self.pt[vpn as usize].state, PageState::InTransit { .. }) {
            return Err(SimError::ProtocolViolation {
                at: t,
                what: format!(
                    "PageArrive for page {vpn} in state {:?}",
                    self.pt[vpn as usize].state
                ),
            });
        }
        let (node, waiters) = match std::mem::replace(
            &mut self.pt[vpn as usize].state,
            PageState::OnDisk,
        ) {
            PageState::InTransit { node, waiters } => (node, waiters),
            _ => unreachable!("checked above"),
        };
        self.pt[vpn as usize].state = PageState::InMemory { node };
        self.pt[vpn as usize].last_access = t;
        self.pt[vpn as usize].arrived_at = t;
        self.pt[vpn as usize].referenced = true;
        self.pt[vpn as usize].last_node = node;
        self.frames[node as usize].add_resident(vpn);
        self.trace(t, vpn, crate::trace::TraceKind::Arrived { node });
        if let Some(info) = self.fault_info.remove(&vpn) {
            let lat = t - info.start;
            self.m_fault_hist.add(lat);
            let name = match info.source {
                FaultSource::DiskCacheHit => "vm.fault.disk_hit",
                FaultSource::DiskCacheMiss => "vm.fault.disk_miss",
                FaultSource::Ring => "vm.fault.ring_hit",
            };
            self.obs_span(info.start, t, groups::VM, node, name, vpn, 0);
            match info.source {
                FaultSource::DiskCacheHit => self.m_fault_hit.add(lat),
                FaultSource::DiskCacheMiss => self.m_fault_miss.add(lat),
                FaultSource::Ring => self.m_fault_ring.add(lat),
            }
        }
        for q in waiters {
            self.wake_proc(q, t);
        }
        Ok(())
    }

    /// Launch a standard-machine swap-out: page crosses the mesh to
    /// the responsible disk controller.
    pub(crate) fn start_std_swap(&mut self, node: u32, vpn: Vpn, now: Time) {
        let disk = self.fs.disk_of(vpn);
        let io = self.disk_homes[disk as usize];
        // Read the page from memory, then ship it.
        let g = self.mem_bus[node as usize].transfer(now, self.cfg.page_bytes);
        let d = self.mesh_send(g.end, node, io, self.cfg.page_bytes, "mesh.page");
        self.queue.schedule_at(
            d.arrival,
            super::Event::SwapWriteArrive {
                disk,
                vpn,
                from: node,
            },
        );
        // With lossy control messages the ACK/OK may never arrive; arm
        // a bounded-retry timeout for this attempt.
        if self.mesh_faults.is_active() {
            let attempt = self.swap_attempts.get(&(node, vpn)).copied().unwrap_or(0);
            self.queue.schedule_at(
                now + self.cfg.faults.request_timeout,
                super::Event::SwapTimeout { node, vpn, attempt },
            );
        }
    }

    /// Launch an NWCache swap-out: insert the page on the node's cache
    /// channel (on the ring that shards this page) if it has room,
    /// otherwise queue until a slot frees.
    pub(crate) fn start_ring_swap(&mut self, node: u32, vpn: Vpn, now: Time) {
        let ch = self.ring_channel_of(node, vpn) as usize;
        // Graceful degradation: a dead channel routes this node's
        // swap-outs through the standard ACK/NACK path instead.
        if self
            .ring
            .as_ref()
            .expect("NWCache machine has a ring")
            .is_dead(ch)
        {
            self.m_degraded_ring_swaps += 1;
            self.start_std_swap(node, vpn, now);
            return;
        }
        let ring = self.ring.as_ref().expect("NWCache machine has a ring");
        // Defer when the channel is full — or when a *stale copy* of
        // this very page is still circulating (drained to the disk
        // cache but its slot-freeing ACK has not reached us yet). The
        // next RingAck for this node retries the queue.
        if !ring.has_room(ch) || ring.contains(ch, vpn) {
            self.pending_ring_swaps[node as usize].push_back(vpn);
            return;
        }
        // Page moves over the local memory and I/O buses to the NWC
        // interface, then serializes onto the channel (multi-ring
        // fabrics arbitrate the node's tunable transmitter here).
        let g = self.mem_bus[node as usize].transfer(now, self.cfg.page_bytes);
        let g2 = self.io_bus[node as usize].transfer(g.end, self.cfg.page_bytes);
        let on_ring = self
            .ring
            .as_mut()
            .expect("checked above")
            .insert(g2.end, ch, vpn)
            .expect("room was checked");
        self.obs_span(g2.end, on_ring, groups::RING, ch as u32, "ring.insert", vpn, node as u64);
        self.queue
            .schedule_at(on_ring, super::Event::RingInsertDone { node, vpn });
        // Notify the responsible I/O node's interface.
        let disk = self.fs.disk_of(vpn);
        let io = self.disk_homes[disk as usize];
        let d = self.mesh_send(now, node, io, self.cfg.ctl_msg_bytes, "mesh.ctl");
        self.queue.schedule_at(
            d.arrival,
            super::Event::IfaceEnqueue {
                disk,
                ch: ch as u32,
                vpn,
            },
        );
    }

    /// The ring insertion completed: the swap-out is done from the
    /// node's point of view — frame reusable, Ring bit set.
    pub(crate) fn on_ring_insert_done(&mut self, node: u32, vpn: Vpn) -> Result<(), SimError> {
        let t = self.queue.now();
        if !matches!(
            self.pt[vpn as usize].state,
            PageState::SwappingOut { from, .. } if from == node
        ) {
            return Err(SimError::ProtocolViolation {
                at: t,
                what: format!(
                    "RingInsertDone for page {vpn} in state {:?}",
                    self.pt[vpn as usize].state
                ),
            });
        }
        // The channel died while the page was serializing onto it: the
        // bits are gone. The page is still `SwappingOut` and its frame
        // still held, so re-route the swap-out over the mesh.
        let ch = self.ring_channel_of(node, vpn);
        if self.ring.as_ref().is_some_and(|r| r.is_dead(ch as usize)) {
            self.m_ring_pages_lost += 1;
            self.m_swap_retries += 1;
            self.start_std_swap(node, vpn, t);
            return Ok(());
        }
        let waiters = match std::mem::replace(
            &mut self.pt[vpn as usize].state,
            PageState::OnRing { channel: ch },
        ) {
            PageState::SwappingOut { waiters, .. } => waiters,
            _ => unreachable!("checked above"),
        };
        self.pt[vpn as usize].last_node = node;
        self.trace(t, vpn, crate::trace::TraceKind::OnRing { channel: ch });
        if let Some(start) = self.swap_start.remove(&(node, vpn)) {
            self.m_swap_out_time.add(t - start);
            self.m_swap_out_hist.add(t - start);
            self.obs_span(start, t, groups::VM, node, "vm.swapout.ring", vpn, 1);
        }
        if let Some(ring) = self.ring.as_ref() {
            self.m_ring_occupancy.record(t, ring.total_occupancy() as u64);
        }
        if self.cfg.faults.ring_channel_failures.is_empty() {
            self.frames[node as usize].eviction_finished();
            self.frames[node as usize].release();
            self.wake_frame_waiter(node, t);
        } else {
            // Channel failures are scheduled: keep the frame pinned
            // dirty until the disk-side ACK confirms the page can no
            // longer be lost with the ring.
            self.pinned.insert((node, vpn));
        }
        for q in waiters {
            self.wake_proc(q, t); // they re-fault and hit the ring
        }
        Ok(())
    }
}
