//! Event vocabulary and dispatch for the machine's event loop.

use super::Machine;
use crate::error::SimError;
use crate::vm::{ProcId, Vpn};

/// Everything that can be scheduled on the machine's event queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Processor continues executing its action stream.
    Resume(ProcId),
    /// A page-read request reached disk `disk`'s controller.
    DiskRequest {
        /// Target disk.
        disk: u32,
        /// Requested page.
        vpn: Vpn,
    },
    /// The disk controller has the page ready (cache hit or completed
    /// media read): start moving it toward the faulting node.
    DiskReadReady {
        /// The disk.
        disk: u32,
        /// The page.
        vpn: Vpn,
    },
    /// A faulted page's data fully arrived in the destination memory.
    PageArrive {
        /// The page.
        vpn: Vpn,
    },
    /// A swapped-out page reached disk `disk`'s I/O node (standard
    /// machine; also used for OK-triggered re-sends).
    SwapWriteArrive {
        /// Target disk.
        disk: u32,
        /// The page.
        vpn: Vpn,
        /// Swapping node.
        from: u32,
    },
    /// The controller's ACK reached the swapping node: frame reusable.
    SwapAck {
        /// Swapping node.
        node: u32,
        /// The page.
        vpn: Vpn,
    },
    /// The controller's OK reached the swapping node: re-send the page.
    SwapOk {
        /// Swapping node.
        node: u32,
        /// The page.
        vpn: Vpn,
        /// Target disk.
        disk: u32,
    },
    /// The controller should try to flush dirty pages to the platters.
    FlushCheck {
        /// The disk.
        disk: u32,
    },
    /// A flush completed: hand freed slots to NACKed requesters that
    /// queued while the flush was in flight.
    NackRecheck {
        /// The disk.
        disk: u32,
    },
    /// A ring swap-out finished serializing onto the cache channel:
    /// the frame is reusable (NWCache machine).
    RingInsertDone {
        /// Swapping node (= channel).
        node: u32,
        /// The page.
        vpn: Vpn,
    },
    /// A swap-out notification reached the NWCache interface of the
    /// responsible I/O node.
    IfaceEnqueue {
        /// The disk whose interface receives the record.
        disk: u32,
        /// Cache channel (= swapping node).
        ch: u32,
        /// The page.
        vpn: Vpn,
    },
    /// The NWCache interface should try to copy a page from the most
    /// loaded channel into the disk cache.
    DrainCheck {
        /// The disk.
        disk: u32,
    },
    /// A page finished copying from the ring into the disk cache.
    DrainCopied {
        /// The disk.
        disk: u32,
        /// Source channel.
        ch: u32,
        /// The page.
        vpn: Vpn,
        /// Original swapper (receives the ACK).
        origin: u32,
    },
    /// The interface's ACK reached the original swapper: the ring slot
    /// is freed and the Ring bit cleared.
    RingAck {
        /// Original swapper (= channel owner).
        origin: u32,
        /// Channel.
        ch: u32,
        /// The page.
        vpn: Vpn,
    },
    /// A victim-read notification reached the responsible interface:
    /// cancel the page's FIFO entry (it no longer goes to disk).
    CancelMsg {
        /// The disk.
        disk: u32,
        /// Channel.
        ch: u32,
        /// The page.
        vpn: Vpn,
    },
    /// A scheduled ring channel failure fires: every page circulating
    /// on the channel is destroyed and the channel is dead for the
    /// rest of the run (fault injection only).
    RingChannelFail {
        /// The failing channel.
        ch: u32,
    },
    /// A swap-out has been unacknowledged for the configured timeout:
    /// re-issue it unless it completed or a newer retry superseded
    /// this timer (fault injection only).
    SwapTimeout {
        /// Swapping node.
        node: u32,
        /// The page.
        vpn: Vpn,
        /// Attempt count this timer was armed for.
        attempt: u32,
    },
    /// A speculative prefetch hint reached disk `disk`'s controller
    /// (adaptive prefetching only).
    SpecHint {
        /// Target disk.
        disk: u32,
        /// The predicted page.
        vpn: Vpn,
        /// The node whose detector issued the hint.
        node: u32,
    },
    /// The controller should advance its speculative read engine:
    /// install a completed fill and/or start the next queued hint.
    SpecCheck {
        /// The disk.
        disk: u32,
    },
}

// Calendar-wheel buckets store events inline, so `Event`'s size sets
// the queue's memory traffic. Box (or split) any future variant that
// would inflate it past 32 bytes — today the widest (`DrainCopied`,
// `SwapTimeout`) pack three words of payload plus the discriminant.
const _: () = assert!(
    std::mem::size_of::<Event>() <= 32,
    "Event grew past 32 bytes; box the offending variant's payload"
);

impl Machine {
    /// Dispatch one event. Errors surface protocol inconsistencies and
    /// exhausted fault-recovery retries; a clean run never produces one.
    pub(crate) fn dispatch(&mut self, ev: Event) -> Result<(), SimError> {
        #[cfg(debug_assertions)]
        if let Ok(v) = std::env::var("NWC_TRACE_VPN") {
            let target: Vpn = v.parse().unwrap_or(u64::MAX);
            let hit = match &ev {
                Event::DiskRequest { vpn, .. }
                | Event::DiskReadReady { vpn, .. }
                | Event::PageArrive { vpn }
                | Event::SwapWriteArrive { vpn, .. }
                | Event::SwapAck { vpn, .. }
                | Event::SwapOk { vpn, .. }
                | Event::RingInsertDone { vpn, .. }
                | Event::IfaceEnqueue { vpn, .. }
                | Event::DrainCopied { vpn, .. }
                | Event::RingAck { vpn, .. }
                | Event::CancelMsg { vpn, .. }
                | Event::SwapTimeout { vpn, .. }
                | Event::SpecHint { vpn, .. } => *vpn == target,
                _ => false,
            };
            if hit {
                eprintln!("[{}] {:?} state={:?}", self.queue.now(), ev, self.pt[target as usize].state);
            }
        }
        match ev {
            Event::Resume(p) => {
                self.step_proc(p);
                Ok(())
            }
            Event::DiskRequest { disk, vpn } => self.on_disk_request(disk, vpn),
            Event::DiskReadReady { disk, vpn } => self.on_disk_read_ready(disk, vpn),
            Event::PageArrive { vpn } => self.on_page_arrive(vpn),
            Event::SwapWriteArrive { disk, vpn, from } => {
                self.on_swap_write_arrive(disk, vpn, from);
                Ok(())
            }
            Event::SwapAck { node, vpn } => self.on_swap_ack(node, vpn),
            Event::SwapOk { node, vpn, disk } => self.on_swap_ok(node, vpn, disk),
            Event::FlushCheck { disk } => {
                self.on_flush_check(disk);
                Ok(())
            }
            Event::NackRecheck { disk } => {
                self.on_nack_recheck(disk);
                Ok(())
            }
            Event::RingInsertDone { node, vpn } => self.on_ring_insert_done(node, vpn),
            Event::IfaceEnqueue { disk, ch, vpn } => {
                self.on_iface_enqueue(disk, ch, vpn);
                Ok(())
            }
            Event::DrainCheck { disk } => self.on_drain_check(disk),
            Event::DrainCopied {
                disk,
                ch,
                vpn,
                origin,
            } => {
                self.on_drain_copied(disk, ch, vpn, origin);
                Ok(())
            }
            Event::RingAck { origin, ch, vpn } => {
                self.on_ring_ack(origin, ch, vpn);
                Ok(())
            }
            Event::CancelMsg { disk, ch, vpn } => {
                self.on_cancel_msg(disk, ch, vpn);
                Ok(())
            }
            Event::RingChannelFail { ch } => self.on_ring_channel_fail(ch),
            Event::SwapTimeout { node, vpn, attempt } => {
                self.on_swap_timeout(node, vpn, attempt)
            }
            Event::SpecHint { disk, vpn, node } => {
                self.on_spec_hint(disk, vpn, node);
                Ok(())
            }
            Event::SpecCheck { disk } => {
                self.on_spec_check(disk);
                Ok(())
            }
        }
    }
}
