//! Disk-side and ring-side protocol handlers: demand reads, swap-out
//! writes with ACK/NACK/OK flow control, controller flushes, NWCache
//! interface drains and acknowledgements.

use super::{FaultSource, Machine};
use crate::vm::{PageState, Vpn};
use nw_disk::{ReadOutcome, WriteOutcome};

impl Machine {
    /// A page-read request reached disk `disk`'s controller.
    pub(crate) fn on_disk_request(&mut self, disk: u32, vpn: Vpn) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        let block = self.fs.block_of(vpn);
        let outcome = self.disks[disk as usize].read_page(t, vpn, block);
        if outcome.is_hit() {
            if let Some(info) = self.fault_info.get_mut(&vpn) {
                info.source = FaultSource::DiskCacheHit;
            }
        }
        debug_assert!(matches!(
            self.pt[vpn as usize].state,
            PageState::InTransit { .. }
        ));
        let _ = io;
        // Bus/mesh bandwidth is claimed when the data is actually
        // ready, not reserved into the future — otherwise cache hits
        // would queue behind the future reservations of earlier misses.
        self.queue.schedule_at(
            outcome.ready_at().max(t),
            super::Event::DiskReadReady { disk, vpn },
        );
    }

    /// The page is available at the controller: ship it to the
    /// faulting node over the I/O bus, the mesh and its memory bus.
    pub(crate) fn on_disk_read_ready(&mut self, disk: u32, vpn: Vpn) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        let dest = match self.pt[vpn as usize].state {
            PageState::InTransit { node, .. } => node,
            ref other => panic!("disk reply for page in state {other:?}"),
        };
        let g = self.io_bus[io as usize].transfer(t, self.cfg.page_bytes);
        let d = self.mesh.send(g.end, io, dest, self.cfg.page_bytes);
        let g2 = self.mem_bus[dest as usize].transfer(d.arrival, self.cfg.page_bytes);
        self.queue
            .schedule_at(g2.end, super::Event::PageArrive { vpn });
    }

    /// A swapped-out page reached the I/O node (standard machine).
    pub(crate) fn on_swap_write_arrive(&mut self, disk: u32, vpn: Vpn, from: u32) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        let block = self.fs.block_of(vpn);
        // Page crosses the I/O bus into the controller.
        let g = self.io_bus[io as usize].transfer(t, self.cfg.page_bytes);
        match self.disks[disk as usize].write_page(g.end, vpn, block, from) {
            WriteOutcome::Ack { flush_check_at } => {
                self.queue
                    .schedule_at(flush_check_at, super::Event::FlushCheck { disk });
                let d = self.mesh.send(g.end, io, from, self.cfg.ctl_msg_bytes);
                self.queue
                    .schedule_at(d.arrival, super::Event::SwapAck { node: from, vpn });
            }
            WriteOutcome::Nack => {
                self.trace(t, vpn, crate::trace::TraceKind::SwapNacked);
                self.m_swap_nacks += 1;
                // NACK control message back (traffic only; the node
                // simply keeps the frame until the OK arrives).
                self.mesh.send(g.end, io, from, self.cfg.ctl_msg_bytes);
            }
        }
    }

    /// The controller's ACK reached the swapping node: the swap-out is
    /// complete and the frame is reusable.
    pub(crate) fn on_swap_ack(&mut self, node: u32, vpn: Vpn) {
        let t = self.queue.now();
        let waiters =
            match std::mem::replace(&mut self.pt[vpn as usize].state, PageState::OnDisk) {
                PageState::SwappingOut { waiters, .. } => waiters,
                other => panic!("SwapAck for page in state {other:?}"),
            };
        self.trace(t, vpn, crate::trace::TraceKind::SwapAcked);
        if let Some(start) = self.swap_start.remove(&(node, vpn)) {
            self.m_swap_out_time.add(t - start);
            self.m_swap_out_hist.add(t - start);
        }
        self.frames[node as usize].eviction_finished();
        self.frames[node as usize].release();
        self.wake_frame_waiter(node, t);
        for q in waiters {
            self.wake_proc(q, t); // they re-fault; likely a cache hit
        }
    }

    /// The controller's OK reached the swapping node: re-send the page
    /// (a slot has been reserved for it).
    pub(crate) fn on_swap_ok(&mut self, node: u32, vpn: Vpn, _disk: u32) {
        let t = self.queue.now();
        debug_assert!(matches!(
            self.pt[vpn as usize].state,
            PageState::SwappingOut { from, .. } if from == node
        ));
        self.start_std_swap(node, vpn, t);
    }

    /// Give the controller a chance to flush dirty pages to disk.
    /// Reads have priority: if the arm is busy the check is re-polled
    /// when it frees up.
    pub(crate) fn on_flush_check(&mut self, disk: u32) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        let free_at = self.disks[disk as usize].arm_free_at(t);
        if free_at > t {
            if self.disks[disk as usize].has_pending_dirty() {
                self.queue
                    .schedule_at(free_at, super::Event::FlushCheck { disk });
            }
            return;
        }
        if let Some(res) = self.disks[disk as usize].try_flush(t) {
            for (node, page) in &res.oks {
                let d = self
                    .mesh
                    .send(res.done_at, io, *node, self.cfg.ctl_msg_bytes);
                self.queue.schedule_at(
                    d.arrival,
                    super::Event::SwapOk {
                        node: *node,
                        vpn: *page,
                        disk,
                    },
                );
            }
            // More dirty runs may remain; cache room also lets the
            // NWCache interface drain more swap-outs, and requesters
            // NACKed during the flush get first claim on freed slots.
            self.queue
                .schedule_at(res.done_at, super::Event::FlushCheck { disk });
            self.queue
                .schedule_at(res.done_at, super::Event::NackRecheck { disk });
            if self.cfg.has_ring() {
                self.queue
                    .schedule_at(res.done_at, super::Event::DrainCheck { disk });
            }
        }
    }

    /// Hand freed cache slots to requesters NACKed during a flush.
    pub(crate) fn on_nack_recheck(&mut self, disk: u32) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        for (node, page) in self.disks[disk as usize].claim_for_waiters(t) {
            let d = self.mesh.send(t, io, node, self.cfg.ctl_msg_bytes);
            self.queue.schedule_at(
                d.arrival,
                super::Event::SwapOk {
                    node,
                    vpn: page,
                    disk,
                },
            );
        }
    }

    /// A swap-out notification reached the NWCache interface.
    pub(crate) fn on_iface_enqueue(&mut self, disk: u32, ch: u32, vpn: Vpn) {
        let t = self.queue.now();
        self.ifaces[disk as usize].enqueue(ch as usize, ch, vpn);
        self.queue.schedule_at(t, super::Event::DrainCheck { disk });
    }

    /// The interface tries to copy one page from the most loaded
    /// channel into the disk cache (one tunable receiver: drains are
    /// serialized per interface).
    pub(crate) fn on_drain_check(&mut self, disk: u32) {
        let t = self.queue.now();
        let d = disk as usize;
        if self.drain_busy_until[d] > t {
            // Busy; the completion event will re-check.
            return;
        }
        if !self.disks[d].has_write_room(t) {
            // A flush completion will re-schedule us.
            return;
        }
        let Some((ch, rec)) = self.ifaces[d].next_to_drain() else {
            return;
        };
        // Skip records whose page was already victim-read off the
        // ring; the authoritative ACK is sent here since the cancel
        // message found the record already popped -- see on_cancel_msg.
        // A page still in `SwappingOut` is mid-insertion onto the
        // channel (the notification can overtake the optical
        // serialization) and is drained normally.
        let still_on_ring = matches!(
            self.pt[rec.page as usize].state,
            PageState::OnRing { channel } if channel == ch as u32
        ) || matches!(
            self.pt[rec.page as usize].state,
            PageState::SwappingOut { from, .. } if from == ch as u32
        );
        if !still_on_ring {
            let io = self.cfg.io_node_of_disk(disk);
            let md = self.mesh.send(t, io, rec.origin, self.cfg.ctl_msg_bytes);
            self.queue.schedule_at(
                md.arrival,
                super::Event::RingAck {
                    origin: rec.origin,
                    ch: ch as u32,
                    vpn: rec.page,
                },
            );
            self.queue.schedule_at(t, super::Event::DrainCheck { disk });
            return;
        }
        let ready = self
            .ring
            .as_mut()
            .expect("drain requires a ring")
            .snoop_ready(t, ch, rec.page)
            .expect("FIFO record for page not on channel");
        self.drain_busy_until[d] = ready;
        self.queue.schedule_at(
            ready,
            super::Event::DrainCopied {
                disk,
                ch: ch as u32,
                vpn: rec.page,
                origin: rec.origin,
            },
        );
    }

    /// A page finished copying from the ring into the disk cache.
    pub(crate) fn on_drain_copied(&mut self, disk: u32, ch: u32, vpn: Vpn, origin: u32) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        if matches!(self.pt[vpn as usize].state, PageState::OnRing { channel } if channel == ch) {
            let block = self.fs.block_of(vpn);
            match self.disks[disk as usize].write_page(t, vpn, block, origin) {
                WriteOutcome::Ack { flush_check_at } => {
                    // The page now lives beyond the disk-controller
                    // boundary; the Ring bit is cleared when the
                    // origin's ACK arrives, but faults from now on go
                    // to the disk.
                    self.pt[vpn as usize].state = PageState::OnDisk;
                    self.trace(t, vpn, crate::trace::TraceKind::Drained { disk });
                    self.queue
                        .schedule_at(flush_check_at, super::Event::FlushCheck { disk });
                }
                WriteOutcome::Nack => {
                    // Room vanished between the check and the copy:
                    // put the record back and retry after the next
                    // flush frees space.
                    self.m_swap_nacks += 1;
                    self.ifaces[disk as usize].requeue_front(
                        ch as usize,
                        nw_optical::SwapRecord {
                            origin,
                            page: vpn,
                        },
                    );
                    return;
                }
            }
        }
        // ACK to the original swapper: it frees the ring slot.
        let d = self.mesh.send(t, io, origin, self.cfg.ctl_msg_bytes);
        self.queue.schedule_at(
            d.arrival,
            super::Event::RingAck {
                origin,
                ch,
                vpn,
            },
        );
        // Try the next record.
        self.queue.schedule_at(t, super::Event::DrainCheck { disk });
    }

    /// The ACK reached the original swapper: free the ring slot and
    /// start any swap-out waiting for channel room.
    pub(crate) fn on_ring_ack(&mut self, origin: u32, ch: u32, vpn: Vpn) {
        let t = self.queue.now();
        self.trace(t, vpn, crate::trace::TraceKind::RingAcked);
        if let Some(ring) = self.ring.as_mut() {
            ring.remove(ch as usize, vpn);
        }
        if let Some(ring) = self.ring.as_ref() {
            self.m_ring_occupancy.record(t, ring.total_occupancy() as u64);
        }
        if let Some(next) = self.pending_ring_swaps[origin as usize].pop_front() {
            self.start_ring_swap(origin, next, t);
        }
    }

    /// A victim-read notification reached the interface: the page no
    /// longer needs to reach the disk.
    pub(crate) fn on_cancel_msg(&mut self, disk: u32, ch: u32, vpn: Vpn) {
        let t = self.queue.now();
        let io = self.cfg.io_node_of_disk(disk);
        if let Some(rec) = self.ifaces[disk as usize].cancel(ch as usize, vpn) {
            // Record was still queued: the interface ACKs the swapper
            // directly (the drain will never see this page).
            let d = self.mesh.send(t, io, rec.origin, self.cfg.ctl_msg_bytes);
            self.queue.schedule_at(
                d.arrival,
                super::Event::RingAck {
                    origin: rec.origin,
                    ch,
                    vpn,
                },
            );
        }
        // If cancel returned None the drain already popped the record;
        // on_drain_check / on_drain_copied send the ACK instead.
    }

    /// Accessor used by integration tests: has the ring drained
    /// everything it was asked to?
    pub fn ring_pending_drains(&self) -> usize {
        self.ifaces.iter().map(|i| i.pending()).sum()
    }
}

#[allow(unused_imports)]
use ReadOutcome as _ReadOutcomeUsed;
