//! Disk-side and ring-side protocol handlers: demand reads, swap-out
//! writes with ACK/NACK/OK flow control, controller flushes, NWCache
//! interface drains and acknowledgements — plus the fault-recovery
//! paths: disk retry with exponential backoff, stuck-request
//! timeouts, and ring channel failure handling.

use super::{FaultSource, Machine};
use crate::error::SimError;
use crate::observe::groups;
use crate::vm::{PageState, Vpn};
use nw_disk::{DiskFault, ReadOutcome, WriteOutcome};

impl Machine {
    /// A page-read request reached disk `disk`'s controller.
    pub(crate) fn on_disk_request(&mut self, disk: u32, vpn: Vpn) -> Result<(), SimError> {
        let t = self.queue.now();
        if self.disk_faults[disk as usize].is_active() {
            match self.disk_faults[disk as usize].roll() {
                DiskFault::None => {
                    self.disk_retry.remove(&vpn);
                }
                DiskFault::MediaError => {
                    // Failed media read: retry with exponential backoff.
                    let attempt = {
                        let a = self.disk_retry.entry(vpn).or_insert(0);
                        *a += 1;
                        *a
                    };
                    if attempt > self.cfg.faults.max_retries {
                        return Err(SimError::RetriesExhausted {
                            kind: "disk-read",
                            vpn,
                            attempts: attempt,
                        });
                    }
                    let backoff =
                        self.cfg.faults.retry_backoff << (attempt - 1).min(16);
                    self.queue
                        .schedule_at(t + backoff, super::Event::DiskRequest { disk, vpn });
                    return Ok(());
                }
                DiskFault::Stuck => {
                    // Lost request: only the timeout re-issues it.
                    let attempt = {
                        let a = self.disk_retry.entry(vpn).or_insert(0);
                        *a += 1;
                        *a
                    };
                    if attempt > self.cfg.faults.max_retries {
                        return Err(SimError::RetriesExhausted {
                            kind: "disk-read",
                            vpn,
                            attempts: attempt,
                        });
                    }
                    self.queue.schedule_at(
                        t + self.cfg.faults.request_timeout,
                        super::Event::DiskRequest { disk, vpn },
                    );
                    return Ok(());
                }
            }
        }
        let io = self.disk_homes[disk as usize];
        let block = self.fs.block_of(vpn);
        let outcome = self.disks[disk as usize].read_page(t, vpn, block);
        // A demand read consumes any speculative work on the same page
        // (queued hint canceled, active fill adopted, side-cache entry
        // promoted) — the hint slot frees up either way.
        if self.policy.is_outstanding(vpn) {
            self.policy.on_resolved(vpn);
        }
        if outcome.is_hit() {
            if let Some(info) = self.fault_info.get_mut(&vpn) {
                info.source = FaultSource::DiskCacheHit;
            }
        }
        self.obs_span(
            t,
            outcome.ready_at().max(t),
            groups::DISK,
            disk,
            if outcome.is_hit() {
                "disk.read.hit"
            } else {
                "disk.read.miss"
            },
            vpn,
            block,
        );
        debug_assert!(matches!(
            self.pt[vpn as usize].state,
            PageState::InTransit { .. }
        ));
        let _ = io;
        // Bus/mesh bandwidth is claimed when the data is actually
        // ready, not reserved into the future — otherwise cache hits
        // would queue behind the future reservations of earlier misses.
        self.queue.schedule_at(
            outcome.ready_at().max(t),
            super::Event::DiskReadReady { disk, vpn },
        );
        Ok(())
    }

    /// The page is available at the controller: ship it to the
    /// faulting node over the I/O bus, the mesh and its memory bus.
    pub(crate) fn on_disk_read_ready(&mut self, disk: u32, vpn: Vpn) -> Result<(), SimError> {
        let t = self.queue.now();
        let io = self.disk_homes[disk as usize];
        let dest = match self.pt[vpn as usize].state {
            PageState::InTransit { node, .. } => node,
            ref other => {
                return Err(SimError::ProtocolViolation {
                    at: t,
                    what: format!("disk reply for page {vpn} in state {other:?}"),
                })
            }
        };
        let g = self.io_bus[io as usize].transfer(t, self.cfg.page_bytes);
        let d = self.mesh_send(g.end, io, dest, self.cfg.page_bytes, "mesh.page");
        let g2 = self.mem_bus[dest as usize].transfer(d.arrival, self.cfg.page_bytes);
        self.queue
            .schedule_at(g2.end, super::Event::PageArrive { vpn });
        Ok(())
    }

    /// A swapped-out page reached the I/O node (standard machine).
    pub(crate) fn on_swap_write_arrive(&mut self, disk: u32, vpn: Vpn, from: u32) {
        let t = self.queue.now();
        let io = self.disk_homes[disk as usize];
        let block = self.fs.block_of(vpn);
        // Page crosses the I/O bus into the controller.
        let g = self.io_bus[io as usize].transfer(t, self.cfg.page_bytes);
        match self.disks[disk as usize].write_page(g.end, vpn, block, from) {
            WriteOutcome::Ack { flush_check_at } => {
                self.obs_instant(g.end, groups::DISK, disk, "disk.admit", vpn, from as u64);
                self.queue
                    .schedule_at(flush_check_at, super::Event::FlushCheck { disk });
                let d = self.mesh_send(g.end, io, from, self.cfg.ctl_msg_bytes, "mesh.ctl");
                // A lost ACK leaves the swap pending; the swap timeout
                // re-issues the write and the duplicate is tolerated.
                if self.ctl_msg_delivered() {
                    self.queue
                        .schedule_at(d.arrival, super::Event::SwapAck { node: from, vpn });
                }
            }
            WriteOutcome::Nack => {
                self.trace(t, vpn, crate::trace::TraceKind::SwapNacked);
                self.obs_instant(g.end, groups::DISK, disk, "disk.nack", vpn, from as u64);
                self.m_swap_nacks += 1;
                // NACK control message back (traffic only; the node
                // simply keeps the frame until the OK arrives).
                self.mesh_send(g.end, io, from, self.cfg.ctl_msg_bytes, "mesh.ctl");
                // The controller has the request registered: this is
                // congestion, not loss, so the retry budget starts
                // over. A fresh timer still guards the OK message
                // itself getting dropped.
                if self.mesh_faults.is_active()
                    && matches!(
                        self.pt[vpn as usize].state,
                        PageState::SwappingOut { from: f, .. } if f == from
                    )
                {
                    self.swap_attempts.remove(&(from, vpn));
                    self.queue.schedule_at(
                        t + self.cfg.faults.request_timeout,
                        super::Event::SwapTimeout {
                            node: from,
                            vpn,
                            attempt: 0,
                        },
                    );
                }
            }
        }
    }

    /// The controller's ACK reached the swapping node: the swap-out is
    /// complete and the frame is reusable.
    pub(crate) fn on_swap_ack(&mut self, node: u32, vpn: Vpn) -> Result<(), SimError> {
        let t = self.queue.now();
        if !matches!(
            self.pt[vpn as usize].state,
            PageState::SwappingOut { .. }
        ) {
            if self.cfg.faults.is_active() {
                // Duplicate ACK from a timed-out-then-re-issued swap.
                return Ok(());
            }
            return Err(SimError::ProtocolViolation {
                at: t,
                what: format!(
                    "SwapAck for page {vpn} in state {:?}",
                    self.pt[vpn as usize].state
                ),
            });
        }
        let waiters =
            match std::mem::replace(&mut self.pt[vpn as usize].state, PageState::OnDisk) {
                PageState::SwappingOut { waiters, .. } => waiters,
                _ => unreachable!("checked above"),
            };
        self.swap_attempts.remove(&(node, vpn));
        self.trace(t, vpn, crate::trace::TraceKind::SwapAcked);
        if let Some(start) = self.swap_start.remove(&(node, vpn)) {
            self.m_swap_out_time.add(t - start);
            self.m_swap_out_hist.add(t - start);
            // Swap-out span on the VM track: eviction to frame reuse.
            self.obs_span(start, t, groups::VM, node, "vm.swapout.std", vpn, 0);
        }
        self.frames[node as usize].eviction_finished();
        self.frames[node as usize].release();
        self.wake_frame_waiter(node, t);
        for q in waiters {
            self.wake_proc(q, t); // they re-fault; likely a cache hit
        }
        Ok(())
    }

    /// The controller's OK reached the swapping node: re-send the page
    /// (a slot has been reserved for it).
    pub(crate) fn on_swap_ok(&mut self, node: u32, vpn: Vpn, _disk: u32) -> Result<(), SimError> {
        let t = self.queue.now();
        if !matches!(
            self.pt[vpn as usize].state,
            PageState::SwappingOut { from, .. } if from == node
        ) {
            if self.cfg.faults.is_active() {
                // The swap already completed via a timed-out retry.
                return Ok(());
            }
            return Err(SimError::ProtocolViolation {
                at: t,
                what: format!(
                    "SwapOk for page {vpn} in state {:?}",
                    self.pt[vpn as usize].state
                ),
            });
        }
        self.start_std_swap(node, vpn, t);
        Ok(())
    }

    /// Give the controller a chance to flush dirty pages to disk.
    /// Reads have priority: if the arm is busy the check is re-polled
    /// when it frees up.
    pub(crate) fn on_flush_check(&mut self, disk: u32) {
        let t = self.queue.now();
        let io = self.disk_homes[disk as usize];
        let free_at = self.disks[disk as usize].arm_free_at(t);
        if free_at > t {
            if self.disks[disk as usize].has_pending_dirty() {
                self.queue
                    .schedule_at(free_at, super::Event::FlushCheck { disk });
            }
            return;
        }
        if let Some(res) = self.disks[disk as usize].try_flush(t) {
            self.obs_span(
                res.start,
                res.done_at,
                groups::DISK,
                disk,
                "disk.flush",
                res.pages,
                res.oks.len() as u64,
            );
            for (node, page) in &res.oks {
                let d = self
                    .mesh_send(res.done_at, io, *node, self.cfg.ctl_msg_bytes, "mesh.ctl");
                if self.ctl_msg_delivered() {
                    self.queue.schedule_at(
                        d.arrival,
                        super::Event::SwapOk {
                            node: *node,
                            vpn: *page,
                            disk,
                        },
                    );
                }
            }
            // More dirty runs may remain; cache room also lets the
            // NWCache interface drain more swap-outs, and requesters
            // NACKed during the flush get first claim on freed slots.
            self.queue
                .schedule_at(res.done_at, super::Event::FlushCheck { disk });
            self.queue
                .schedule_at(res.done_at, super::Event::NackRecheck { disk });
            if self.cfg.has_ring() {
                self.queue
                    .schedule_at(res.done_at, super::Event::DrainCheck { disk });
            }
        }
    }

    /// Hand freed cache slots to requesters NACKed during a flush.
    pub(crate) fn on_nack_recheck(&mut self, disk: u32) {
        let t = self.queue.now();
        let io = self.disk_homes[disk as usize];
        for (node, page) in self.disks[disk as usize].claim_for_waiters(t) {
            let d = self.mesh_send(t, io, node, self.cfg.ctl_msg_bytes, "mesh.ctl");
            if self.ctl_msg_delivered() {
                self.queue.schedule_at(
                    d.arrival,
                    super::Event::SwapOk {
                        node,
                        vpn: page,
                        disk,
                    },
                );
            }
        }
    }

    /// A swap-out notification reached the NWCache interface.
    pub(crate) fn on_iface_enqueue(&mut self, disk: u32, ch: u32, vpn: Vpn) {
        let t = self.queue.now();
        if self.ring.as_ref().is_some_and(|r| r.is_dead(ch as usize)) {
            // The channel died while this notification was in flight;
            // the failure handler re-routes its pages over the mesh.
            return;
        }
        // The record's origin is the swapping *node*, not the global
        // channel id — they only coincide on a single-ring fabric.
        let origin = self.channel_node(ch);
        self.ifaces[disk as usize].enqueue(ch as usize, origin, vpn);
        self.queue.schedule_at(t, super::Event::DrainCheck { disk });
    }

    /// The interface tries to copy one page from the most loaded
    /// channel into the disk cache (one tunable receiver: drains are
    /// serialized per interface).
    pub(crate) fn on_drain_check(&mut self, disk: u32) -> Result<(), SimError> {
        let t = self.queue.now();
        let d = disk as usize;
        if self.drain_busy_until[d] > t {
            // Busy; the completion event will re-check.
            return Ok(());
        }
        if !self.disks[d].has_write_room(t) {
            // A flush completion will re-schedule us.
            return Ok(());
        }
        let Some((ch, rec)) = self.ifaces[d].next_to_drain() else {
            return Ok(());
        };
        // Skip records whose page was already victim-read off the
        // ring; the authoritative ACK is sent here since the cancel
        // message found the record already popped -- see on_cancel_msg.
        // A page still in `SwappingOut` is mid-insertion onto the
        // channel (the notification can overtake the optical
        // serialization) and is drained normally.
        let still_on_ring = matches!(
            self.pt[rec.page as usize].state,
            PageState::OnRing { channel } if channel == ch as u32
        ) || matches!(
            self.pt[rec.page as usize].state,
            PageState::SwappingOut { from, .. } if from == self.channel_node(ch as u32)
        );
        if !still_on_ring {
            let io = self.disk_homes[disk as usize];
            let md = self.mesh_send(t, io, rec.origin, self.cfg.ctl_msg_bytes, "mesh.ctl");
            self.queue.schedule_at(
                md.arrival,
                super::Event::RingAck {
                    origin: rec.origin,
                    ch: ch as u32,
                    vpn: rec.page,
                },
            );
            self.queue.schedule_at(t, super::Event::DrainCheck { disk });
            return Ok(());
        }
        let ready = self
            .ring
            .as_mut()
            .expect("drain requires a ring")
            .snoop_ready(t, ch, rec.page);
        let Some(ready) = ready else {
            return Err(SimError::ProtocolViolation {
                at: t,
                what: format!("drain record for page {} not on channel {ch}", rec.page),
            });
        };
        self.drain_busy_until[d] = ready;
        self.obs_span(t, ready, groups::RING, ch as u32, "ring.drain", rec.page, rec.origin as u64);
        self.queue.schedule_at(
            ready,
            super::Event::DrainCopied {
                disk,
                ch: ch as u32,
                vpn: rec.page,
                origin: rec.origin,
            },
        );
        Ok(())
    }

    /// A page finished copying from the ring into the disk cache.
    pub(crate) fn on_drain_copied(&mut self, disk: u32, ch: u32, vpn: Vpn, origin: u32) {
        let t = self.queue.now();
        let io = self.disk_homes[disk as usize];
        if matches!(self.pt[vpn as usize].state, PageState::OnRing { channel } if channel == ch) {
            let block = self.fs.block_of(vpn);
            match self.disks[disk as usize].write_page(t, vpn, block, origin) {
                WriteOutcome::Ack { flush_check_at } => {
                    // The page now lives beyond the disk-controller
                    // boundary; the Ring bit is cleared when the
                    // origin's ACK arrives, but faults from now on go
                    // to the disk.
                    self.pt[vpn as usize].state = PageState::OnDisk;
                    self.trace(t, vpn, crate::trace::TraceKind::Drained { disk });
                    self.obs_instant(t, groups::DISK, disk, "disk.admit", vpn, origin as u64);
                    self.queue
                        .schedule_at(flush_check_at, super::Event::FlushCheck { disk });
                }
                WriteOutcome::Nack => {
                    // Room vanished between the check and the copy:
                    // put the record back and retry after the next
                    // flush frees space. The drain retries through its
                    // own FIFO, so it must not join the controller's
                    // NACK/OK reservation protocol — nothing on the
                    // ring path consumes the OK, and the reserved slot
                    // would be lost for good.
                    self.m_swap_nacks += 1;
                    self.disks[disk as usize].retract_nack(origin, vpn);
                    self.ifaces[disk as usize].requeue_front(
                        ch as usize,
                        nw_optical::SwapRecord {
                            origin,
                            page: vpn,
                        },
                    );
                    // Re-check right away in case room came back as
                    // clean (prefetch-filled) slots that no flush
                    // completion will ever announce; a room-less check
                    // is a cheap no-op.
                    self.obs_instant(t, groups::DISK, disk, "disk.nack", vpn, origin as u64);
                    self.queue.schedule_at(t, super::Event::DrainCheck { disk });
                    return;
                }
            }
        }
        // ACK to the original swapper: it frees the ring slot.
        let d = self.mesh_send(t, io, origin, self.cfg.ctl_msg_bytes, "mesh.ctl");
        self.queue.schedule_at(
            d.arrival,
            super::Event::RingAck {
                origin,
                ch,
                vpn,
            },
        );
        // Try the next record.
        self.queue.schedule_at(t, super::Event::DrainCheck { disk });
    }

    /// The ACK reached the original swapper: free the ring slot and
    /// start any swap-out waiting for channel room.
    pub(crate) fn on_ring_ack(&mut self, origin: u32, ch: u32, vpn: Vpn) {
        let t = self.queue.now();
        self.trace(t, vpn, crate::trace::TraceKind::RingAcked);
        self.obs_instant(t, groups::RING, ch, "ring.ack", vpn, origin as u64);
        if let Some(ring) = self.ring.as_mut() {
            ring.remove(ch as usize, vpn);
        }
        if let Some(ring) = self.ring.as_ref() {
            self.m_ring_occupancy.record(t, ring.total_occupancy() as u64);
        }
        // When ring failures are scheduled the frame stayed pinned
        // until this disk-side acknowledgement.
        if self.pinned.remove(&(origin, vpn)) {
            self.frames[origin as usize].eviction_finished();
            self.frames[origin as usize].release();
            self.wake_frame_waiter(origin, t);
        }
        if let Some(next) = self.pending_ring_swaps[origin as usize].pop_front() {
            self.start_ring_swap(origin, next, t);
        }
    }

    /// A scheduled ring channel failure fires: destroy the channel's
    /// circulating pages, mark it dead, and recover — pages lost from
    /// the ring are re-issued as standard mesh swap-outs (their frames
    /// are still pinned dirty), queued swap-outs are re-routed, and
    /// future swap-outs of the channel's node degrade to the standard
    /// ACK/NACK path.
    pub(crate) fn on_ring_channel_fail(&mut self, ch: u32) -> Result<(), SimError> {
        let t = self.queue.now();
        let lost = {
            let Some(ring) = self.ring.as_mut() else {
                return Ok(());
            };
            if ring.is_dead(ch as usize) {
                return Ok(());
            }
            ring.fail_channel(ch as usize)
        };
        self.obs_instant(t, groups::RING, ch, "ring.fail", lost.len() as u64, 0);
        self.m_dead_channels += 1;
        if let Some(ring) = self.ring.as_ref() {
            self.m_ring_occupancy.record(t, ring.total_occupancy() as u64);
        }
        // Abandon interface FIFO records for the dead channel; the
        // page-state scan below re-issues anything that needs to reach
        // the disk.
        for iface in &mut self.ifaces {
            iface.fail_channel(ch as usize);
        }
        // The node whose transmitter fed the dead channel (== ch on
        // the single-ring paper machine).
        let node = self.channel_node(ch);
        for vpn in lost {
            match self.pt[vpn as usize].state {
                PageState::OnRing { channel } if channel == ch => {
                    // The only copy was circulating on the dead
                    // channel; the origin still pins the frame, so
                    // re-issue the swap-out over the mesh.
                    self.pt[vpn as usize].state = PageState::SwappingOut {
                        from: node,
                        waiters: Vec::new(),
                    };
                    self.pinned.remove(&(node, vpn));
                    self.m_ring_pages_lost += 1;
                    self.m_swap_retries += 1;
                    self.swap_start.entry((node, vpn)).or_insert(t);
                    self.start_std_swap(node, vpn, t);
                }
                PageState::SwappingOut { from, .. } if from == node => {
                    // Mid-insertion: the pending RingInsertDone sees
                    // the dead channel and re-routes over the mesh.
                }
                _ => {
                    // Already drained to disk or victim-read back into
                    // memory; only the pinned frame needs releasing,
                    // since the slot-freeing ACK may never arrive.
                    if self.pinned.remove(&(node, vpn)) {
                        self.frames[node as usize].eviction_finished();
                        self.frames[node as usize].release();
                        self.wake_frame_waiter(node, t);
                    }
                }
            }
        }
        // Swap-outs queued for channel room fall back to the mesh —
        // but only those sharded onto the dead channel's ring: the
        // node's queued pages for other rings keep their NWCache path
        // (re-queued in their original order).
        let queued: Vec<Vpn> = self.pending_ring_swaps[node as usize].drain(..).collect();
        for vpn in queued {
            if self.ring_channel_of(node, vpn) == ch {
                self.m_degraded_ring_swaps += 1;
                self.start_std_swap(node, vpn, t);
            } else {
                self.pending_ring_swaps[node as usize].push_back(vpn);
            }
        }
        Ok(())
    }

    /// A swap-out's acknowledgement timer expired (armed only when
    /// mesh message faults are active). Re-issue the write with a
    /// bounded retry count unless the swap completed, or a newer
    /// retry already armed its own timer.
    pub(crate) fn on_swap_timeout(
        &mut self,
        node: u32,
        vpn: Vpn,
        attempt: u32,
    ) -> Result<(), SimError> {
        let t = self.queue.now();
        if !matches!(
            self.pt[vpn as usize].state,
            PageState::SwappingOut { from, .. } if from == node
        ) {
            return Ok(()); // completed in the meantime
        }
        let current = self.swap_attempts.get(&(node, vpn)).copied().unwrap_or(0);
        if attempt != current {
            return Ok(()); // stale timer from a superseded attempt
        }
        let next = attempt + 1;
        if next > self.cfg.faults.max_retries {
            return Err(SimError::RetriesExhausted {
                kind: "swap-out",
                vpn,
                attempts: next,
            });
        }
        self.swap_attempts.insert((node, vpn), next);
        self.m_swap_retries += 1;
        self.start_std_swap(node, vpn, t);
        Ok(())
    }

    /// A victim-read notification reached the interface: the page no
    /// longer needs to reach the disk.
    pub(crate) fn on_cancel_msg(&mut self, disk: u32, ch: u32, vpn: Vpn) {
        let t = self.queue.now();
        let io = self.disk_homes[disk as usize];
        self.obs_instant(t, groups::RING, ch, "ring.cancel", vpn, disk as u64);
        if let Some(rec) = self.ifaces[disk as usize].cancel(ch as usize, vpn) {
            // Record was still queued: the interface ACKs the swapper
            // directly (the drain will never see this page).
            let d = self.mesh_send(t, io, rec.origin, self.cfg.ctl_msg_bytes, "mesh.ctl");
            self.queue.schedule_at(
                d.arrival,
                super::Event::RingAck {
                    origin: rec.origin,
                    ch,
                    vpn,
                },
            );
        }
        // If cancel returned None the drain already popped the record;
        // on_drain_check / on_drain_copied send the ACK instead.
    }

    /// A speculative prefetch hint reached the controller. Duplicates
    /// (the demand stream beat the hint to the page) resolve the hint
    /// immediately; fresh hints join the controller's speculative queue
    /// and kick its read engine if it is idle.
    pub(crate) fn on_spec_hint(&mut self, disk: u32, vpn: Vpn, node: u32) {
        let t = self.queue.now();
        let block = self.fs.block_of(vpn);
        match self.disks[disk as usize].spec_hint(t, vpn, block, node) {
            nw_disk::SpecOutcome::Duplicate => {
                self.policy.on_resolved(vpn);
            }
            nw_disk::SpecOutcome::Queued { schedule_check } => {
                self.obs_instant(t, groups::DISK, disk, "disk.spec.hint", vpn, node as u64);
                if schedule_check {
                    self.queue.schedule_at(t, super::Event::SpecCheck { disk });
                }
            }
        }
    }

    /// Advance the controller's speculative read engine: install a
    /// completed fill into the side cache, start the next queued hint
    /// when the arm is idle, and keep the poll chain alive while work
    /// remains.
    pub(crate) fn on_spec_check(&mut self, disk: u32) {
        let t = self.queue.now();
        let prog = self.disks[disk as usize].spec_step(t);
        for &(page, node) in &prog.installed {
            self.policy.on_installed(page);
            self.obs_instant(t, groups::DISK, disk, "disk.spec.install", page, node as u64);
        }
        if let Some(at) = prog.next_check {
            self.queue
                .schedule_at(at.max(t), super::Event::SpecCheck { disk });
        }
    }

    /// Accessor used by integration tests: has the ring drained
    /// everything it was asked to?
    pub fn ring_pending_drains(&self) -> usize {
        self.ifaces.iter().map(|i| i.pending()).sum()
    }
}

#[allow(unused_imports)]
use ReadOutcome as _ReadOutcomeUsed;
