//! Deterministic parallel discrete-event execution (PDES).
//!
//! With `--sim-threads K > 1` the machine runs same-timestamp *rounds*
//! of `Resume` events on the in-tree worker pool, bit-identical to the
//! serial loop at any K. The design is conservative: parallelism is
//! only used where the serial outcome is provably reproduced, and
//! everything else falls back to the serial path event by event.
//!
//! ## Round assembly
//!
//! [`Machine::try_run_events_pdes`] peeks at the queue and drains the
//! longest prefix of same-timestamp `Resume` events (the *round*)
//! before dispatching anything. This is exactly the prefix the serial
//! loop would deliver:
//!
//! * Same-time events pop in schedule (seq) order, and nothing the
//!   round itself schedules can precede the drained events (new seqs
//!   are strictly larger), so the drained set and its order match the
//!   serial pop order.
//! * The serial loop's early exit (`finished == nprocs` with events
//!   still queued) cannot trigger mid-round: a queued `Resume` implies
//!   its processor is not done (each processor has at most one
//!   `Resume` in flight — scheduled by seeding, quantum expiry, or
//!   [`Machine::wake_proc`], each a running/blocked → scheduled
//!   transition), so while any round event remains undelivered,
//!   `finished < nprocs`. The drain stops at the first non-`Resume`
//!   event, which stays in the queue.
//!
//! ## Lanes and the node-private contract
//!
//! An eligible round (see [`Machine::round_eligible`]) is executed in
//! two phases:
//!
//! 1. **Lanes** (parallel): processors are block-partitioned into
//!    `K` lanes; each lane owns disjoint `&mut` slices of `procs` and
//!    the page table and advances its processors' quanta through
//!    *pure* work only — compute, and loads/stores that resolve inside
//!    the processor's private TLB/L1/L2 against a resident page of its
//!    own block partition. The purity pre-check mutates nothing, so an
//!    impure action defers with zero side effects.
//! 2. **Canonical walk** (serial, pop order): performs every queue,
//!    watchdog and counter mutation the serial loop would, schedules
//!    quantum-expiry `Resume`s, and replays deferred processors with
//!    the ordinary [`Machine::step_proc`]. A deferred processor
//!    resumes the *same* quantum via `Proc::in_quantum`, so its
//!    quantum-expiry schedule lands at the serial time.
//!
//! Determinism argument, in brief: a lane's pure work touches only
//! processor-private state (its own caches, TLB, page-table entries of
//! its own page block) and charges the same latencies as
//! [`Machine::access`]; replayed deferred work runs serially in pop
//! order and thus interleaves with global state (mesh, directory,
//! memory buses, barrier, frame pools) exactly as the serial loop.
//! A replay can mutate global timestamps, but under the node-private
//! contract ([`nw_apps::AppBuild::node_private`]) no other
//! processor's pure path reads them: pure accesses read only the
//! processor's own block. Replays also never evict frames — a round is
//! only eligible while every node keeps `min_free_frames + 1` free
//! frames, and a replay allocates at most one frame on its own node
//! before blocking — so no TLB shootdowns or cache purges are
//! generated mid-round (shootdowns are the only
//! `Proc::pending_interrupt` source).
//!
//! The contract is the one load-bearing assumption: a workload that
//! sets `node_private` while sharing pages across processors silently
//! loses the bit-identical property (caught by the differential
//! suite). All paper workloads share pages and leave it unset, so
//! they run serial rounds and are trivially identical.
//!
//! On an error return (`Stalled`, a fatal protocol error) lane state
//! may have advanced past the failing event; determinism is only
//! guaranteed for runs that complete or pause on budget, matching the
//! serial engine's contract that an `Err` machine is not resumable.

use super::{Event, Machine, Proc, RunOutcome, CONSERVATION_CHECK_PERIOD, STALL_EVENT_LIMIT};
use crate::config::MachineConfig;
use crate::error::SimError;
use crate::vm::{PageEntry, PageState, ProcId};
use nw_apps::Action;
use nw_memhier::LookupResult;
use nw_sim::pool::RoundPool;
use nw_sim::Time;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count for new machines (0 = one per
/// core), set by `--sim-threads` the same way `sweep::set_jobs` sets
/// the sweep default.
static DEFAULT_SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the process-wide default simulation thread count applied to
/// every subsequently built [`Machine`] (0 = one per core).
pub fn set_default_sim_threads(k: usize) {
    DEFAULT_SIM_THREADS.store(k, Ordering::Relaxed);
}

/// The process-wide default simulation thread count (see
/// [`set_default_sim_threads`]); 0 means one per core.
pub fn default_sim_threads() -> usize {
    DEFAULT_SIM_THREADS.load(Ordering::Relaxed)
}

/// Outcome of a lane pass over one round event, recorded per event
/// and consumed by the canonical walk.
const OUT_RAN: u8 = 0;
const OUT_DEFERRED: u8 = 1;
const OUT_FINISHED: u8 = 2;
const OUT_IDLE: u8 = 3;

/// The lane `d` (of `k`) owning processor `p`: the balanced block
/// partition with cut points `d * nprocs / k`.
fn lane_of(p: usize, nprocs: usize, k: usize) -> usize {
    (k * (p + 1) - 1) / nprocs
}

/// One lane's disjoint view of the machine: a block of processors and
/// the page-table slice covering exactly their private page blocks.
struct Lane<'a> {
    procs: &'a mut [Proc],
    base_proc: usize,
    pt: &'a mut [PageEntry],
    base_vpn: u64,
}

impl Machine {
    /// Set the simulation thread count for this machine (0 = one per
    /// core), clamped to the processor count. 1 selects the serial
    /// loop. Results are identical at any value; this is a host
    /// execution property like sweep jobs and is never checkpointed.
    pub fn set_sim_threads(&mut self, k: usize) {
        let k = if k == 0 { nw_sim::pool::default_jobs() } else { k };
        let k = k.clamp(1, self.procs.len().max(1));
        if k != self.sim_threads {
            self.sim_threads = k;
            self.pdes_pool = None;
        }
    }

    /// The resolved simulation thread count (≥ 1).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Multi-event rounds executed `(parallel, serial-fallback)` so
    /// far — diagnostics for tests and the bench harness to assert
    /// that parallelism actually engaged.
    pub fn pdes_rounds(&self) -> (u64, u64) {
        (self.pdes_parallel_rounds, self.pdes_serial_rounds)
    }

    /// The parallel twin of the serial `try_run_events` loop: same
    /// event sequence, same counters, same error surface.
    pub(crate) fn try_run_events_pdes(&mut self, budget: u64) -> Result<RunOutcome, SimError> {
        let faults_active = self.cfg.faults.is_active();
        if !self.started {
            self.started = true;
            for &(t, ch) in &self.cfg.faults.ring_channel_failures {
                self.queue.schedule_at(t, Event::RingChannelFail { ch });
            }
            for p in 0..self.procs.len() {
                self.queue.schedule_at(0, Event::Resume(p as ProcId));
            }
        }
        let mut remaining = budget;
        let mut round: Vec<ProcId> = Vec::new();
        while self.finished != self.procs.len() && remaining > 0 {
            // Drain the longest all-`Resume` same-timestamp prefix the
            // serial loop is guaranteed to deliver (module docs).
            round.clear();
            let mut t0: Time = 0;
            while (round.len() as u64) < remaining {
                let next = match self.queue.peek() {
                    Some((t, &Event::Resume(p))) if round.is_empty() || t == t0 => Some((t, p)),
                    _ => None,
                };
                let Some((t, p)) = next else { break };
                t0 = t;
                round.push(p);
                let popped = self.queue.pop();
                debug_assert!(
                    matches!(&popped, Some((tt, Event::Resume(pp))) if *tt == t && *pp == p),
                    "queue peek/pop disagree"
                );
                let _ = popped;
            }
            if round.is_empty() {
                // Next event is not a Resume (or the queue is empty):
                // plain serial delivery of one event.
                let Some((t, ev)) = self.queue.pop() else { break };
                remaining -= 1;
                self.deliver_serial(t, ev, faults_active)?;
                continue;
            }
            remaining -= round.len() as u64;
            if round.len() >= 2 && self.round_eligible(&round, faults_active) {
                self.pdes_parallel_rounds += 1;
                self.run_round_parallel(&round, t0)?;
            } else {
                if round.len() >= 2 {
                    self.pdes_serial_rounds += 1;
                }
                for &p in &round {
                    self.deliver_serial(t0, Event::Resume(p), faults_active)?;
                }
            }
        }
        if self.finished != self.procs.len() {
            if remaining == 0 {
                return Ok(RunOutcome::Paused);
            }
            return Err(SimError::Deadlock {
                at: self.queue.now(),
                blocked: self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.done)
                    .map(|(i, p)| (i as u32, format!("{:?}", p.blocked)))
                    .collect(),
            });
        }
        self.check_page_conservation()?;
        Ok(RunOutcome::Done(Box::new(self.collect_metrics())))
    }

    /// One event through the serial loop body: sampling, watchdog,
    /// dispatch, fatal surfacing, periodic conservation check —
    /// byte-for-byte the body of the serial `try_run_events`.
    fn deliver_serial(&mut self, t: Time, ev: Event, faults_active: bool) -> Result<(), SimError> {
        self.events_dispatched += 1;
        if self.obs.as_ref().is_some_and(|o| t >= o.next_sample_due) {
            self.sample_observer(t);
        }
        if t == self.last_time {
            self.same_time_events += 1;
            if self.same_time_events > STALL_EVENT_LIMIT {
                return Err(SimError::Stalled {
                    at: t,
                    events: self.events_dispatched,
                });
            }
        } else {
            self.last_time = t;
            self.same_time_events = 0;
        }
        self.dispatch(ev)?;
        if let Some(e) = self.fatal.take() {
            return Err(e);
        }
        if faults_active && self.events_dispatched.is_multiple_of(CONSERVATION_CHECK_PERIOD) {
            self.check_page_conservation()?;
        }
        Ok(())
    }

    /// Whether a drained round may take the parallel lane path. The
    /// conditions guarantee the lanes' disjoint-slice split is safe
    /// and that deferred replays cannot disturb other lanes' pure
    /// work (module docs).
    fn round_eligible(&self, round: &[ProcId], faults_active: bool) -> bool {
        if faults_active || !self.node_private || self.obs.is_some() {
            return false;
        }
        let nprocs = self.procs.len();
        // The duplicate check below uses a u128 membership mask, and
        // the page table must split into equal per-processor blocks.
        if nprocs > 128 || self.npages == 0 || !self.npages.is_multiple_of(nprocs as u64) {
            return false;
        }
        // Replay headroom: with a spare frame above the replenish
        // watermark on every node, a deferred fault replay (at most
        // one frame allocated per node — one processor per node, and
        // a faulting processor blocks) never triggers evictions, so
        // no shootdowns or purges are generated mid-round.
        let need = self.cfg.min_free_frames + 1;
        if self.frames.iter().any(|f| f.free() < need) {
            return false;
        }
        let k = self.sim_threads.min(nprocs);
        let mut seen: u128 = 0;
        let mut lanes_hit: u128 = 0;
        for &p in round {
            let bit = 1u128 << (p as usize);
            if seen & bit != 0 {
                return false; // duplicate Resume: defensive, see docs
            }
            seen |= bit;
            lanes_hit |= 1u128 << lane_of(p as usize, nprocs, k);
        }
        // Parallelism must actually be available.
        lanes_hit.count_ones() >= 2
    }

    /// Execute an eligible round: parallel lane pass, then the
    /// canonical serial walk in pop order.
    fn run_round_parallel(&mut self, round: &[ProcId], t0: Time) -> Result<(), SimError> {
        let nprocs = self.procs.len();
        let k = self.sim_threads.min(nprocs);
        if self.pdes_pool.as_ref().map(|pl| pl.threads()) != Some(k) {
            self.pdes_pool = Some(RoundPool::new(k));
        }
        let ppp = (self.npages / nprocs as u64) as usize;
        // Per-lane work lists, preserving pop order within each lane.
        let mut todo: Vec<Vec<(usize, ProcId)>> = vec![Vec::new(); k];
        for (i, &p) in round.iter().enumerate() {
            todo[lane_of(p as usize, nprocs, k)].push((i, p));
        }
        let outcomes: Vec<AtomicU8> = (0..round.len()).map(|_| AtomicU8::new(OUT_IDLE)).collect();
        let cfg = &self.cfg;
        // Field-disjoint borrows: lanes take `procs` + `pt`, the pool
        // handle and `cfg` are shared.
        let mut lanes: Vec<Mutex<Lane>> = Vec::with_capacity(k);
        {
            let mut procs_rest: &mut [Proc] = &mut self.procs;
            let mut pt_rest: &mut [PageEntry] = &mut self.pt;
            let mut base = 0usize;
            for d in 0..k {
                let hi = (d + 1) * nprocs / k;
                let (ps, pr) = procs_rest.split_at_mut(hi - base);
                let (ts, tr) = pt_rest.split_at_mut((hi - base) * ppp);
                lanes.push(Mutex::new(Lane {
                    procs: ps,
                    base_proc: base,
                    pt: ts,
                    base_vpn: (base * ppp) as u64,
                }));
                procs_rest = pr;
                pt_rest = tr;
                base = hi;
            }
        }
        let pool = self.pdes_pool.as_ref().expect("pool created above");
        pool.run(k, &|d| {
            let mut lane = lanes[d].lock().expect("lane lock");
            let lane = &mut *lane;
            for &(i, p) in &todo[d] {
                let out = lane_step(cfg, lane, p, t0, ppp as u64);
                outcomes[i].store(out, Ordering::Relaxed);
            }
        });
        drop(lanes);
        // Canonical walk: all queue/counter mutations, in pop order.
        for (i, &p) in round.iter().enumerate() {
            self.events_dispatched += 1;
            if t0 == self.last_time {
                self.same_time_events += 1;
                if self.same_time_events > STALL_EVENT_LIMIT {
                    return Err(SimError::Stalled {
                        at: t0,
                        events: self.events_dispatched,
                    });
                }
            } else {
                self.last_time = t0;
                self.same_time_events = 0;
            }
            match outcomes[i].load(Ordering::Relaxed) {
                OUT_RAN => {
                    // The lane ran the quantum to expiry; the serial
                    // step would now schedule the next Resume.
                    let at = self.procs[p as usize].local_time;
                    debug_assert!(at >= t0, "lane ran a processor backwards");
                    self.queue.schedule_at(at, Event::Resume(p));
                }
                OUT_DEFERRED => {
                    // Replay through the ordinary serial step; it
                    // resumes the lane's quantum via `in_quantum`.
                    self.step_proc(p);
                    if let Some(e) = self.fatal.take() {
                        return Err(e);
                    }
                }
                OUT_FINISHED => self.finished += 1,
                _ => {} // OUT_IDLE: done processor, serial no-op
            }
        }
        Ok(())
    }
}

/// Advance processor `p`'s quantum through pure work only; the
/// lane-side twin of [`Machine::step_proc`]. Returns the outcome code
/// for the canonical walk. Anything impure defers with zero mutation
/// (beyond the processor-local work already done), leaving the replay
/// to perform the access from scratch exactly as the serial loop
/// would at this event.
fn lane_step(cfg: &MachineConfig, lane: &mut Lane, p: ProcId, t0: Time, ppp: u64) -> u8 {
    let pi = p as usize - lane.base_proc;
    let proc = &mut lane.procs[pi];
    if proc.done {
        return OUT_IDLE;
    }
    debug_assert!(proc.blocked.is_none(), "Resume for a blocked processor");
    // Never run behind global time (the serial step's clamp; the walk
    // replays it idempotently — queue.now() == t0 during the round).
    if proc.local_time < t0 {
        proc.local_time = t0;
    }
    if proc.pending_interrupt != 0 {
        // Interrupt charging opens the quantum after the charge;
        // leave the whole step to the canonical walk.
        return OUT_DEFERRED;
    }
    let start = proc.local_time;
    loop {
        if proc.local_time - start > cfg.quantum {
            return OUT_RAN;
        }
        let action = match proc.pending.take() {
            Some(a) => a,
            None => match proc.stream.next() {
                Some(a) => {
                    proc.consumed += 1;
                    a
                }
                None => {
                    proc.done = true;
                    return OUT_FINISHED;
                }
            },
        };
        match action {
            Action::Compute(c) => {
                proc.local_time += c as Time;
                proc.breakdown.other += c as Time;
            }
            Action::Read(line) | Action::Write(line) => {
                let is_write = matches!(action, Action::Write(_));
                match lane_access(cfg, proc, lane.pt, lane.base_vpn, p, ppp, line, is_write) {
                    Some((lat, tlb_lat)) => {
                        proc.local_time += lat;
                        proc.breakdown.other += lat - tlb_lat;
                        proc.breakdown.tlb += tlb_lat;
                    }
                    None => {
                        proc.pending = Some(action);
                        proc.in_quantum = Some(start);
                        return OUT_DEFERRED;
                    }
                }
            }
            Action::Barrier(_) => {
                // Barriers touch global state; always replayed.
                proc.pending = Some(action);
                proc.in_quantum = Some(start);
                return OUT_DEFERRED;
            }
        }
    }
}

/// One load/store against processor-private state only: the pure
/// subset of [`Machine::access`], charging identical latencies.
/// `None` means the access is impure (page not resident in the
/// processor's own block, or it would generate directory/mesh/memory
/// traffic) and nothing was mutated.
#[allow(clippy::too_many_arguments)] // lane-internal plumbing
fn lane_access(
    cfg: &MachineConfig,
    proc: &mut Proc,
    pt: &mut [PageEntry],
    base_vpn: u64,
    p: ProcId,
    ppp: u64,
    line: u64,
    is_write: bool,
) -> Option<(Time, Time)> {
    let vpn = line / (cfg.page_bytes / nw_memhier::LINE_BYTES);
    // Outside the processor's own page block: the node-private
    // contract says this never happens, but the lane only holds its
    // own page-table slice — defer rather than trust the label.
    if vpn < p as u64 * ppp || vpn >= (p as u64 + 1) * ppp {
        return None;
    }
    // Purity pre-checks, all non-mutating: resident page, and the
    // access resolves inside the private L1/L2 with no directory
    // upgrade (a pure write must hit an already-dirty copy).
    let home = match pt[(vpn - base_vpn) as usize].state {
        PageState::InMemory { node } => node,
        _ => return None,
    };
    let l1_hit = proc.l1.contains(line);
    let pure = if is_write {
        (l1_hit && proc.l1.is_dirty(line))
            || (!l1_hit && proc.l2.contains(line) && proc.l2.is_dirty(line))
    } else {
        l1_hit || proc.l2.contains(line)
    };
    if !pure {
        return None;
    }
    // From here on, mirror `Machine::access` for the hit paths.
    let now = proc.local_time;
    let mut lat: Time = 0;
    let mut tlb_lat: Time = 0;
    let tlb_hit = proc.tlb.lookup(vpn);
    if !tlb_hit {
        tlb_lat = cfg.tlb_miss_latency;
        lat += tlb_lat;
        proc.tlb.insert(vpn);
    }
    let entry = &mut pt[(vpn - base_vpn) as usize];
    entry.last_access = now;
    entry.referenced = true;
    entry.last_node = home;
    if is_write {
        entry.dirty = true;
    }
    match proc.l1.access(line, is_write) {
        LookupResult::Hit => lat += cfg.l1_latency,
        LookupResult::Miss => match proc.l2.access(line, is_write) {
            LookupResult::Hit => {
                lat += cfg.l1_latency + cfg.l2_latency;
                if let Some(victim) = proc.l1.fill(line, is_write) {
                    if victim.dirty {
                        proc.l2.mark_dirty(victim.line);
                    }
                }
            }
            LookupResult::Miss => unreachable!("purity pre-check guaranteed an L1/L2 hit"),
        },
    }
    Some((lat, tlb_lat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineKind, PrefetchMode};
    use nw_apps::synth::{self, SynthConfig};

    #[test]
    fn lane_partition_matches_cut_points() {
        for nprocs in 1..=40 {
            for k in 1..=nprocs {
                for d in 0..k {
                    let lo = d * nprocs / k;
                    let hi = (d + 1) * nprocs / k;
                    for p in lo..hi {
                        assert_eq!(
                            lane_of(p, nprocs, k),
                            d,
                            "p={p} nprocs={nprocs} k={k}"
                        );
                    }
                }
            }
        }
    }

    fn private_cfg(kind: MachineKind) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default(kind, PrefetchMode::Naive);
        cfg.nodes = 4;
        cfg.io_nodes = 2;
        cfg.ring_channels = 4;
        cfg
    }

    fn private_build(nprocs: usize, write_frac: f64) -> nw_apps::AppBuild {
        synth::build_private(
            SynthConfig {
                data_bytes: 16 * 4096 * nprocs as u64,
                stride_lines: 1,
                write_frac,
                random_frac: 0.0,
                iters: 3,
                compute_per_line: 10,
            },
            nprocs,
            0xBEEF,
        )
    }

    fn run_at(kind: MachineKind, write_frac: f64, threads: usize) -> (crate::metrics::RunMetrics, u64, (u64, u64)) {
        let cfg = private_cfg(kind);
        let mut m = Machine::from_build(cfg.clone(), private_build(cfg.nodes as usize, write_frac));
        m.set_sim_threads(threads);
        let r = m.run();
        (r, m.events_dispatched(), m.pdes_rounds())
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        for kind in [MachineKind::NwCache, MachineKind::Standard] {
            for write_frac in [0.0, 0.3] {
                let (r1, e1, _) = run_at(kind, write_frac, 1);
                for threads in [2, 4] {
                    let (rk, ek, _) = run_at(kind, write_frac, threads);
                    assert_eq!(r1, rk, "K={threads} diverged ({kind:?}, wf={write_frac})");
                    assert_eq!(e1, ek, "event counts diverged at K={threads}");
                }
            }
        }
    }

    #[test]
    fn node_private_workload_engages_parallel_rounds() {
        let (_, _, (par, _)) = run_at(MachineKind::NwCache, 0.0, 4);
        assert!(par > 0, "no parallel rounds on a node-private workload");
    }

    #[test]
    fn shared_workload_falls_back_to_serial_rounds() {
        // Paper-suite builds leave node_private unset: every
        // multi-event round must take the serial fallback.
        let cfg = private_cfg(MachineKind::NwCache);
        let mut b = private_build(cfg.nodes as usize, 0.0);
        b.node_private = false;
        let mut m = Machine::from_build(cfg, b);
        m.set_sim_threads(4);
        m.run();
        let (par, _) = m.pdes_rounds();
        assert_eq!(par, 0);
    }

    #[test]
    fn chunked_parallel_runs_match_unbounded() {
        let cfg = private_cfg(MachineKind::NwCache);
        let mut a = Machine::from_build(cfg.clone(), private_build(cfg.nodes as usize, 0.0));
        a.set_sim_threads(4);
        let ra = a.run();
        let mut b = Machine::from_build(cfg.clone(), private_build(cfg.nodes as usize, 0.0));
        b.set_sim_threads(4);
        let rb = loop {
            match b.try_run_events(257).expect("chunked run") {
                RunOutcome::Done(m) => break *m,
                RunOutcome::Paused => {}
            }
        };
        assert_eq!(ra, rb);
        assert_eq!(a.events_dispatched(), b.events_dispatched());
    }

    #[test]
    fn thread_count_resolves_and_clamps() {
        let cfg = private_cfg(MachineKind::Standard);
        let mut m = Machine::from_build(cfg.clone(), private_build(cfg.nodes as usize, 0.0));
        m.set_sim_threads(64);
        assert_eq!(m.sim_threads(), cfg.nodes as usize);
        m.set_sim_threads(0);
        assert!(m.sim_threads() >= 1);
        m.set_sim_threads(1);
        assert_eq!(m.sim_threads(), 1);
    }
}
