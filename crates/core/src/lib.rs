//! # nwcache — the NWCache machine model and experiment harness
//!
//! Reproduction of *"NWCache: Optimizing Disk Accesses via an Optical
//! Network/Write Cache Hybrid"* (Carrera & Bianchini, IPPS 1999).
//!
//! This crate assembles the substrate crates into the paper's 8-node
//! scalable cache-coherent multiprocessor and implements the operating
//! system's virtual memory management — the one part of the OS the
//! paper simulates:
//!
//! * a machine-wide page table with per-page `Ring` bits,
//! * per-node frame pools with LRU replacement and a minimum-free-
//!   frames policy,
//! * TLB shootdown on access-rights downgrades,
//! * the standard swap-out protocol (ACK/NACK/OK against the disk
//!   controller cache) and the NWCache swap-out protocol (cache
//!   channel insertion, interface FIFOs, drains and ACKs),
//! * victim reads that re-map faulted pages straight off the ring.
//!
//! ## Quick start
//!
//! ```
//! use nwcache::{MachineConfig, MachineKind, PrefetchMode, run_app};
//! use nw_apps::AppId;
//!
//! // Small-scale SOR on the standard machine vs the NWCache machine.
//! // `scaled_paper` shrinks the application AND the machine together
//! // so the run stays out-of-core.
//! let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, 0.05);
//! let std_run = run_app(&std_cfg, AppId::Sor);
//!
//! let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05);
//! let nwc_run = run_app(&nwc_cfg, AppId::Sor);
//!
//! // The NWCache swap-outs complete much faster on average.
//! assert!(std_run.swap_outs > 0);
//! assert!(nwc_run.swap_out_time.mean() < std_run.swap_out_time.mean());
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of
//! the paper's evaluation section; the `reproduce` binary in
//! `nw-bench` prints them.

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod experiments;
pub mod hotbench;
pub mod machine;
pub mod metrics;
pub mod observe;
pub mod prefetch;
pub mod report;
pub mod sweep;
pub mod topo;
pub mod trace;
pub mod vm;
pub mod workload;

pub use checkpoint::CkptMeta;
pub use config::{FaultPlan, MachineConfig, MachineKind, PrefetchMode, RunParams};
pub use error::{ExitCode, SimError};
pub use machine::{Machine, RunOutcome};
pub use metrics::{RunMetrics, RunSummary};
pub use sweep::{SweepReport, SweepRow};
pub use topo::TopoSpec;
pub use workload::{try_run_sel, AppSel};

/// Run application `app` to completion on a machine built from `cfg`
/// and return the collected metrics.
///
/// # Panics
/// Panics on an invalid config or an internal simulation error; use
/// [`try_run_app`] for a fallible variant.
pub fn run_app(cfg: &MachineConfig, app: nw_apps::AppId) -> RunMetrics {
    let mut m = Machine::new(cfg.clone(), app);
    m.run()
}

/// Fallible variant of [`run_app`]: a bad configuration, a protocol
/// inconsistency, or an injected fault that exhausted its retries is
/// reported as a [`SimError`] instead of aborting.
pub fn try_run_app(cfg: &MachineConfig, app: nw_apps::AppId) -> Result<RunMetrics, SimError> {
    let mut m = Machine::try_new(cfg.clone(), app)?;
    m.try_run()
}
